//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use — the
//! [`Strategy`] trait with `prop_map`, range / tuple / `Just` / `any` /
//! `prop_oneof!` / `collection::vec` strategies, `ProptestConfig`, the
//! `proptest!` macro, and `prop_assert*` — as a seeded random-case runner.
//! There is **no shrinking**: a failing case reports its seed and values via
//! `Debug` instead of minimizing. Cases are deterministic per (test name,
//! case index), so failures reproduce; every failure message names the
//! case's seed, and setting `GPV_TEST_SEED=<seed>` re-runs exactly that
//! case (one iteration, any test name) instead of the full sweep.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// Re-exports matching `proptest::prelude::*` as used in this workspace.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed test case (returned by the `prop_assert*` macros).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// A generator of random values (no shrinking in this shim).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A constant strategy (clones its value).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($n:tt $s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A uniform choice between boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over `options` (must be nonempty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

/// Boxes a strategy for use in [`Union`].
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// The deterministic seed for one (test, case) pair. Printed on failure so
/// `GPV_TEST_SEED=<seed> cargo test <name>` replays exactly that case.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// An RNG from an explicit seed (the replay path).
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// The pinned seed from `GPV_TEST_SEED`, if set. When present, `proptest!`
/// runs a single case from exactly this seed instead of the full sweep.
/// A non-integer value panics loudly rather than being silently ignored.
pub fn pinned_seed() -> Option<u64> {
    let v = std::env::var("GPV_TEST_SEED").ok()?;
    if v.is_empty() {
        return None;
    }
    Some(
        v.parse()
            .unwrap_or_else(|_| panic!("GPV_TEST_SEED must be a u64, got `{v}`")),
    )
}

/// Deterministic per-(test, case) RNG so failures reproduce.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    rng_from_seed(case_seed(test_name, case))
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($s)),+])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        __l,
                        __r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)+),
                        __l,
                        __r
                    )));
                }
            }
        }
    };
}

/// The property-test runner macro: each `fn name(bindings in strategies)`
/// becomes a `#[test]` (the attribute is written by the caller, as with real
/// proptest) running `cases` seeded random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __pinned = $crate::pinned_seed();
            let __total = if __pinned.is_some() { 1 } else { __cfg.cases };
            for __case in 0..__total {
                let __seed = match __pinned {
                    ::std::option::Option::Some(s) => s,
                    ::std::option::Option::None => $crate::case_seed(stringify!($name), __case),
                };
                let mut __rng = $crate::rng_from_seed(__seed);
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "proptest `{}` failed at case {}/{} (rerun this case with GPV_TEST_SEED={}): {}",
                        stringify!($name),
                        __case,
                        __total,
                        __seed,
                        __e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seed_is_deterministic_and_name_sensitive() {
        assert_eq!(case_seed("t", 3), case_seed("t", 3));
        assert_ne!(case_seed("t", 3), case_seed("t", 4));
        assert_ne!(case_seed("t", 3), case_seed("u", 3));
    }

    #[test]
    fn pinned_seed_env_roundtrip() {
        // This crate's test binary has no other env-sensitive tests, so
        // mutating the process env here is safe.
        std::env::remove_var("GPV_TEST_SEED");
        assert_eq!(pinned_seed(), None);
        std::env::set_var("GPV_TEST_SEED", "12345");
        assert_eq!(pinned_seed(), Some(12345));
        std::env::remove_var("GPV_TEST_SEED");
    }
}
