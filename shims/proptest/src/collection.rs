//! Collection strategies (`proptest::collection::vec`).

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Length specification for collection strategies: a fixed size or a range.
pub struct SizeRange(std::ops::Range<usize>);

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange(n..n + 1)
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange(r)
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange(*r.start()..r.end() + 1)
    }
}

/// A strategy for `Vec<S::Value>` with length drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    len: std::ops::Range<usize>,
}

/// `Vec` strategy with element strategy `element` and length in `len`.
pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        len: len.into().0,
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = if self.len.start + 1 >= self.len.end {
            self.len.start
        } else {
            rng.gen_range(self.len.clone())
        };
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
