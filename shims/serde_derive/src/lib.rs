//! Derive macros for the offline `serde` shim.
//!
//! Hand-rolled `TokenStream` parsing (no `syn`/`quote` available offline).
//! Supports exactly the item shapes this workspace derives on:
//!
//! * structs with named fields, with optional `#[serde(skip)]` on fields
//!   (skipped fields are not serialized and are `Default::default()`ed on
//!   deserialize);
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays);
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   real serde: `"Variant"`, `{"Variant": v}`, `{"Variant": {..}}`).
//!
//! Generic items are not supported — none of the workspace's serialized
//! types are generic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

struct Field {
    name: String,
    skip: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Consumes leading attributes (`#[...]` / `#![...]`), returning whether any
/// of them was `#[serde(skip)]`.
fn eat_attrs(toks: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut skip = false;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1;
                if let Some(TokenTree::Punct(p2)) = toks.get(i) {
                    if p2.as_char() == '!' {
                        i += 1;
                    }
                }
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    let body = g.stream().to_string().replace(' ', "");
                    if body == "serde(skip)" {
                        skip = true;
                    }
                    i += 1;
                } else {
                    panic!("serde_derive shim: malformed attribute");
                }
            }
            _ => break,
        }
    }
    (i, skip)
}

/// Consumes an optional visibility (`pub`, `pub(crate)`, ...).
fn eat_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = eat_attrs(&toks, 0);
    i = eat_vis(&toks, i);

    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic types are not supported ({name})");
        }
    }

    match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            other => panic!("serde_derive shim: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive shim: expected enum body for {name}, got {other:?}"),
        },
        other => panic!("serde_derive shim: unsupported item kind `{other}`"),
    }
}

/// Skips a type (or any token run) up to the next top-level comma. Commas
/// inside groups are invisible (they are inside `TokenTree::Group`s); only
/// angle-bracket depth needs manual tracking.
fn skip_to_comma(toks: &[TokenTree], mut i: usize) -> usize {
    let mut angle: i32 = 0;
    while i < toks.len() {
        if let TokenTree::Punct(p) = &toks[i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (ni, skip) = eat_attrs(&toks, i);
        i = eat_vis(&toks, ni);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected field name, got {other:?}"),
        };
        i += 1;
        // Colon, then the type, then a comma (or end).
        i = skip_to_comma(&toks, i) + 1;
        fields.push(Field { name, skip });
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut i = 0;
    while i < toks.len() {
        let (ni, _) = eat_attrs(&toks, i);
        i = eat_vis(&toks, ni);
        if i >= toks.len() {
            break;
        }
        n += 1;
        i = skip_to_comma(&toks, i) + 1;
    }
    n
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (ni, _) = eat_attrs(&toks, i);
        i = ni;
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected variant name, got {other:?}"),
        };
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Optional discriminant is not supported; expect `,` or end.
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            } else {
                panic!("serde_derive shim: unsupported token after variant {name}");
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__obj.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::value::Value {{\n\
                 let mut __obj: Vec<(String, ::serde::value::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::value::Value::Object(__obj)\n\
                 }}\n}}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                    .collect();
                format!("::serde::value::Value::Array(vec![{}])", elems.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::value::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::value::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::value::Value::Object(vec![(\"{vn}\".to_string(), {payload})]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "__obj.push((\"{0}\".to_string(), ::serde::Serialize::to_value({0})));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n\
                             let mut __obj: Vec<(String, ::serde::value::Value)> = Vec::new();\n\
                             {pushes}\
                             ::serde::value::Value::Object(vec![(\"{vn}\".to_string(), ::serde::value::Value::Object(__obj))])\n\
                             }}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::value::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{0}: ::serde::Deserialize::from_value(__v.get(\"{0}\").ok_or_else(|| ::serde::value::Error::custom(\"missing field `{0}` in {name}\"))?)?,\n",
                        f.name
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::value::Error> {{\n\
                 if __v.as_object().is_none() {{\n\
                 return Err(::serde::value::Error::custom(\"expected object for {name}\"));\n\
                 }}\n\
                 Ok({name} {{\n{inits}}})\n\
                 }}\n}}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
            } else {
                let mut elems = String::new();
                for k in 0..*arity {
                    elems.push_str(&format!(
                        "::serde::Deserialize::from_value(__xs.get({k}).ok_or_else(|| ::serde::value::Error::custom(\"tuple too short for {name}\"))?)?,\n"
                    ));
                }
                format!(
                    "let __xs = __v.as_array().ok_or_else(|| ::serde::value::Error::custom(\"expected array for {name}\"))?;\n\
                     Ok({name}({elems}))"
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::value::Error> {{\n\
                 {body}\n\
                 }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"))
                    }
                    VariantShape::Tuple(arity) => {
                        let ctor = if *arity == 1 {
                            format!("{name}::{vn}(::serde::Deserialize::from_value(__payload)?)")
                        } else {
                            let mut elems = String::new();
                            for k in 0..*arity {
                                elems.push_str(&format!(
                                    "::serde::Deserialize::from_value(__xs.get({k}).ok_or_else(|| ::serde::value::Error::custom(\"variant payload too short\"))?)?,\n"
                                ));
                            }
                            format!(
                                "{{ let __xs = __payload.as_array().ok_or_else(|| ::serde::value::Error::custom(\"expected array payload\"))?; {name}::{vn}({elems}) }}"
                            )
                        };
                        tagged_arms.push_str(&format!("\"{vn}\" => return Ok({ctor}),\n"));
                    }
                    VariantShape::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{0}: ::serde::Deserialize::from_value(__payload.get(\"{0}\").ok_or_else(|| ::serde::value::Error::custom(\"missing field `{0}`\"))?)?,\n",
                                f.name
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => return Ok({name}::{vn} {{ {inits} }}),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::value::Error> {{\n\
                 if let Some(__s) = __v.as_str() {{\n\
                 match __s {{\n{unit_arms}\
                 _ => return Err(::serde::value::Error::custom(\"unknown variant for {name}\")),\n}}\n\
                 }}\n\
                 if let Some(__ms) = __v.as_object() {{\n\
                 if let Some((__tag, __payload)) = __ms.first() {{\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                 _ => return Err(::serde::value::Error::custom(\"unknown variant for {name}\")),\n}}\n\
                 }}\n\
                 }}\n\
                 Err(::serde::value::Error::custom(\"expected enum value for {name}\"))\n\
                 }}\n}}"
            )
        }
    }
}
