//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `finish`,
//! `Bencher::iter` / `iter_batched`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — as a plain wall-clock
//! harness: per benchmark it warms up briefly, runs `sample_size` timed
//! samples, and prints min/median/mean to stdout. No statistics, plots, or
//! saved baselines.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup (ignored by this shim's timer).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// The timing context handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` samples of `routine`.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Brief warmup so first-touch effects don't dominate tiny benches.
        for _ in 0..2 {
            black_box(routine());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(label: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{label}: no samples");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{label}: min {min:?}  median {median:?}  mean {mean:?}  ({} samples)",
        samples.len()
    );
}

/// The bench registry/runner.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.default_sample_size,
        };
        f(&mut b);
        report(name, &mut b.samples);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("== bench group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &mut b.samples);
        self
    }

    /// Ends the group (a no-op beyond matching criterion's API).
    pub fn finish(self) {}
}

/// Declares a bench group function list, as `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point, as `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
