//! Offline stand-in for `serde_json`: prints and parses the [`Value`] data
//! model of the vendored `serde` shim as real JSON text.

pub use serde::value::{Error, Value};

use std::io::{Read, Write};

/// Serializes `v` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), None, 0);
    Ok(out)
}

/// Serializes `v` to a pretty-printed JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `v` as compact JSON into a writer.
pub fn to_writer<W: Write, T: serde::Serialize + ?Sized>(mut w: W, v: &T) -> Result<(), Error> {
    let s = to_string(v)?;
    w.write_all(s.as_bytes())
        .map_err(|e| Error::custom(e.to_string()))
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    T::from_value(&v)
}

/// Deserializes a `T` from a reader.
pub fn from_reader<R: Read, T: serde::Deserialize>(mut r: R) -> Result<T, Error> {
    let mut s = String::new();
    r.read_to_string(&mut s)
        .map_err(|e| Error::custom(e.to_string()))?;
    from_str(&s)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Keep a trailing `.0` so the value re-parses as a float.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(xs) => write_seq(out, xs.iter(), indent, depth, ('[', ']'), write_value),
        Value::Object(ms) => write_seq(
            out,
            ms.iter(),
            indent,
            depth,
            ('{', '}'),
            |out, (k, x), ind, d| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, x, ind, d);
            },
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) {
    out.push(brackets.0);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut xs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(xs));
                }
                loop {
                    self.skip_ws();
                    xs.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(xs));
                        }
                        _ => return Err(Error::custom("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut ms = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(ms));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let v = self.value()?;
                    ms.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(ms));
                        }
                        _ => return Err(Error::custom("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected input at byte {}: {other:?}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom("invalid float"))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::custom("invalid integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for s in ["null", "true", "false", "0", "-12", "3.5", "\"a\\nb\""] {
            let v = parse(s).unwrap();
            let back = {
                let mut out = String::new();
                write_value(&mut out, &v, None, 0);
                out
            };
            assert_eq!(parse(&back).unwrap(), v, "{s}");
        }
    }

    #[test]
    fn nested_roundtrip() {
        let src = r#"{"a":[1,2,{"b":"x","c":[true,null]}],"d":-4.25}"#;
        let v = parse(src).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(out, src.replace(" ", ""));
        let mut pretty = String::new();
        write_value(&mut pretty, &v, Some(2), 0);
        assert_eq!(parse(&pretty).unwrap(), v);
    }
}
