//! Offline stand-in for the `rand` crate (0.8-flavored API subset).
//!
//! Provides exactly what this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer/float ranges,
//! and `Rng::gen_bool`. The generator is xoshiro256** seeded via SplitMix64 —
//! deterministic for a given seed, which is all the seeded workload
//! generators need (statistical quality is not load-bearing here).

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128) - (self.start as i128);
                let r = (rng.next_u64() as i128).rem_euclid(span);
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128) - (lo as i128) + 1;
                let r = (rng.next_u64() as i128).rem_euclid(span);
                (lo as i128 + r) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// The "standard" distribution: full range for integers, `[0, 1)` for
/// floats, fair coin for `bool` (mirrors `rand::distributions::Standard`).
pub trait Standard {
    /// Draws a standard-distribution sample.
    fn standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn standard(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn standard(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn standard(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform sample of `T`'s full standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** with SplitMix64 seeding.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y = r.gen_range(3u32..=7);
            assert!((3..=7).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
