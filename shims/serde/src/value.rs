//! The JSON-shaped data model shared by the `serde` and `serde_json` shims.

use std::fmt;

/// A JSON-like value tree. Object member order is preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any integer (wide enough for `u64` and `i64`).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered `(key, value)` members.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as a signed 128-bit integer, if it is an integer.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        self.as_i128().and_then(|i| i64::try_from(i).ok())
    }

    /// The value as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i128().and_then(|i| u64::try_from(i).ok())
    }

    /// The value as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(xs) => Some(xs),
            _ => None,
        }
    }

    /// The value as object members.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(ms) => Some(ms),
            _ => None,
        }
    }

    /// Object member lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|ms| ms.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|xs| xs.get(i)).unwrap_or(&NULL)
    }
}

impl crate::Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl crate::Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

/// Error type shared by serialization and JSON parsing.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}
