//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors a
//! minimal serde replacement with the same import surface the codebase uses:
//! `use serde::{Serialize, Deserialize}` works both as trait imports and as
//! derive macros (re-exported from the sibling `serde_derive` shim), and the
//! inert `#[serde(skip)]` field attribute is honored.
//!
//! Instead of serde's zero-copy visitor architecture, this shim round-trips
//! every value through a JSON-shaped [`value::Value`] tree. That is slower
//! but behaviorally equivalent for the cache/report/round-trip workloads in
//! this repository, and it keeps the derive macro small enough to write
//! without `syn`/`quote`.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use value::{Error, Value};

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i128().ok_or_else(|| Error::custom(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(i).map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            _ => Err(Error::custom("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for Box<str> {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for Box<str> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        String::from_value(v).map(String::into_boxed_str)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(xs) => xs.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let Value::Array(xs) = v else {
                    return Err(Error::custom("expected array for tuple"));
                };
                let mut it = xs.iter();
                let out = ($({
                    let _ = $n;
                    $t::from_value(it.next().ok_or_else(|| Error::custom("tuple too short"))?)?
                },)+);
                if it.next().is_some() {
                    return Err(Error::custom("tuple too long"));
                }
                Ok(out)
            }
        }
    )+};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let Value::Array(xs) = v else {
            return Err(Error::custom("expected array for map"));
        };
        xs.iter().map(<(K, V)>::from_value).collect()
    }
}
