//! Incremental maintenance of a materialized view under edge churn
//! (the extension following the paper's pointer to Fan et al., SIGMOD 2011):
//! deletions repair the view incrementally; insertions warm-restart.
//!
//! ```sh
//! cargo run --example incremental_views
//! ```

use graph_views::prelude::*;
use graph_views::views::IncrementalView;

fn main() {
    // A small supply-chain-ish graph: suppliers -> factories -> stores.
    let mut b = GraphBuilder::new();
    let s1 = b.add_node(["Supplier"]);
    let s2 = b.add_node(["Supplier"]);
    let f1 = b.add_node(["Factory"]);
    let f2 = b.add_node(["Factory"]);
    let t1 = b.add_node(["Store"]);
    let t2 = b.add_node(["Store"]);
    b.add_edge(s1, f1);
    b.add_edge(s2, f2);
    b.add_edge(f1, t1);
    b.add_edge(f2, t2);
    let g = b.build();

    // View: Supplier -> Factory -> Store chains.
    let mut p = PatternBuilder::new();
    let sup = p.node_labeled("Supplier");
    let fac = p.node_labeled("Factory");
    let sto = p.node_labeled("Store");
    p.edge(sup, fac);
    p.edge(fac, sto);
    let view = p.build().unwrap();

    let mut inc = IncrementalView::new(view.clone(), &g);
    let show = |label: &str, inc: &IncrementalView| {
        let r = inc.result();
        if r.is_empty() {
            println!("{label}: view extension is EMPTY");
        } else {
            println!(
                "{label}: {} match pairs; suppliers matched: {:?}",
                r.size(),
                r.node_matches[0]
            );
        }
    };
    show("initial", &inc);

    // Factory f1 loses its store link: the s1-chain dies, incrementally.
    inc.delete_edge(f1, t1);
    show("after delete f1->t1", &inc);

    // The other chain also breaks: extension empties.
    inc.delete_edge(f2, t2);
    show("after delete f2->t2", &inc);

    // A new route revives matches (insertion = warm recompute).
    inc.insert_edge(f1, t2);
    show("after insert f1->t2", &inc);

    // Cross-check against recomputation from scratch at the final state.
    let mut b = GraphBuilder::new();
    let s1 = b.add_node(["Supplier"]);
    let s2 = b.add_node(["Supplier"]);
    let f1 = b.add_node(["Factory"]);
    let f2 = b.add_node(["Factory"]);
    let _t1 = b.add_node(["Store"]);
    let t2 = b.add_node(["Store"]);
    b.add_edge(s1, f1);
    b.add_edge(s2, f2);
    b.add_edge(f1, t2);
    let g_final = b.build();
    assert_eq!(inc.result(), match_pattern(&view, &g_final));
    println!("\nincremental result == recompute-from-scratch ✓");
}
