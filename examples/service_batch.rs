//! Batch serving through the `ViewService` layer: shard materialized views
//! into a `ViewStore`, stand up one shared service, and let several client
//! threads fire overlapping query batches at it — deduplicated, plan-cached,
//! result-cached across batches, and answered identically to the sequential
//! `QueryEngine`.
//!
//! Run with: `cargo run --example service_batch`

use gpv_generator::{covering_views, random_graph, random_pattern, PatternShape};
use graph_views::prelude::*;
use graph_views::views::store::ViewStore;
use graph_views::views::ViewService;
use std::sync::Arc;

fn main() {
    const LABELS: [&str; 4] = ["A", "B", "C", "D"];

    // A synthetic graph and a small query workload it can serve.
    let g = random_graph(2_000, 6_000, &LABELS, 42);
    let queries: Vec<Pattern> = (0..4)
        .map(|i| random_pattern(3, 4, &LABELS, PatternShape::Any, 100 + i))
        .collect();
    let views = covering_views(&queries, 2, 7);

    // Shard the materialized views; 8 shards, independently locked.
    let store = Arc::new(ViewStore::materialize(views, &g, 8));
    let service = ViewService::new(store);

    // Each client submits the whole workload twice per batch (duplicates
    // exercise dedup + the plan cache), four clients concurrently.
    let batch: Vec<Pattern> = queries.iter().chain(queries.iter()).cloned().collect();
    std::thread::scope(|s| {
        for c in 0..4 {
            let service = &service;
            let batch = &batch;
            let g = &g;
            s.spawn(move || {
                for (i, r) in service.serve_batch(batch, Some(g)).iter().enumerate() {
                    let a = r.as_ref().expect("fallback permitted");
                    if c == 0 {
                        println!(
                            "client {c} query {i}: {} pairs ({})",
                            a.result.size(),
                            a.disposition()
                        );
                    }
                }
            });
        }
    });

    // The SAME workload again: every answer now comes straight from the
    // cross-batch result cache — no planning, no execution, one shared
    // Arc<MatchResult> per query.
    for (i, r) in service.serve_batch(&queries, Some(&g)).iter().enumerate() {
        let a = r.as_ref().expect("fallback permitted");
        assert!(a.result_cached, "warm repeat is served from the cache");
        println!(
            "warm query {i}: {} pairs ({})",
            a.result.size(),
            a.disposition()
        );
    }

    // Every answer above is byte-identical to QueryEngine::answer — the
    // service only changes how fast repeated traffic is served:
    let stats = service.stats();
    println!("--- service stats ---");
    println!(
        "{} queries in {} batches; plan cache {:.0}% hits ({} plans), {} deduped",
        stats.queries,
        stats.batches,
        stats.plan_cache_hit_rate * 100.0,
        stats.plan_cache_size,
        stats.dedup_saved
    );
    println!(
        "result cache: {} hits / {} misses ({:.0}%), {} answers / {} KiB resident",
        stats.result_cache_hits,
        stats.result_cache_misses,
        stats.result_cache_hit_rate * 100.0,
        stats.result_cache_size,
        stats.result_cache_bytes / 1024
    );
    println!(
        "p50 {}, p99 {}, max queue depth {}",
        stats.latency.quantile_label(0.5),
        stats.latency.quantile_label(0.99),
        stats.max_in_flight
    );
    for o in &stats.shard_occupancy {
        println!("shard {}: {} views, {} pairs", o.shard, o.views, o.pairs);
    }

    // EXPLAIN any query against the current view set:
    println!("--- explain ---\n{}", service.explain(&queries[0]));
}
