//! The paper's running example (Fig. 1, Examples 1–7): an HR manager builds
//! a team by issuing a graph pattern query over a recommendation network,
//! answered from cached views; then `minimal` and `minimum` pick which views
//! to use.
//!
//! ```sh
//! cargo run --example team_recommendation
//! ```

use graph_views::prelude::*;
use graph_views::views::{ViewDef, ViewSet};

/// Fig. 1(a): the recommendation network.
fn recommendation_network() -> (DataGraph, Vec<&'static str>) {
    let names = vec![
        "Bob", "Walt", "Mat", "Fred", "Mary", "Dan", "Pat", "Bill", "Jean", "Emmy",
    ];
    let mut b = GraphBuilder::new();
    let bob = b.add_node(["PM"]);
    let walt = b.add_node(["PM"]);
    let mat = b.add_node(["DBA"]);
    let fred = b.add_node(["DBA"]);
    let mary = b.add_node(["DBA"]);
    let dan = b.add_node(["PRG"]);
    let pat = b.add_node(["PRG"]);
    let bill = b.add_node(["PRG"]);
    let jean = b.add_node(["BA"]);
    let emmy = b.add_node(["ST"]);
    for (src, dst) in [
        (bob, mat),
        (walt, mat),
        (bob, dan),
        (walt, bill),
        (fred, pat),
        (mat, pat),
        (mary, bill),
        (dan, fred),
        (pat, mary),
        (pat, mat),
        (bill, mat),
        (bob, jean),
        (jean, emmy),
    ] {
        b.add_edge(src, dst);
    }
    (b.build(), names)
}

/// Fig. 1(c): the team pattern — a PM with a DBA and PRG sub-team where each
/// PRG was supervised by a DBA and vice versa (a collaboration cycle).
fn team_query() -> Pattern {
    let mut b = PatternBuilder::new();
    let pm = b.node_labeled("PM");
    let dba1 = b.node_labeled("DBA");
    let prg1 = b.node_labeled("PRG");
    let dba2 = b.node_labeled("DBA");
    let prg2 = b.node_labeled("PRG");
    b.edge(pm, dba1);
    b.edge(pm, prg2);
    b.edge(dba1, prg1);
    b.edge(prg1, dba2);
    b.edge(dba2, prg2);
    b.edge(prg2, dba1);
    b.build().unwrap()
}

/// Fig. 1(b): the cached views V1 (PM fan) and V2 (DBA/PRG cycle).
fn cached_views() -> ViewSet {
    let mut v1 = PatternBuilder::new();
    let pm = v1.node_labeled("PM");
    let dba = v1.node_labeled("DBA");
    let prg = v1.node_labeled("PRG");
    v1.edge(pm, dba);
    v1.edge(pm, prg);
    let mut v2 = PatternBuilder::new();
    let dba = v2.node_labeled("DBA");
    let prg = v2.node_labeled("PRG");
    v2.edge(dba, prg);
    v2.edge(prg, dba);
    ViewSet::new(vec![
        ViewDef::new("V1", v1.build().unwrap()),
        ViewDef::new("V2", v2.build().unwrap()),
    ])
}

fn main() {
    let (g, names) = recommendation_network();
    let q = team_query();
    let views = cached_views();
    let qlabels = ["PM", "DBA1", "PRG1", "DBA2", "PRG2"];

    println!("The HR manager's team pattern (paper Fig. 1(c)):\n{q}");

    // Example 2: direct evaluation.
    let direct = match_pattern(&q, &g);
    println!("Example 2 — direct Match(Qs, G):");
    for (ei, &(u, v)) in q.edges().iter().enumerate() {
        let pairs: Vec<String> = direct.edge_matches[ei]
            .iter()
            .map(|&(a, b)| format!("({},{})", names[a.index()], names[b.index()]))
            .collect();
        println!(
            "  ({:>4},{:<4}) = {{{}}}",
            qlabels[u.index()],
            qlabels[v.index()],
            pairs.join(", ")
        );
    }

    // Example 3: the query is contained in the views.
    let plan = contain(&q, &views).expect("Qs ⊑ {V1, V2}");
    println!(
        "\nExample 3 — Qs ⊑ {{V1, V2}} holds; used views: {:?}",
        plan.used_views
    );

    // Example 4: answer from the views, never touching G.
    let ext = materialize(&views, &g);
    let joined = match_join(&q, &plan, &ext).expect("valid plan");
    assert_eq!(joined, direct);
    println!(
        "Example 4 — MatchJoin over V(G) ({} cached pairs) reproduces Match over G ✓",
        ext.size()
    );

    // Examples 6-7 live on a richer view catalogue: add redundant views and
    // watch minimal / minimum trim them.
    let mut catalogue = views.views().to_vec();
    let mut extra = PatternBuilder::new();
    let pm = extra.node_labeled("PM");
    let dba = extra.node_labeled("DBA");
    extra.edge(pm, dba);
    catalogue.push(ViewDef::new("V3-redundant", extra.build().unwrap()));
    let catalogue = ViewSet::new(catalogue);

    let mnl = minimal(&q, &catalogue).expect("still contained");
    let min = minimum(&q, &catalogue).expect("still contained");
    let pick = |sel: &[usize]| -> Vec<&str> {
        sel.iter()
            .map(|&i| catalogue.get(i).name.as_str())
            .collect()
    };
    println!("\nview selection over {{V1, V2, V3-redundant}}:");
    println!("  minimal  -> {:?}", pick(&mnl.views));
    println!("  minimum  -> {:?}", pick(&min.views));
    assert!(
        mnl.views.len() <= 2 && min.views.len() <= 2,
        "V3 never needed"
    );
    println!("\nthe redundant view is never selected ✓");
}
