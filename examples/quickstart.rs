//! Quickstart: define a pattern query, cache two views, and answer the query
//! from the views alone — without touching the data graph.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use graph_views::prelude::*;

fn main() {
    // 1. A small collaboration graph: two project managers, their DBAs and
    //    programmers (the shape of the paper's Fig. 1(a)).
    let mut b = GraphBuilder::new();
    let bob = b.add_node(["PM"]);
    let walt = b.add_node(["PM"]);
    let mat = b.add_node(["DBA"]);
    let dan = b.add_node(["PRG"]);
    let bill = b.add_node(["PRG"]);
    b.add_edge(bob, mat);
    b.add_edge(walt, mat);
    b.add_edge(bob, dan);
    b.add_edge(mat, dan);
    b.add_edge(dan, mat);
    b.add_edge(walt, bill);
    b.add_edge(bill, mat);
    b.add_edge(mat, bill);
    let g = b.build();
    println!("graph: {} nodes, {} edges", g.node_count(), g.edge_count());

    // 2. The query: a PM supervising a DBA and a PRG who collaborate in a
    //    cycle.
    let mut p = PatternBuilder::new();
    let pm = p.node_labeled("PM");
    let dba = p.node_labeled("DBA");
    let prg = p.node_labeled("PRG");
    p.edge(pm, dba);
    p.edge(dba, prg);
    p.edge(prg, dba);
    let query = p.build().expect("valid pattern");
    println!("\nquery:\n{query}");

    // 3. Two cached views: "PM -> DBA" and the "DBA <-> PRG" cycle.
    let mut v1 = PatternBuilder::new();
    let a = v1.node_labeled("PM");
    let c = v1.node_labeled("DBA");
    v1.edge(a, c);
    let mut v2 = PatternBuilder::new();
    let x = v2.node_labeled("DBA");
    let y = v2.node_labeled("PRG");
    v2.edge(x, y);
    v2.edge(y, x);
    let views = ViewSet::new(vec![
        ViewDef::new("pm-supervises-dba", v1.build().unwrap()),
        ViewDef::new("dba-prg-cycle", v2.build().unwrap()),
    ]);

    // 4. Static check (no graph involved): can the query be answered from
    //    these views at all? Theorem 1: yes iff the query is contained.
    let plan = contain(&query, &views).expect("query is contained in the views");
    println!(
        "containment holds; λ covers {} query edges via views {:?}",
        plan.lambda.len(),
        plan.used_views
    );

    // 5. Materialize the views once (this is the only scan of G)...
    let ext = materialize(&views, &g);
    println!(
        "materialized |V(G)| = {} cached match pairs ({}% of |E|)",
        ext.size(),
        100 * ext.size() / g.edge_count().max(1)
    );

    // 6. ...then answer the query from the cache, and cross-check against
    //    direct evaluation.
    let from_views = match_join(&query, &plan, &ext).expect("plan is valid");
    let direct = match_pattern(&query, &g);
    assert_eq!(from_views, direct);
    println!("\nMatchJoin(V(G)) == Match(G) ✓");
    for (ei, &(u, v)) in query.edges().iter().enumerate() {
        let set = &from_views.edge_matches[ei];
        println!("  S({u}→{v}) = {set:?}");
    }

    // 7. Steps 4-6 are what the QueryEngine automates: hand it the views
    //    and the graph once, then ask. It runs the containment analysis,
    //    costs the candidate view selections (all / minimal / minimum)
    //    against the materialized extension sizes, picks an executor, and
    //    answers — no graph access at query time.
    let engine = QueryEngine::materialize(views, &g);
    println!("\n--- the same, through the QueryEngine ---");
    println!("{}", engine.explain(&query));
    let via_engine = engine.answer_from_views(&query).expect("Qs ⊑ V");
    assert_eq!(via_engine, direct);
    println!("QueryEngine::answer_from_views == Match(G) ✓");
}
