//! The paper's future-work items in action: answering a query the cached
//! views only *partially* cover (hybrid evaluation), and choosing which
//! views to cache for a whole workload under a budget.
//!
//! ```sh
//! cargo run --example partial_and_selection
//! ```

use graph_views::prelude::*;
use graph_views::views::{
    hybrid_match_join, partial_contain, select_views_for_workload, ViewDef, ViewSet,
};

fn single(x: &str, y: &str) -> Pattern {
    let mut b = PatternBuilder::new();
    let u = b.node_labeled(x);
    let v = b.node_labeled(y);
    b.edge(u, v);
    b.build().unwrap()
}

fn chain(labels: &[&str]) -> Pattern {
    let mut b = PatternBuilder::new();
    let ids: Vec<_> = labels.iter().map(|l| b.node_labeled(l)).collect();
    for w in ids.windows(2) {
        b.edge(w[0], w[1]);
    }
    b.build().unwrap()
}

fn main() {
    // A small supply-chain graph.
    let mut b = GraphBuilder::new();
    let s1 = b.add_node(["Supplier"]);
    let f1 = b.add_node(["Factory"]);
    let w1 = b.add_node(["Warehouse"]);
    let t1 = b.add_node(["Store"]);
    let s2 = b.add_node(["Supplier"]);
    let f2 = b.add_node(["Factory"]);
    b.add_edge(s1, f1);
    b.add_edge(f1, w1);
    b.add_edge(w1, t1);
    b.add_edge(s2, f2); // f2 has no warehouse: will be pruned
    let g = b.build();

    // Only one view is cached: Supplier -> Factory.
    let views = ViewSet::new(vec![ViewDef::new("sf", single("Supplier", "Factory"))]);
    let ext = materialize(&views, &g);

    // The query needs more: Supplier -> Factory -> Warehouse -> Store.
    let q = chain(&["Supplier", "Factory", "Warehouse", "Store"]);

    // Classic containment fails...
    assert!(contain(&q, &views).is_none());
    println!("contain: query NOT contained in the cached views (as expected)");

    // ...but partial containment tells us exactly what is missing, and the
    // hybrid evaluator reads G only for the uncovered edges.
    let partial = partial_contain(&q, &views);
    println!(
        "partial coverage: {}/{} edges from views, {} require G access",
        q.edge_count() - partial.uncovered.len(),
        q.edge_count(),
        partial.uncovered.len()
    );
    let (r, stats) = hybrid_match_join(&q, &partial, &ext, &g).unwrap();
    assert_eq!(r, match_pattern(&q, &g));
    println!(
        "hybrid result == Match(G) ✓  ({} pairs, merged {} candidates)",
        r.size(),
        stats.merged_pairs
    );
    // The s2/f2 chain is pruned: only s1's chain survives.
    assert_eq!(r.node_set(PatternNodeId(0)), &[s1]);

    // The QueryEngine detects the partial coverage on its own and prices
    // the alternatives: a hybrid plan (views for covered edges + surgical
    // G scans for the rest) against the direct Match baseline. On a graph
    // this tiny the baseline wins — 3 of 4 edges would need G anyway — so
    // the planner picks Direct; on large graphs with good coverage it
    // picks Hybrid. Either way `answer` equals Match(G).
    let engine = QueryEngine::materialize(views, &g);
    println!("\n{}", engine.explain(&q));
    let plan = engine.plan(&q);
    assert!(
        matches!(plan, QueryPlan::Hybrid { .. } | QueryPlan::Direct { .. }) && plan.needs_graph(),
        "partially-covered query must fall back to a graph-reading plan"
    );
    assert_eq!(engine.answer(&q, &g).unwrap(), r);
    assert!(
        engine.answer_from_views(&q).is_err(),
        "strict views-only answering refuses partially-covered queries"
    );
    println!("QueryEngine fell back to a graph-reading plan and matched Match(G) ✓");

    // --- Workload-driven view selection -------------------------------
    let workload = vec![
        chain(&["Supplier", "Factory"]),
        chain(&["Supplier", "Factory", "Warehouse"]),
        chain(&["Factory", "Warehouse", "Store"]),
    ];
    let catalogue = ViewSet::new(vec![
        ViewDef::new("sf", single("Supplier", "Factory")),
        ViewDef::new("fw", single("Factory", "Warehouse")),
        ViewDef::new("ws", single("Warehouse", "Store")),
        ViewDef::new("decoy", single("Store", "Supplier")),
    ]);
    let sel = select_views_for_workload(&workload, &catalogue, 2, None);
    let names: Vec<&str> = sel
        .views
        .iter()
        .map(|&i| catalogue.get(i).name.as_str())
        .collect();
    println!(
        "\nbudget 2 over a 4-view catalogue: cache {:?} -> {}/{} workload queries fully answerable",
        names,
        sel.answered.iter().filter(|&&a| a).count(),
        workload.len()
    );
    let sel3 = select_views_for_workload(&workload, &catalogue, 3, None);
    println!(
        "budget 3: {}/{} answerable (the decoy view is never picked)",
        sel3.answered.iter().filter(|&&a| a).count(),
        workload.len()
    );
    assert!(!sel3.views.contains(&3));
}

use graph_views::pattern::PatternNodeId;
