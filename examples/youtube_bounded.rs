//! Bounded pattern queries over a YouTube-style recommendation network
//! (paper Section VI + the Fig. 7 view setting): edges of the query map to
//! bounded-length paths, and the query is answered from cached bounded views
//! with their distance index `I(V)`.
//!
//! ```sh
//! cargo run --release --example youtube_bounded
//! ```

use gpv_generator::covering_bounded_views;
use graph_views::generator::{fig7_views, youtube, youtube_predicate_pool};
use graph_views::prelude::*;
use graph_views::views::bview::{bmaterialize, BoundedViewDef, BoundedViewSet};
use graph_views::views::materialize;
use std::time::Instant;

fn main() {
    // A seeded YouTube-like graph: videos with category (C), age (A),
    // length (L), rate (R) and visits (V) attributes.
    let g = youtube(20_000, 7);
    println!(
        "YouTube emulator: {} videos, {} related-video edges",
        g.node_count(),
        g.edge_count()
    );

    // The paper's 12 plain views of Fig. 7, materialized as a cache.
    let p_views = fig7_views();
    let ext = materialize(&p_views, &g);
    println!(
        "Fig. 7 views materialized: {} cached pairs ({:.2}% of |E|)",
        ext.size(),
        100.0 * ext.size() as f64 / g.edge_count() as f64
    );

    // A bounded query: a popular Music video that leads, within 2 hops, to a
    // highly-rated video, which recommends (within 3 hops) popular Music
    // again — built from the same predicate vocabulary as the views.
    let pool = youtube_predicate_pool();
    let mut b = PatternBuilder::new();
    let a = b.node(pool[1].clone()); // C="Music" && V>=10000
    let c = b.node(pool[12].clone()); // R>=5 && V>=10000
    let d = b.node(pool[1].clone());
    b.edge_bounded(a, c, 2);
    b.edge_bounded(c, d, 3);
    let qb = b.build_bounded().unwrap();
    println!("\nbounded query:\n{qb}");

    // Cache bounded views that cover it (fragment decomposition), with the
    // distance index I(V) recorded during materialization.
    let bviews: BoundedViewSet = covering_bounded_views(std::slice::from_ref(&qb), 1, 7);
    let bext = bmaterialize(&bviews, &g);
    println!(
        "bounded view cache: {} views, |V(G)| = {} pairs with distances",
        bviews.card(),
        bext.size()
    );

    // Static containment check, then answer from the cache.
    let plan = bcontain(&qb, &bviews).expect("Qb ⊑ V by construction");
    let t = Instant::now();
    let via_views = bmatch_join(&qb, &plan, &bext).expect("valid plan");
    let t_join = t.elapsed();

    let t = Instant::now();
    let direct = bmatch_pattern(&qb, &g);
    let t_direct = t.elapsed();

    assert_eq!(via_views, direct);
    println!(
        "\nBMatchJoin == BMatch ✓   ({} result pairs)",
        direct.size()
    );
    println!(
        "BMatchJoin: {:>10.1?}   BMatch: {:>10.1?}   speedup: {:.1}x",
        t_join,
        t_direct,
        t_direct.as_secs_f64() / t_join.as_secs_f64().max(1e-9)
    );

    // Show a few matches with their witness distances.
    if !direct.is_empty() {
        let set = &direct.edge_matches[0];
        println!("\nsample matches of the first query edge (v, v', hops):");
        for &(v, w, d) in set.iter().take(5) {
            println!("  video {} ⇝ video {}  ({} hops)", v.0, w.0, d);
        }
    }

    // Bonus: one of the bounded views re-used as a plain view for the
    // single-hop case.
    let plain_views = BoundedViewSet::new(
        bviews
            .views()
            .iter()
            .map(|v| BoundedViewDef::new(format!("{}-again", v.name), v.pattern.clone()))
            .collect(),
    );
    println!(
        "\n(cache definitions are plain data: {} bounded views round-trip freely)",
        plain_views.card()
    );
}
