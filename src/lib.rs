//! # graph-views
//!
//! A complete Rust implementation of *Answering Graph Pattern Queries Using
//! Views* (Wenfei Fan, Xin Wang, Yinghui Wu — ICDE 2014).
//!
//! Graph pattern matching via (bounded) simulation can answer a pattern query
//! `Qs` over a large graph `G` **without accessing `G`**, using only a set of
//! materialized views `V(G)`, whenever `Qs` is *contained* in the view
//! definitions `V` (`Qs ⊑ V`). This crate is a facade over the workspace:
//!
//! * [`graph`] — the data-graph substrate ([`gpv_graph`]);
//! * [`pattern`] — pattern queries `Qs` / bounded patterns `Qb` ([`gpv_pattern`]);
//! * [`matching`] — `Match` / `BMatch` baselines and simulation engines
//!   ([`gpv_matching`]);
//! * [`views`] — the paper's contribution: containment, `contain` /
//!   `minimal` / `minimum`, `MatchJoin` / `BMatchJoin` ([`gpv_core`]);
//! * [`generator`] — seeded workload generators ([`gpv_generator`]).
//!
//! ## Quickstart
//!
//! ```
//! use graph_views::prelude::*;
//!
//! // Build a tiny data graph: PM -> DBA -> PRG -> DBA (cycle).
//! let mut b = GraphBuilder::new();
//! let pm = b.add_node(["PM"]);
//! let dba = b.add_node(["DBA"]);
//! let prg = b.add_node(["PRG"]);
//! b.add_edge(pm, dba);
//! b.add_edge(dba, prg);
//! b.add_edge(prg, dba);
//! let g = b.build();
//!
//! // A pattern: PM -> DBA.
//! let mut p = PatternBuilder::new();
//! let u0 = p.node_labeled("PM");
//! let u1 = p.node_labeled("DBA");
//! p.edge(u0, u1);
//! let q = p.build().unwrap();
//!
//! // Direct evaluation (the paper's Match baseline).
//! let result = gpv_matching::simulation::match_pattern(&q, &g);
//! assert!(!result.is_empty());
//!
//! // Define a view identical to the query, materialize it, then answer the
//! // query from the view alone.
//! let views = ViewSet::new(vec![ViewDef::new("v0", q.clone())]);
//! let ext = materialize(&views, &g);
//! let plan = contain(&q, &views).expect("query is contained in the views");
//! let via_views = match_join(&q, &plan, &ext).unwrap();
//! assert_eq!(via_views, result);
//!
//! // Or let the QueryEngine make every decision (containment analysis,
//! // cost-based view selection, sequential vs parallel execution):
//! let engine = QueryEngine::materialize(views, &g);
//! let via_engine = engine.answer_from_views(&q).expect("Qs ⊑ V");
//! assert_eq!(via_engine, result);
//! println!("{}", engine.explain(&q));
//! ```

#![forbid(unsafe_code)]

pub use gpv_core as views;
pub use gpv_generator as generator;
pub use gpv_graph as graph;
pub use gpv_matching as matching;
pub use gpv_pattern as pattern;

/// Commonly used items, re-exported for `use graph_views::prelude::*`.
pub mod prelude {
    pub use gpv_core::bcontainment::{bcontain, bminimal, bminimum};
    pub use gpv_core::bmatchjoin::bmatch_join;
    pub use gpv_core::containment::{contain, query_contained, ContainmentPlan};
    pub use gpv_core::cost::{CostEstimate, CostModel};
    pub use gpv_core::engine::{EngineConfig, EngineError, QueryEngine};
    pub use gpv_core::matchjoin::{match_join, match_join_with, JoinStrategy};
    pub use gpv_core::minimal::minimal;
    pub use gpv_core::minimum::minimum;
    pub use gpv_core::plan::{
        EdgeSource, ExecStrategy, FallbackReason, ParGranularity, QueryPlan, SelectionMode,
    };
    pub use gpv_core::view::{materialize, ViewDef, ViewExtensions, ViewSet};
    pub use gpv_graph::{DataGraph, GraphBuilder, NodeId, Value};
    pub use gpv_matching::bounded::bmatch_pattern;
    pub use gpv_matching::result::MatchResult;
    pub use gpv_matching::simulation::match_pattern;
    pub use gpv_pattern::{
        BoundedPattern, EdgeBound, Pattern, PatternBuilder, PatternNodeId, Predicate,
    };
}
