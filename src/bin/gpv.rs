//! `gpv` — command-line front end for graph pattern matching using views.
//!
//! ```text
//! gpv stats    --graph G.txt
//! gpv match    --graph G.txt --pattern Q.txt [--bounded] [--dual]
//! gpv contain  --pattern Q.txt --view V1.txt --view V2.txt [--bounded]
//! gpv minimal  --pattern Q.txt --view V1.txt ... (also: minimum)
//! gpv answer   --graph G.txt --pattern Q.txt --view V1.txt ... [--bounded]
//!              [--select auto|all|minimal|minimum] [--threads N]
//! gpv plan     --graph G.txt --pattern Q.txt --view V1.txt ... [--calibrated]  # EXPLAIN
//! gpv calibrate --graph G.txt --view V1.txt ... --pattern Q1.txt [--pattern Q2.txt ...]
//!              [--repeat K]
//! gpv serve    --graph G.txt --view V1.txt ... --pattern Q1.txt [--pattern Q2.txt ...]
//!              [--shards N] [--clients N] [--repeat K] [--result-cache-mb M] [--explain]
//!              [--store-dir D] [--updates-per-round N]
//! gpv advise   --graph G.txt --view V1.txt ... --pattern Q1.txt [--pattern Q2.txt ...]
//!              [--budget N]
//! gpv minimize --pattern Q.txt
//! gpv lint     --pattern Q1.txt [--pattern Q2.txt ...] [--view V1.txt ...]
//!              [--graph G.txt] [--json]
//! gpv check    --store-dir D [--graph G.txt] [--json]
//! gpv fuzz     [--iterations N] [--seed S] [--repro '<json>'] [--require-deltas]
//! ```
//!
//! `answer` and `plan` go through the unified [`core::QueryEngine`]: the
//! engine analyzes containment, costs the candidate view selections against
//! the materialized extension sizes (`--select auto`, the default), and
//! picks a sequential or parallel executor (omit `--threads` to
//! auto-detect the worker count).
//! Parallel plans also carry a fan-out *granularity* — per pattern edge, or
//! chunked *within* each edge's pair set when there are more workers than
//! edges (breaking the per-edge `|Eq|` speedup ceiling); the cost model
//! derives the chunk size from the per-edge pair counts, `--chunk-pairs N`
//! pins it. The EXPLAIN output shows the chosen executor and granularity
//! (`execute: parallel(8, chunked:65536)`), the per-edge merge sources
//! (`View`/`Graph`), and the active cost weights; `plan --calibrated` first
//! executes the query a few times (`--repeat`, min 3) to fill the
//! estimate-vs-actual log, re-fits the weights, and EXPLAINs under the
//! calibrated model.
//!
//! `calibrate` runs a whole workload (`--pattern` repeated) `--repeat`
//! times, least-squares-fits the cost weights against the measured wall
//! times, and prints the fitted microsecond weights plus the estimate
//! error before and after the fit.
//!
//! `serve` is the batch-serving front end over [`core::ViewService`]: it
//! shards the materialized views into a [`core::ViewStore`] (`--shards`),
//! then has `--clients` threads each submit the query batch (the
//! `--pattern` files) `--repeat` times concurrently. Repeats are separate
//! batches on purpose: identical queries inside one batch deduplicate,
//! identical queries *across* batches hit the cross-batch result cache
//! (budgeted by `--result-cache-mb`, 0 disables), and only the remainder
//! is planned (plan cache) and executed. The command reports the answers
//! once plus the service stats (plan- and result-cache hit rates, shard
//! occupancy, queue depth, latency quantiles).
//!
//! `serve --store-dir D` persists the sharded store as flat columnar
//! shard files (one per shard, see `gpv_core::shard` for the byte
//! layout). On the first run the materialized store is saved to `D`; on
//! later runs the shards are loaded from `D` — after checking they were
//! built from the same graph — and serving skips materialization
//! entirely.
//!
//! `serve --updates-per-round N` interleaves edge deltas with serving:
//! after every batch round, N deterministic edge updates (alternating
//! inserts of fresh edges and deletes of live ones, seeded by `--seed`)
//! are applied through [`core::ViewService::apply_delta`]. The delta
//! pipeline routes only the views whose label footprint overlaps the
//! delta through incremental maintenance and re-freezes just the ones
//! whose extension actually changed, so untouched views — and every
//! cached answer reading only them — survive each round verbatim.
//! Subsequent rounds serve against the post-delta graph, and the summary
//! reports how many deltas were applied and how many view extensions
//! were re-frozen. In this mode rounds are barriers: all clients finish
//! a round before the delta lands, so every answer within one round saw
//! one consistent store snapshot.
//!
//! `advise` recommends a view subset for a workload: it greedily selects
//! at most `--budget` views maximizing the number of fully-answered
//! `--pattern` queries ([`core::QueryEngine::advise_views`]), then ranks
//! the *unselected* resident views by arena bytes as eviction candidates
//! ([`core::ViewStore::eviction_advice`]).
//!
//! `lint` runs the static diagnostic passes (`GPV0xx` codes, catalogued
//! in `docs/DIAGNOSTICS.md`) over query patterns and a view set:
//! structural query lints (disconnected patterns, self-loops, duplicate
//! and redundant edges), provable-emptiness checks when `--graph` is
//! given, view subsumption, zero-coverage views against the `--pattern`
//! workload, and eviction advice for resident views no query reads.
//! `check` is the offline integrity checker for a `--store-dir`
//! persisted by `serve`: meta.json, per-shard magic / version / checksum
//! / CSR structure, cross-shard id uniqueness, and — when the bytes are
//! intact — a full snapshot re-validation (against the graph's
//! fingerprint and node ranges when `--graph` is given). Both print one
//! line per finding (or a machine-readable array under `--json`) and
//! exit nonzero only when an error-severity diagnostic fired.
//!
//! `fuzz` is the differential scenario harness (see `docs/TESTING.md`):
//! each iteration samples a `gpv_generator::Scenario` — graph emulator +
//! scale, query shapes, zipfian serving schedule, view coverage, store
//! mutations, and the full engine/service configuration (query mode,
//! executor + granularity, threads, chunk size, cost weights, cache
//! budgets, recalibration cadence) — deterministically from `--seed`, runs
//! it through `QueryEngine` *and* `ViewService`, and asserts bit-exact
//! agreement with naive `match_pattern` / `bmatch_pattern` on every
//! answer. A divergence prints the scenario's one-line JSON and the exact
//! `gpv fuzz --repro '<json>'` command that replays it. `--require-deltas`
//! forces every sampled scenario to be update-heavy (nonzero
//! `delta_batch_len` and `delete_ratio`, at least two rounds), so the
//! delta-maintenance pipeline is exercised on each iteration — CI runs a
//! smoke pass in this mode. Setting `GPV_FUZZ_INJECT=1` corrupts the
//! oracle on purpose (test-only) to prove the harness catches and
//! reproduces divergences.
//!
//! `--exec auto|seq|par` (answer/plan/serve/advise) overrides the cost
//! model's executor choice: `seq` forces the sequential executor, `par`
//! forces the parallel one — chunked granularity when `--chunk-pairs` is
//! given, per-edge otherwise. This is how the golden EXPLAIN tests pin
//! `parallel(T, chunked:N)` plans on fixtures far too small for the cost
//! gate to pick them.
//!
//! Graphs use the `gpv-graph` text format (`node <id> <labels> [k=v ...]` /
//! `edge <src> <dst>`); patterns use the `gpv-pattern` format
//! (`node <name> <condition>` / `edge <src> <dst> [bound]`).

use gpv_core as core;
use gpv_graph::io::parse_graph;
use gpv_pattern::{parse_bounded_pattern, BoundedPattern};
use std::process::ExitCode;

struct Args {
    graph: Option<String>,
    patterns: Vec<String>,
    views: Vec<String>,
    bounded: bool,
    dual: bool,
    explain: bool,
    calibrated: bool,
    select: String,
    threads: usize,
    chunk_pairs: Option<usize>,
    shards: usize,
    clients: usize,
    repeat: usize,
    result_cache_mb: usize,
    store_dir: Option<String>,
    budget: Option<usize>,
    exec: String,
    iterations: usize,
    seed: u64,
    repro: Option<String>,
    updates_per_round: usize,
    require_deltas: bool,
    json: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: gpv <stats|match|contain|minimal|minimum|answer|plan|calibrate|serve|advise|minimize|lint|check|fuzz> \
         [--graph F] [--pattern F]... [--view F]... [--bounded] [--dual] \
         [--select auto|all|minimal|minimum] [--exec auto|seq|par] [--threads N] [--chunk-pairs N] \
         [--calibrated] [--shards N] [--clients N] [--repeat K] [--result-cache-mb M] [--explain] \
         [--store-dir D] [--budget N] [--iterations N] [--seed S] [--repro JSON] \
         [--updates-per-round N] [--require-deltas] [--json]"
    );
    ExitCode::from(2)
}

fn parse_args(rest: &[String]) -> Result<Args, String> {
    let mut a = Args {
        graph: None,
        patterns: Vec::new(),
        views: Vec::new(),
        bounded: false,
        dual: false,
        explain: false,
        calibrated: false,
        select: "auto".into(),
        threads: 0,
        chunk_pairs: None,
        shards: 8,
        clients: 1,
        repeat: 1,
        result_cache_mb: 64,
        store_dir: None,
        budget: None,
        exec: "auto".into(),
        iterations: 25,
        seed: 42,
        repro: None,
        updates_per_round: 0,
        require_deltas: false,
        json: false,
    };
    let mut i = 0;
    let uint = |flag: &str, v: Option<&String>| -> Result<usize, String> {
        v.ok_or(format!("{flag} needs a count"))?
            .parse()
            .map_err(|_| format!("{flag} needs an integer"))
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--graph" => {
                a.graph = Some(rest.get(i + 1).ok_or("--graph needs a file")?.clone());
                i += 2;
            }
            "--pattern" => {
                a.patterns
                    .push(rest.get(i + 1).ok_or("--pattern needs a file")?.clone());
                i += 2;
            }
            "--view" => {
                a.views
                    .push(rest.get(i + 1).ok_or("--view needs a file")?.clone());
                i += 2;
            }
            "--select" => {
                a.select = rest.get(i + 1).ok_or("--select needs a mode")?.clone();
                i += 2;
            }
            "--threads" => {
                let n = uint("--threads", rest.get(i + 1))?;
                if n == 0 {
                    return Err(
                        "--threads must be at least 1 (omit the flag to auto-detect)".into(),
                    );
                }
                a.threads = n;
                i += 2;
            }
            "--chunk-pairs" => {
                let n = uint("--chunk-pairs", rest.get(i + 1))?;
                if n == 0 {
                    return Err(
                        "--chunk-pairs must be at least 1 (omit the flag for per-edge fan-out)"
                            .into(),
                    );
                }
                a.chunk_pairs = Some(n);
                i += 2;
            }
            "--shards" => {
                a.shards = uint("--shards", rest.get(i + 1))?.max(1);
                i += 2;
            }
            "--clients" => {
                a.clients = uint("--clients", rest.get(i + 1))?.max(1);
                i += 2;
            }
            "--repeat" => {
                a.repeat = uint("--repeat", rest.get(i + 1))?.max(1);
                i += 2;
            }
            "--result-cache-mb" => {
                a.result_cache_mb = uint("--result-cache-mb", rest.get(i + 1))?;
                i += 2;
            }
            "--store-dir" => {
                a.store_dir = Some(
                    rest.get(i + 1)
                        .ok_or("--store-dir needs a directory")?
                        .clone(),
                );
                i += 2;
            }
            "--budget" => {
                a.budget = Some(uint("--budget", rest.get(i + 1))?);
                i += 2;
            }
            "--exec" => {
                a.exec = rest.get(i + 1).ok_or("--exec needs a mode")?.clone();
                i += 2;
            }
            "--iterations" => {
                a.iterations = uint("--iterations", rest.get(i + 1))?.max(1);
                i += 2;
            }
            "--seed" => {
                a.seed = rest
                    .get(i + 1)
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_string())?;
                i += 2;
            }
            "--repro" => {
                a.repro = Some(rest.get(i + 1).ok_or("--repro needs a JSON line")?.clone());
                i += 2;
            }
            "--updates-per-round" => {
                a.updates_per_round = uint("--updates-per-round", rest.get(i + 1))?;
                i += 2;
            }
            "--require-deltas" => {
                a.require_deltas = true;
                i += 1;
            }
            "--json" => {
                a.json = true;
                i += 1;
            }
            "--bounded" => {
                a.bounded = true;
                i += 1;
            }
            "--dual" => {
                a.dual = true;
                i += 1;
            }
            "--explain" => {
                a.explain = true;
                i += 1;
            }
            "--calibrated" => {
                a.calibrated = true;
                i += 1;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(a)
}

fn load_graph(a: &Args) -> Result<gpv_graph::DataGraph, String> {
    let path = a.graph.as_ref().ok_or("missing --graph")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_graph(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_pattern(path: &str) -> Result<BoundedPattern, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_bounded_pattern(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_query(a: &Args) -> Result<BoundedPattern, String> {
    if a.patterns.len() > 1 {
        return Err(format!(
            "this command takes exactly one --pattern, got {} (only `serve` accepts several)",
            a.patterns.len()
        ));
    }
    load_pattern(a.patterns.first().ok_or("missing --pattern")?)
}

fn load_views(a: &Args) -> Result<Vec<(String, BoundedPattern)>, String> {
    if a.views.is_empty() {
        return Err("missing --view".into());
    }
    a.views
        .iter()
        .map(|p| load_pattern(p).map(|b| (p.clone(), b)))
        .collect()
}

fn require_plain(q: &BoundedPattern, what: &str) -> Result<gpv_pattern::Pattern, String> {
    if !q.is_plain() {
        return Err(format!("{what} has non-unit bounds; pass --bounded"));
    }
    Ok(q.pattern().clone())
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        return Err("no command".into());
    };
    let a = parse_args(&argv[1..])?;

    match cmd.as_str() {
        "stats" => {
            let g = load_graph(&a)?;
            let s = gpv_graph::stats::stats(&g);
            println!(
                "nodes={} edges={} labels={} avg_out_degree={:.3} max_out={} max_in={} alpha={:.3}",
                s.nodes,
                s.edges,
                s.labels,
                s.avg_out_degree,
                s.max_out_degree,
                s.max_in_degree,
                s.alpha
            );
        }
        "match" => {
            let g = load_graph(&a)?;
            let qb = load_query(&a)?;
            if a.bounded {
                let r = gpv_matching::bounded::bmatch_pattern(&qb, &g);
                print_bounded_result(qb.pattern(), &r);
            } else if a.dual {
                let q = require_plain(&qb, "pattern")?;
                let r = gpv_matching::dual::dual_match_pattern(&q, &g);
                print_result(&q, &r);
            } else {
                let q = require_plain(&qb, "pattern")?;
                let r = gpv_matching::simulation::match_pattern(&q, &g);
                print_result(&q, &r);
            }
        }
        "contain" | "minimal" | "minimum" => {
            let qb = load_query(&a)?;
            let views = load_views(&a)?;
            if a.bounded {
                let vs = core::BoundedViewSet::new(
                    views
                        .iter()
                        .map(|(n, p)| core::BoundedViewDef::new(n.clone(), p.clone()))
                        .collect(),
                );
                let sel: Option<Vec<usize>> = match cmd.as_str() {
                    "contain" => core::bcontain(&qb, &vs).map(|p| p.used_views),
                    "minimal" => core::bminimal(&qb, &vs).map(|s| s.views),
                    _ => core::bminimum(&qb, &vs).map(|s| s.views),
                };
                report_selection(sel, &views)?;
            } else {
                let q = require_plain(&qb, "pattern")?;
                let vs = plain_view_set(&views)?;
                let sel: Option<Vec<usize>> = match cmd.as_str() {
                    "contain" => core::contain(&q, &vs).map(|p| p.used_views),
                    "minimal" => core::minimal(&q, &vs).map(|s| s.views),
                    _ => core::minimum(&q, &vs).map(|s| s.views),
                };
                report_selection(sel, &views)?;
            }
        }
        "answer" => {
            let g = load_graph(&a)?;
            let qb = load_query(&a)?;
            let views = load_views(&a)?;
            if a.bounded {
                let vs = core::BoundedViewSet::new(
                    views
                        .iter()
                        .map(|(n, p)| core::BoundedViewDef::new(n.clone(), p.clone()))
                        .collect(),
                );
                let engine = core::QueryEngine::materialize(core::ViewSet::default(), &g)
                    .with_bounded_views(vs, &g)
                    .with_config(engine_config(&a)?);
                let r = engine.answer_bounded(&qb).map_err(|e| e.to_string())?;
                print_bounded_result(qb.pattern(), &r);
            } else {
                let q = require_plain(&qb, "pattern")?;
                let vs = plain_view_set(&views)?;
                let engine = core::QueryEngine::materialize(vs, &g).with_config(engine_config(&a)?);
                let r = engine.answer_from_views(&q).map_err(|e| match e {
                    core::EngineError::NotContained => {
                        "query is NOT contained in the views".to_string()
                    }
                    other => other.to_string(),
                })?;
                print_result(&q, &r);
            }
        }
        "plan" => {
            let g = load_graph(&a)?;
            let qb = load_query(&a)?;
            let q = require_plain(&qb, "pattern")?;
            let views = load_views(&a)?;
            let vs = plain_view_set(&views)?;
            let mut engine = core::QueryEngine::materialize(vs, &g).with_config(engine_config(&a)?);
            if a.calibrated {
                // Fill the estimate-vs-actual log by executing the query a
                // few times, then re-plan under the fitted weights.
                for _ in 0..a.repeat.max(3) {
                    let plan = engine.plan(&q);
                    engine
                        .execute(&q, &plan, Some(&g))
                        .map_err(|e| e.to_string())?;
                }
                let before = engine.estimate_error();
                if engine.apply_calibration() {
                    if let (Some(b), Some(after)) = (before, engine.estimate_error()) {
                        println!(
                            "# calibrated over {} runs: mean relative estimate error {b:.3} -> {after:.3}",
                            engine.cost_log().len()
                        );
                    }
                } else {
                    eprintln!("gpv: not enough measurements to calibrate; showing default weights");
                }
            }
            println!("{}", engine.explain(&q));
        }
        "calibrate" => calibrate(&a)?,
        "serve" => serve(&a)?,
        "advise" => advise(&a)?,
        "lint" => lint(&a)?,
        "check" => check(&a)?,
        "fuzz" => fuzz(&a)?,
        "minimize" => {
            let qb = load_query(&a)?;
            let q = require_plain(&qb, "pattern")?;
            let m = core::minimize(&q);
            println!(
                "# minimized {} -> {} nodes, {} -> {} edges",
                q.node_count(),
                m.pattern.node_count(),
                q.edge_count(),
                m.pattern.edge_count()
            );
            print!("{}", gpv_pattern::write_pattern(&m.pattern));
        }
        _ => return Err(format!("unknown command `{cmd}`")),
    }
    Ok(())
}

/// The `calibrate` command: run a workload against the engine a few times,
/// least-squares-fit the cost weights from the measured executions
/// ([`core::CostModel::calibrate`]), and report the fitted microsecond
/// weights plus the estimate error before/after the fit.
fn calibrate(a: &Args) -> Result<(), String> {
    let g = load_graph(a)?;
    let views = load_views(a)?;
    let vs = plain_view_set(&views)?;
    if a.patterns.is_empty() {
        return Err("missing --pattern".into());
    }
    let mut queries: Vec<gpv_pattern::Pattern> = Vec::new();
    for p in &a.patterns {
        queries.push(require_plain(&load_pattern(p)?, "pattern")?);
    }
    let mut engine = core::QueryEngine::materialize(vs, &g).with_config(engine_config(a)?);
    for _ in 0..a.repeat.max(3) {
        for q in &queries {
            let plan = engine.plan(q);
            engine
                .execute(q, &plan, Some(&g))
                .map_err(|e| e.to_string())?;
        }
    }
    let before = engine.estimate_error();
    if !engine.apply_calibration() {
        return Err(
            "not enough measurements to calibrate (add --pattern files or raise --repeat)".into(),
        );
    }
    let after = engine.estimate_error();
    let cm = engine.cost_model();
    println!("samples    : {}", engine.cost_log().len());
    println!("read_pair  : {:.6} us/pair", cm.read_pair);
    println!("refine_pair: {:.6} us/pair", cm.refine_pair);
    println!("scan_edge  : {:.6} us/edge", cm.scan_edge);
    if let (Some(b), Some(af)) = (before, after) {
        println!("est. error : {b:.3} -> {af:.3} (mean relative, lower is better)");
    }
    Ok(())
}

/// The `serve` command: shard views into a [`core::ViewStore`], stand up a
/// [`core::ViewService`], fire the batch from `--clients` concurrent client
/// threads, then print the answers (once) and the service-level stats.
fn serve(a: &Args) -> Result<(), String> {
    use std::sync::Arc;
    let g = load_graph(a)?;
    let views = load_views(a)?;
    let vs = plain_view_set(&views)?;
    if a.patterns.is_empty() {
        return Err("missing --pattern".into());
    }
    let mut batch: Vec<gpv_pattern::Pattern> = Vec::new();
    for p in &a.patterns {
        batch.push(require_plain(&load_pattern(p)?, "pattern")?);
    }

    // `--store-dir`: load the persisted columnar shards when they exist
    // (skipping materialization), otherwise materialize and persist them
    // for the next run. Either way the loaded store must belong to the
    // graph being served.
    let store = match &a.store_dir {
        Some(dir) if std::path::Path::new(dir).join("meta.json").exists() => {
            let loaded = core::ViewStore::load_from_dir(dir).map_err(|e| format!("{dir}: {e}"))?;
            if loaded.graph_fingerprint() != core::storage::graph_fingerprint(&g) {
                return Err(format!(
                    "{dir}: store was built from a different graph (fingerprint mismatch)"
                ));
            }
            println!("store-dir: loaded {} views from {dir}", loaded.len());
            Arc::new(loaded)
        }
        other => {
            let store = Arc::new(core::ViewStore::materialize(vs, &g, a.shards));
            if let Some(dir) = other {
                store.save_to_dir(dir).map_err(|e| format!("{dir}: {e}"))?;
                println!("store-dir: saved {} views to {dir}", store.len());
            }
            store
        }
    };
    let service = core::ViewService::with_config(
        store,
        core::ServiceConfig {
            engine: engine_config(a)?,
            result_cache_bytes: a.result_cache_mb << 20,
            // `--calibrated`: re-fit the cost weights after every *executed*
            // query, so later batches plan adaptively (cache hits record no
            // measurements and do not re-trigger the fit).
            recalibrate_every: if a.calibrated { 1 } else { 0 },
            ..core::ServiceConfig::default()
        },
    );

    // Every client thread submits the batch `--repeat` times concurrently.
    // Repeats are *separate* batches: the first exercises dedup and the
    // plan cache, later ones the cross-batch result cache. Answers are
    // identical across clients and repeats (asserted by tests/service.rs),
    // so only the first client's answers are printed.
    //
    // With `--updates-per-round` the repeats become barrier-separated
    // rounds instead: all clients serve the batch against the current
    // graph, then one seeded edge delta lands via `apply_delta` before
    // the next round, so every answer in a round saw one consistent
    // store snapshot.
    let t0 = std::time::Instant::now();
    let mut answers = Vec::new();
    let mut maintenance = None;
    if a.updates_per_round > 0 {
        let mut current = g.clone();
        let mut live: Vec<(gpv_graph::NodeId, gpv_graph::NodeId)> = current.edges().collect();
        let mut rng = a.seed ^ 0x6de1_7a5e_ed00_feed;
        let (mut applied, mut refrozen, mut inserted, mut deleted) =
            (0usize, 0usize, 0usize, 0usize);
        answers = (0..a.clients).map(|_| Vec::new()).collect();
        for _round in 0..a.repeat {
            std::thread::scope(|s| {
                let (svc, batch, cur) = (&service, &batch, &current);
                let handles: Vec<_> = (0..a.clients)
                    .map(|_| s.spawn(move || svc.serve_batch(batch, Some(cur))))
                    .collect();
                for (ci, h) in handles.into_iter().enumerate() {
                    answers[ci].extend(h.join().expect("client thread panicked"));
                }
            });
            // Alternate inserting a fresh edge and deleting a live one so
            // the delta stream keeps the edge count roughly stable.
            let n = current.node_count() as u32;
            let mut ins = Vec::new();
            let mut del = Vec::new();
            for k in 0..a.updates_per_round {
                if k % 2 == 1 && !live.is_empty() {
                    let idx = (splitmix64(&mut rng) as usize) % live.len();
                    del.push(live.swap_remove(idx));
                } else if n > 0 {
                    let e = (
                        gpv_graph::NodeId((splitmix64(&mut rng) % n as u64) as u32),
                        gpv_graph::NodeId((splitmix64(&mut rng) % n as u64) as u32),
                    );
                    if !live.contains(&e) {
                        live.push(e);
                        ins.push(e);
                    }
                }
            }
            let delta = core::EdgeDelta::new(ins, del);
            if !delta.is_empty() {
                inserted += delta.inserts.len();
                deleted += delta.deletes.len();
                let report = service
                    .apply_delta(&delta, &current)
                    .map_err(|e| e.to_string())?;
                current = report.graph;
                applied += 1;
                refrozen += report.changed.len();
            }
        }
        maintenance = Some(format!(
            "maintenance: {applied} deltas applied ({inserted} inserts / {deleted} deletes), \
             {refrozen} view extensions re-frozen"
        ));
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..a.clients)
                .map(|_| {
                    s.spawn(|| {
                        let mut served = Vec::new();
                        for _ in 0..a.repeat {
                            served.extend(service.serve_batch(&batch, Some(&g)));
                        }
                        served
                    })
                })
                .collect();
            for h in handles {
                answers.push(h.join().expect("client thread panicked"));
            }
        });
    }
    let wall = t0.elapsed().as_secs_f64();

    for (i, r) in answers[0].iter().enumerate() {
        match r {
            Ok(ans) => println!(
                "query {i}: {} pairs ({}, {}{} µs)",
                ans.result.size(),
                ans.disposition(),
                if ans.plan.needs_graph() {
                    "graph fallback, "
                } else {
                    "views only, "
                },
                ans.latency_micros
            ),
            Err(e) => println!("query {i}: error: {e}"),
        }
        if a.explain {
            if let Ok(ans) = r {
                for line in ans.plan.to_string().lines() {
                    println!("  {line}");
                }
            }
        }
    }

    let stats = service.stats();
    let served: usize = answers.iter().map(Vec::len).sum();
    println!("---");
    println!(
        "served {served} queries in {wall:.3}s ({:.0} q/s) from {} clients x {} batches x {} queries",
        served as f64 / wall.max(1e-9),
        a.clients,
        a.repeat,
        batch.len()
    );
    println!(
        "plan cache: {} hits / {} misses ({:.0}% hit rate), {} plans cached, {} batch-deduped",
        stats.plan_cache_hits,
        stats.plan_cache_misses,
        stats.plan_cache_hit_rate * 100.0,
        stats.plan_cache_size,
        stats.dedup_saved
    );
    println!(
        "result cache: {} hits / {} misses ({:.0}% hit rate), {} answers / {} KiB resident, {} evicted",
        stats.result_cache_hits,
        stats.result_cache_misses,
        stats.result_cache_hit_rate * 100.0,
        stats.result_cache_size,
        stats.result_cache_bytes / 1024,
        stats.result_cache_evictions
    );
    println!(
        "refusal cache: {} hits, {} refusals remembered",
        stats.refusal_hits, stats.refusal_cache_size
    );
    println!(
        "latency: p50 {}, p99 {}; max queue depth {}",
        stats.latency.quantile_label(0.5),
        stats.latency.quantile_label(0.99),
        stats.max_in_flight
    );
    println!(
        "executed: {} queries planned+run, {} served without executing (cost-log starved)",
        stats.executed_queries, stats.cost_log_starved
    );
    println!(
        "cost model: read={:.3} refine={:.3} scan={:.3} ({}), {} samples, est. error {}, {} recalibrations",
        stats.cost_model.read_pair,
        stats.cost_model.refine_pair,
        stats.cost_model.scan_edge,
        if stats.cost_model.calibrated {
            "calibrated"
        } else {
            "default"
        },
        stats.cost_samples,
        stats
            .estimate_error
            .map_or("n/a".into(), |e| format!("{e:.3}")),
        stats.recalibrations
    );
    let occupied = stats.shard_occupancy.iter().filter(|o| o.views > 0).count();
    println!(
        "store: {} views over {} shards ({} occupied): {}",
        stats.shard_occupancy.iter().map(|o| o.views).sum::<usize>(),
        stats.shard_occupancy.len(),
        occupied,
        stats
            .shard_occupancy
            .iter()
            .map(|o| format!("{}v/{}p", o.views, o.pairs))
            .collect::<Vec<_>>()
            .join(" ")
    );
    if let Some(m) = maintenance {
        println!("{m}");
    }
    Ok(())
}

/// Tiny deterministic PRNG (splitmix64) for the `--updates-per-round`
/// delta stream — keeps the binary free of a direct `rand` dependency and
/// the stream reproducible from `--seed`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The `advise` command: greedy view selection for a workload plus
/// eviction candidates for whatever the selection leaves unused.
fn advise(a: &Args) -> Result<(), String> {
    let g = load_graph(a)?;
    let views = load_views(a)?;
    let vs = plain_view_set(&views)?;
    if a.patterns.is_empty() {
        return Err("missing --pattern".into());
    }
    let mut workload: Vec<gpv_pattern::Pattern> = Vec::new();
    for p in &a.patterns {
        workload.push(require_plain(&load_pattern(p)?, "pattern")?);
    }

    let budget = a.budget.unwrap_or(views.len());
    let store = core::ViewStore::materialize(vs.clone(), &g, a.shards);
    let engine = core::QueryEngine::materialize(vs, &g).with_config(engine_config(a)?);
    let sel = engine.advise_views(&workload, budget, None);

    let answered = sel.answered.iter().filter(|&&x| x).count();
    println!(
        "advise: keep {} of {} views (budget {budget}), answering {}/{} workload queries",
        sel.views.len(),
        views.len(),
        answered,
        workload.len()
    );
    for &i in &sel.views {
        println!("keep {}", views[i].0);
    }
    for (qi, ok) in sel.answered.iter().enumerate() {
        if !ok {
            println!("unanswered {}", a.patterns[qi]);
        }
    }

    // `ViewStore::materialize` assigns ids in view order, so the selected
    // indices are the ids the store must retain.
    let needed: Vec<u64> = sel.views.iter().map(|&i| i as u64).collect();
    let advice = store.eviction_advice(&needed);
    if advice.is_empty() {
        println!("evict: nothing (all resident views are needed)");
    } else {
        for e in &advice {
            println!(
                "evict {} (id {}, {} pairs, {} bytes resident)",
                e.name, e.id, e.pairs, e.resident_bytes
            );
        }
    }
    Ok(())
}

/// Prints a diagnostic report — one human line per finding plus a count
/// summary, or a machine-readable JSON array under `--json` — and turns
/// error-severity findings into a nonzero exit status.
fn emit_diagnostics(diags: &[core::Diagnostic], json: bool) -> Result<(), String> {
    if json {
        println!(
            "{}",
            serde_json::to_string(diags).map_err(|e| e.to_string())?
        );
    } else {
        for d in diags {
            println!("{d}");
        }
        let count = |s: core::Severity| diags.iter().filter(|d| d.severity == s).count();
        println!(
            "{} findings: {} errors, {} warnings, {} info",
            diags.len(),
            count(core::Severity::Error),
            count(core::Severity::Warning),
            count(core::Severity::Info)
        );
    }
    if core::has_errors(diags) {
        let n = diags
            .iter()
            .filter(|d| d.severity == core::Severity::Error)
            .count();
        return Err(format!("{n} error-severity finding(s)"));
    }
    Ok(())
}

/// The `lint` command: the advisory static passes ([`core::lint_query`] /
/// [`core::lint_views`]) over `--pattern` queries and `--view` view sets.
/// With `--graph` the query lints also prove emptiness against the
/// graph's label alphabet and edge label pairs, and the view lints gain
/// eviction advice from a materialized [`core::ViewStore`]. Exit status
/// is nonzero only for error-severity findings — plain lints are
/// warnings and info.
fn lint(a: &Args) -> Result<(), String> {
    if a.patterns.is_empty() && a.views.is_empty() {
        return Err("lint needs at least one --pattern or --view".into());
    }
    let g = a.graph.as_ref().map(|_| load_graph(a)).transpose()?;
    let mut queries: Vec<(String, gpv_pattern::Pattern)> = Vec::new();
    for p in &a.patterns {
        queries.push((p.clone(), require_plain(&load_pattern(p)?, "pattern")?));
    }

    let mut diags: Vec<core::Diagnostic> = Vec::new();
    for (path, q) in &queries {
        for mut d in core::lint_query(q, g.as_ref()) {
            d.context = format!("{path}: {}", d.context);
            diags.push(d);
        }
    }

    if !a.views.is_empty() {
        let views = load_views(a)?;
        let vs = plain_view_set(&views)?;
        let workload: Vec<gpv_pattern::Pattern> = queries.into_iter().map(|(_, q)| q).collect();
        // Eviction advice needs resident extensions, which need the graph;
        // without one the subsumption and coverage lints still run.
        let advice = match &g {
            Some(g) => {
                let store = core::ViewStore::materialize(vs.clone(), g, a.shards);
                let needed: Vec<u64> = vs
                    .iter()
                    .filter(|(_, v)| {
                        workload
                            .iter()
                            .any(|q| !core::view_match(&v.pattern, q).is_empty())
                    })
                    .map(|(i, _)| i as u64)
                    .collect();
                store.eviction_advice(&needed)
            }
            None => Vec::new(),
        };
        diags.extend(core::lint_views(&vs, &workload, &advice));
    }
    emit_diagnostics(&diags, a.json)
}

/// The `check` command: the offline integrity checker for a `--store-dir`
/// persisted by `serve`. [`core::check_store_dir`] validates the bytes
/// (meta.json, shard magic / version / checksum, CSR offsets, sorted
/// sets, intern table, cross-shard id uniqueness); when they are intact
/// the store is loaded and its published snapshot re-validated through
/// [`core::check_snapshot`] — against the graph's fingerprint, node
/// ranges, and label footprints when `--graph` is given.
fn check(a: &Args) -> Result<(), String> {
    let dir = a.store_dir.as_ref().ok_or("check needs --store-dir")?;
    let g = a.graph.as_ref().map(|_| load_graph(a)).transpose()?;
    let mut diags = core::check_store_dir(dir);
    if !core::has_errors(&diags) {
        match core::ViewStore::load_from_dir(dir) {
            Ok(store) => diags.extend(core::check_snapshot(&store.snapshot(), g.as_ref())),
            Err(e) => diags.push(core::Diagnostic::new(
                core::classify_shard_error(&e),
                core::Severity::Error,
                format!("store failed to load after passing byte-level checks: {e}"),
                dir.clone(),
            )),
        }
    }
    emit_diagnostics(&diags, a.json)
}

/// The `fuzz` command: the differential scenario harness. Samples
/// deterministic scenarios, runs each through the engine and the service
/// under the scenario's configuration, and asserts every answer equals the
/// naive-oracle's. Any divergence prints the one-line JSON repro.
fn fuzz(a: &Args) -> Result<(), String> {
    use gpv_core::differential::{BoundedOracle, DifferentialReport, PlainOracle};
    use gpv_generator::{check_scenario_with, Scenario};
    use std::collections::BTreeSet;

    // Test-only hook (exercised by tests/cli.rs and documented in
    // docs/TESTING.md): corrupt the oracle so every scenario diverges,
    // proving divergences are caught and reproduce from the printed JSON.
    let inject = std::env::var("GPV_FUZZ_INJECT").is_ok_and(|v| !v.is_empty() && v != "0");
    let oracle: PlainOracle = if inject {
        Box::new(|q, g| {
            let mut r = gpv_matching::simulation::match_pattern(q, g);
            // Drop one pair, or fabricate one if every set is empty, so
            // the corruption is visible on every query.
            if !r.edge_matches.iter_mut().any(|s| s.pop().is_some()) {
                if let Some(s) = r.edge_matches.first_mut() {
                    s.push((gpv_graph::NodeId(0), gpv_graph::NodeId(0)));
                }
            }
            r
        })
    } else {
        Box::new(gpv_matching::simulation::match_pattern)
    };
    let boracle: BoundedOracle = Box::new(gpv_matching::bounded::bmatch_pattern);
    if inject {
        println!("warning: GPV_FUZZ_INJECT set -- oracle deliberately corrupted (test-only)");
    }

    let run_one = |sc: &Scenario| -> Result<DifferentialReport, String> {
        check_scenario_with(sc, &oracle, &boracle).map_err(|d| {
            println!("DIVERGENCE: {d}");
            println!("scenario: {}", sc.to_json_line());
            println!("repro: {}", sc.repro_command());
            "divergence found (repro line above)".to_string()
        })
    };

    if let Some(json) = &a.repro {
        let sc = Scenario::from_json_line(json)?;
        let r = run_one(&sc)?;
        println!(
            "repro ok: {} queries, {} answers over {} rounds, {} store mutations, {} edge deltas, {} bounded -- all matched the oracle",
            r.queries, r.served, r.rounds, r.mutations, r.edge_deltas, r.bounded_queries
        );
        return Ok(());
    }

    let mut totals = DifferentialReport::default();
    let mut modes: BTreeSet<String> = BTreeSet::new();
    let mut execs: BTreeSet<String> = BTreeSet::new();
    let mut weights: BTreeSet<String> = BTreeSet::new();
    let mut caches: BTreeSet<usize> = BTreeSet::new();
    for i in 0..a.iterations as u64 {
        let mut sc = Scenario::sample(a.seed, i);
        if a.require_deltas {
            // Update-heavy mode (CI smoke): force a nonzero delta stream
            // with real deletes, and enough rounds that post-delta serving
            // actually happens.
            sc.delta_batch_len = sc.delta_batch_len.max(2);
            if sc.delete_ratio == 0.0 {
                sc.delete_ratio = 0.5;
            }
            sc.rounds = sc.rounds.max(2);
        }
        modes.insert(format!("{:?}", sc.mode));
        execs.insert(format!("{:?}", sc.exec));
        weights.insert(
            if sc.cost_model().calibrated {
                "Calibrated"
            } else {
                "Default"
            }
            .to_string(),
        );
        caches.insert(sc.result_cache_bytes);
        let r = run_one(&sc)?;
        totals.absorb(&r);
        println!(
            "fuzz {i:>3}: mode={:?} exec={:?} weights={:?} cache={}B threads={} -- ok ({} answers, plans v/h/d {}/{}/{}, {} deltas)",
            sc.mode,
            sc.exec,
            sc.weights,
            sc.result_cache_bytes,
            sc.threads,
            r.served,
            r.plans_views_only,
            r.plans_hybrid,
            r.plans_direct,
            r.edge_deltas
        );
    }
    let join = |s: &BTreeSet<String>| s.iter().cloned().collect::<Vec<_>>().join(",");
    println!("---");
    println!(
        "fuzz: {} scenarios from seed {} -- engine and service matched match_pattern on every sample",
        a.iterations, a.seed
    );
    println!(
        "coverage: modes=[{}] execs=[{}] weights=[{}] caches={:?}",
        join(&modes),
        join(&execs),
        join(&weights),
        caches.iter().collect::<Vec<_>>()
    );
    println!(
        "checked: {} distinct queries, {} served answers, {} rounds, {} store mutations, {} bounded queries; plans views-only/hybrid/direct = {}/{}/{}; cache hits plan/result = {}/{}; {} edge deltas maintained {} views",
        totals.queries,
        totals.served,
        totals.rounds,
        totals.mutations,
        totals.bounded_queries,
        totals.plans_views_only,
        totals.plans_hybrid,
        totals.plans_direct,
        totals.plan_cache_hits,
        totals.result_cache_hits,
        totals.edge_deltas,
        totals.views_maintained
    );
    Ok(())
}

fn engine_config(a: &Args) -> Result<core::EngineConfig, String> {
    let force_selection = match a.select.as_str() {
        "auto" => None,
        "all" => Some(core::SelectionMode::All),
        "minimal" => Some(core::SelectionMode::Minimal),
        "minimum" => Some(core::SelectionMode::Minimum),
        other => return Err(format!("unknown --select mode `{other}`")),
    };
    let force_exec = match a.exec.as_str() {
        "auto" => None,
        "seq" => Some(core::ExecStrategy::Sequential(
            core::JoinStrategy::RankedBottomUp,
        )),
        "par" => Some(core::ExecStrategy::Parallel {
            threads: a.threads,
            granularity: match a.chunk_pairs {
                Some(cp) => core::ParGranularity::Chunked { chunk_pairs: cp },
                None => core::ParGranularity::PerEdge,
            },
        }),
        other => return Err(format!("unknown --exec mode `{other}`")),
    };
    Ok(core::EngineConfig {
        threads: a.threads,
        chunk_pairs: a.chunk_pairs,
        force_selection,
        force_exec,
        ..core::EngineConfig::default()
    })
}

fn plain_view_set(views: &[(String, BoundedPattern)]) -> Result<core::ViewSet, String> {
    let mut out = Vec::new();
    for (n, p) in views {
        if !p.is_plain() {
            return Err(format!("view {n} has non-unit bounds; pass --bounded"));
        }
        out.push(core::ViewDef::new(n.clone(), p.pattern().clone()));
    }
    Ok(core::ViewSet::new(out))
}

fn report_selection(
    sel: Option<Vec<usize>>,
    views: &[(String, BoundedPattern)],
) -> Result<(), String> {
    match sel {
        Some(ids) => {
            println!("contained=true");
            for i in ids {
                println!("view {}", views[i].0);
            }
            Ok(())
        }
        None => {
            println!("contained=false");
            Err("query is NOT contained in the views".into())
        }
    }
}

fn print_result(q: &gpv_pattern::Pattern, r: &gpv_matching::result::MatchResult) {
    if r.is_empty() {
        println!("result=empty");
        return;
    }
    println!("result={} pairs", r.size());
    for (ei, &(u, v)) in q.edges().iter().enumerate() {
        let pairs: Vec<String> = r.edge_matches[ei]
            .iter()
            .map(|&(a, b)| format!("({},{})", a.0, b.0))
            .collect();
        println!("S({u}->{v}) = {}", pairs.join(" "));
    }
}

fn print_bounded_result(q: &gpv_pattern::Pattern, r: &gpv_matching::result::BoundedMatchResult) {
    if r.is_empty() {
        println!("result=empty");
        return;
    }
    println!("result={} pairs", r.size());
    for (ei, &(u, v)) in q.edges().iter().enumerate() {
        let pairs: Vec<String> = r.edge_matches[ei]
            .iter()
            .map(|&(a, b, d)| format!("({},{},d{})", a.0, b.0, d))
            .collect();
        println!("S({u}->{v}) = {}", pairs.join(" "));
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            if e == "no command" {
                return usage();
            }
            eprintln!("gpv: {e}");
            ExitCode::FAILURE
        }
    }
}
