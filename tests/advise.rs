//! Edge-case coverage for the workload advisor (`QueryEngine::advise_views`)
//! and the eviction ranker (`ViewStore::eviction_advice`): empty stores,
//! zero budgets, and workloads that pin every resident view.

use gpv_generator::{covering_views, random_graph, random_pattern, PatternShape};
use graph_views::prelude::*;
use graph_views::views::store::ViewStore;

const LABELS: [&str; 4] = ["A", "B", "C", "D"];

/// One-edge pattern `A -> B` etc., used to build views that each cover
/// exactly one workload query.
fn edge_pattern(src: &str, dst: &str) -> Pattern {
    let mut b = PatternBuilder::new();
    let u = b.node_labeled(src);
    let v = b.node_labeled(dst);
    b.edge(u, v);
    b.build().unwrap()
}

/// An empty store has nothing to evict, whatever the advisor claims to
/// need — including ids that were never handed out.
#[test]
fn empty_store_yields_no_eviction_advice() {
    let g = random_graph(20, 50, &LABELS, 11);
    let store = ViewStore::for_graph(&g, 4);
    assert!(store.eviction_advice(&[]).is_empty());
    assert!(store.eviction_advice(&[0, 1, 99]).is_empty());

    // The advisor over an empty registry: nothing to keep, nothing
    // answered, whatever the budget.
    let engine = QueryEngine::materialize(ViewSet::default(), &g);
    let q = random_pattern(3, 4, &LABELS, PatternShape::Any, 13);
    let sel = engine.advise_views(std::slice::from_ref(&q), 8, None);
    assert!(sel.views.is_empty());
    assert_eq!(sel.answered, vec![false]);
    assert_eq!(sel.answered_weight, 0.0);
}

/// A zero view budget keeps nothing: every workload query goes unanswered
/// and every resident view becomes an eviction candidate, ranked by
/// resident bytes descending.
#[test]
fn zero_budget_marks_every_view_evictable() {
    let g = random_graph(30, 90, &LABELS, 17);
    let queries: Vec<Pattern> = (0..3)
        .map(|i| random_pattern(3, 4, &LABELS, PatternShape::Any, 100 + i))
        .collect();
    let views = covering_views(&queries, 2, 19);
    let n_views = views.card();
    assert!(n_views > 0, "covering_views produced an empty set");

    let engine = QueryEngine::materialize(views.clone(), &g);
    let sel = engine.advise_views(&queries, 0, None);
    assert!(sel.views.is_empty(), "budget 0 must keep nothing");
    assert!(sel.answered.iter().all(|&a| !a));
    assert_eq!(sel.answered_weight, 0.0);

    // With nothing needed, the ranker lists the whole store, largest
    // resident footprint first (ties broken by id ascending).
    let store = ViewStore::materialize(views, &g, 4);
    let advice = store.eviction_advice(&[]);
    assert_eq!(advice.len(), n_views);
    for w in advice.windows(2) {
        assert!(
            w[0].resident_bytes > w[1].resident_bytes
                || (w[0].resident_bytes == w[1].resident_bytes && w[0].id < w[1].id),
            "advice out of order: {:?} before {:?}",
            (w[0].id, w[0].resident_bytes),
            (w[1].id, w[1].resident_bytes),
        );
    }
}

/// When the workload needs every resident view, the advisor keeps them all
/// and the eviction ranker has nothing left to suggest.
#[test]
fn all_views_needed_workload_yields_empty_advice() {
    let mut b = GraphBuilder::new();
    let a = b.add_node(["A"]);
    let c = b.add_node(["B"]);
    let d = b.add_node(["C"]);
    b.add_edge(a, c);
    b.add_edge(c, d);
    let g = b.build();

    // Two single-edge queries, one view covering each: the greedy advisor
    // must keep both to answer both.
    let q1 = edge_pattern("A", "B");
    let q2 = edge_pattern("B", "C");
    let views = ViewSet::new(vec![
        ViewDef::new("ab", q1.clone()),
        ViewDef::new("bc", q2.clone()),
    ]);
    let workload = [q1, q2];

    let engine = QueryEngine::materialize(views.clone(), &g);
    let sel = engine.advise_views(&workload, 2, None);
    assert_eq!(sel.views, vec![0, 1], "both views earn their keep");
    assert!(sel.answered.iter().all(|&a| a));

    // `ViewStore::materialize` assigns ids in view order, so the selected
    // indices are the store ids the workload pins.
    let store = ViewStore::materialize(views, &g, 2);
    let needed: Vec<u64> = sel.views.iter().map(|&i| i as u64).collect();
    assert!(
        store.eviction_advice(&needed).is_empty(),
        "nothing evictable when the workload needs every view"
    );
}
