//! Whole-pipeline integration tests over the dataset emulators: generate a
//! dataset, build a workload, cache views, and verify view-based answering
//! end to end — the full loop a downstream user would run.

use gpv_generator::{
    covering_bounded_views, covering_views, random_pattern_with_preds,
    uniform_bounded_pattern_with_preds, PatternShape,
};
use graph_views::generator::{
    amazon, amazon_predicate_pool, citation, citation_predicate_pool, fig7_queries, fig7_views,
    youtube, youtube_predicate_pool,
};
use graph_views::prelude::*;

#[test]
fn amazon_plain_pipeline() {
    let g = amazon(4_000, 11);
    let pool = amazon_predicate_pool();
    let queries: Vec<Pattern> = (0..4)
        .map(|i| random_pattern_with_preds(4, 6, &pool, PatternShape::Any, 100 + i))
        .collect();
    let views = covering_views(&queries, 3, 5);
    let ext = materialize(&views, &g);
    for q in &queries {
        let plan = contain(q, &views).expect("covering views");
        let joined = match_join(q, &plan, &ext).unwrap();
        assert_eq!(joined, match_pattern(q, &g));
    }
}

#[test]
fn citation_minimal_minimum_pipeline() {
    let g = citation(4_000, 13);
    let pool = citation_predicate_pool();
    let queries: Vec<Pattern> = (0..3)
        .map(|i| random_pattern_with_preds(5, 8, &pool, PatternShape::Any, 200 + i))
        .collect();
    let views = covering_views(&queries, 2, 5);
    let ext = materialize(&views, &g);
    for q in &queries {
        let mnl = minimal(q, &views).expect("contained");
        let min = minimum(q, &views).expect("contained");
        assert!(min.views.len() <= mnl.views.len());
        let a = match_join(q, &mnl.plan, &ext).unwrap();
        let b = match_join(q, &min.plan, &ext).unwrap();
        let direct = match_pattern(q, &g);
        assert_eq!(a, direct, "minimal selection answers correctly");
        assert_eq!(b, direct, "minimum selection answers correctly");
    }
}

#[test]
fn youtube_bounded_pipeline() {
    let g = youtube(4_000, 17);
    let pool = youtube_predicate_pool();
    let queries: Vec<BoundedPattern> = (0..3)
        .map(|i| uniform_bounded_pattern_with_preds(4, 5, &pool, 2, PatternShape::Any, 300 + i))
        .collect();
    let views = covering_bounded_views(&queries, 2, 5);
    let ext = graph_views::views::bmaterialize(&views, &g);
    for q in &queries {
        let plan = bcontain(q, &views).expect("contained");
        let joined = bmatch_join(q, &plan, &ext).unwrap();
        assert_eq!(joined, bmatch_pattern(q, &g));
    }
}

#[test]
fn fig7_views_pipeline() {
    // The paper's concrete YouTube views (Fig. 7) answering composed queries.
    let g = youtube(6_000, 19);
    let views = fig7_views();
    assert_eq!(views.card(), 12);
    let ext = materialize(&views, &g);
    for (i, q) in fig7_queries().iter().enumerate() {
        let plan =
            contain(q, &views).unwrap_or_else(|| panic!("query {i} contained in Fig. 7 views"));
        let joined = match_join(q, &plan, &ext).unwrap();
        assert_eq!(joined, match_pattern(q, &g), "query {i}");
    }
}

#[test]
fn graph_io_roundtrip_through_pipeline() {
    // Serialize a dataset to the text format, parse it back, and verify the
    // pipeline produces identical answers — I/O is not lossy.
    use graph_views::graph::io::{parse_graph, write_graph};
    let g = amazon(500, 23);
    let text = write_graph(&g);
    let g2 = parse_graph(&text).expect("roundtrip parse");
    assert_eq!(g.node_count(), g2.node_count());
    assert_eq!(g.edge_count(), g2.edge_count());

    let pool = amazon_predicate_pool();
    let q = random_pattern_with_preds(3, 3, &pool, PatternShape::Any, 7);
    assert_eq!(match_pattern(&q, &g), match_pattern(&q, &g2));
}

#[test]
fn scc_ranks_consistent_across_crates() {
    // The rank function drives the optimized join; sanity-check it against
    // the graph-level condensation on a shared structure.
    let g = citation(1_000, 29);
    let cond = graph_views::graph::scc::condensation_of_graph(&g);
    // Citation graphs are DAGs: every component is a singleton.
    assert_eq!(cond.scc.comp_count, g.node_count());
    // Ranks are antitone along edges: r(u) > r(v) for every edge u -> v.
    for (u, v) in g.edges() {
        assert!(cond.rank(u.0) > cond.rank(v.0));
    }
}
