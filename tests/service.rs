//! Serving-layer contract tests: `ViewService` batch answers must be
//! byte-identical to sequential `QueryEngine::answer`, under concurrency,
//! across every plan shape the planner can pick, and the plan cache must
//! hand out *the same* plan for identical (query, view-set) fingerprints.

use gpv_generator::{covering_views, random_graph, random_pattern, PatternShape};
use graph_views::prelude::*;
use graph_views::views::service::query_fingerprint;
use graph_views::views::store::ViewStore;
use graph_views::views::{ServiceError, ViewService};
use proptest::prelude::*;
use std::sync::Arc;

const LABELS: [&str; 4] = ["A", "B", "C", "D"];

fn build_service(views: ViewSet, g: &DataGraph, shards: usize) -> ViewService {
    ViewService::new(Arc::new(ViewStore::materialize(views, g, shards)))
}

/// N threads, overlapping duplicated batches: every answer equals the
/// single-threaded `QueryEngine::answer` ground truth, identical
/// fingerprints share one cached plan, and the cache records hits.
#[test]
fn concurrent_batches_match_sequential_engine() {
    let g = random_graph(40, 120, &LABELS, 7);
    let queries: Vec<Pattern> = (0..5)
        .map(|i| random_pattern(3, 4, &LABELS, PatternShape::Any, 100 + i))
        .collect();
    let views = covering_views(&queries, 2, 9);
    let engine = QueryEngine::materialize(views.clone(), &g);
    let ground_truth: Vec<MatchResult> = queries
        .iter()
        .map(|q| engine.answer(q, &g).unwrap())
        .collect();

    let service = build_service(views, &g, 4);
    // Overlapping batches: each client rotates the same query set and
    // duplicates it, so clients race on the same plan-cache keys.
    let n_clients = 8;
    let answers: Vec<Vec<_>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_clients)
            .map(|c| {
                let service = &service;
                let queries = &queries;
                let g = &g;
                s.spawn(move || {
                    let mut batch: Vec<Pattern> = Vec::new();
                    for i in 0..queries.len() * 2 {
                        batch.push(queries[(c + i) % queries.len()].clone());
                    }
                    service.serve_batch(&batch, Some(g))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut plans_by_fingerprint: std::collections::HashMap<u64, Arc<QueryPlan>> =
        std::collections::HashMap::new();
    for (c, client_answers) in answers.iter().enumerate() {
        assert_eq!(client_answers.len(), queries.len() * 2);
        for (i, r) in client_answers.iter().enumerate() {
            let a = r.as_ref().expect("all queries covered");
            let qi = (c + i) % queries.len();
            assert_eq!(
                *a.result, ground_truth[qi],
                "client {c} answer {i} ≡ sequential QueryEngine::answer"
            );
            assert_eq!(a.query_fingerprint, query_fingerprint(&queries[qi]));
            // One plan per fingerprint, service-wide: every answer for the
            // same query must carry the identical cached plan.
            match plans_by_fingerprint.entry(a.query_fingerprint) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    assert_eq!(
                        **e.get(),
                        *a.plan,
                        "identical fingerprints produce identical plans"
                    );
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(a.plan.clone());
                }
            }
        }
    }

    let stats = service.stats();
    assert_eq!(
        stats.queries,
        (n_clients * queries.len() * 2) as u64,
        "every submitted query was counted"
    );
    // Under concurrency any mix of the three reuse layers may fire (which
    // client wins each race is nondeterministic), but *some* reuse must:
    // 8 clients served 2x the distinct query count each.
    assert!(
        stats.plan_cache_hits + stats.result_cache_hits + stats.dedup_saved > 0,
        "duplicated batches must reuse work: {stats:?}"
    );
    assert!(
        stats.plan_cache_size <= queries.len(),
        "at most one cached plan per distinct query"
    );
    assert_eq!(stats.in_flight, 0, "queue drains");
    assert_eq!(stats.latency.count(), stats.queries, "every query timed");

    // Deterministic tail: with the caches warm and no concurrency, a
    // repeated batch is answered entirely from the result cache, sharing
    // the identical `Arc` answers.
    let warm = service.serve_batch(&queries, Some(&g));
    for (qi, r) in warm.iter().enumerate() {
        let a = r.as_ref().unwrap();
        assert!(a.result_cached, "warm repeat must hit the result cache");
        assert_eq!(*a.result, ground_truth[qi]);
    }
    let after = service.stats();
    assert!(after.result_cache_hits >= queries.len() as u64);
}

/// Concurrent mutation: clients keep serving while a writer registers
/// views; every answer must still equal the ground truth of *some* valid
/// store state (here: always the ground truth, since extra views never
/// change answers — Theorem 1).
#[test]
fn serving_stays_correct_under_concurrent_registration() {
    let g = random_graph(30, 90, &LABELS, 11);
    let q = random_pattern(3, 4, &LABELS, PatternShape::Any, 5);
    let views = covering_views(std::slice::from_ref(&q), 2, 13);
    let truth = match_pattern(&q, &g);

    let service = build_service(views, &g, 8);
    std::thread::scope(|s| {
        // Writer: registers fresh (redundant) views, bumping the store
        // version and invalidating the engine snapshot repeatedly.
        let writer = {
            let service = &service;
            let g = &g;
            s.spawn(move || {
                for i in 0..10 {
                    let extra = random_pattern(2, 2, &LABELS, PatternShape::Any, 50 + i);
                    service
                        .store()
                        .insert(ViewDef::new(format!("w{i}"), extra), g)
                        .unwrap();
                }
            })
        };
        for _ in 0..4 {
            let service = &service;
            let q = &q;
            let g = &g;
            let truth = &truth;
            s.spawn(move || {
                for _ in 0..10 {
                    let a = service.serve(q, Some(g)).unwrap();
                    assert_eq!(&*a.result, truth);
                }
            });
        }
        writer.join().unwrap();
    });
    assert!(service.stats().engine_rebuilds >= 1);
}

/// Strict views-only serving refuses when the plan needs the graph.
#[test]
fn strict_mode_refuses_uncovered_queries() {
    let g = random_graph(30, 90, &LABELS, 3);
    let q = random_pattern(4, 5, &LABELS, PatternShape::Any, 8);
    // No views at all: every plan is Direct, which needs G.
    let service = build_service(ViewSet::default(), &g, 2);
    assert!(matches!(
        service.serve(&q, None),
        Err(ServiceError::NeedsGraph)
    ));
    // Same query with the graph: answered, equal to ground truth.
    let a = service.serve(&q, Some(&g)).unwrap();
    assert_eq!(*a.result, match_pattern(&q, &g));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance property: for random (graph, views, queries), a
    /// duplicated service batch answers byte-identically to sequential
    /// `QueryEngine::answer` across all plan shapes (views-only, hybrid,
    /// direct — whatever the planner picks per query), and duplicated
    /// entries hit the dedup/plan-cache path.
    #[test]
    fn batch_equals_sequential_engine(
        (n, m, gseed) in (5usize..50, 10usize..120, any::<u64>()),
        qseeds in proptest::collection::vec(any::<u64>(), 1..4),
        vseed in any::<u64>(),
        keep_probe in any::<u64>(),
        shards in 1usize..9,
    ) {
        let g = random_graph(n, m, &LABELS, gseed);
        let queries: Vec<Pattern> = qseeds
            .iter()
            .map(|&s| random_pattern(3, 4, &LABELS, PatternShape::Any, s))
            .collect();
        // Random subset of covering views: full, partial, or no coverage,
        // so the planner exercises every plan shape.
        let full = covering_views(&queries, 2, vseed);
        let keep: Vec<usize> = (0..full.card())
            .filter(|i| (keep_probe >> (i % 64)) & 1 == 1)
            .collect();
        let views = full.subset(&keep);

        let engine = QueryEngine::materialize(views.clone(), &g);
        let service = build_service(views, &g, shards);

        // Batch = each query twice (dedup path) in interleaved order.
        let mut batch: Vec<Pattern> = Vec::new();
        batch.extend(queries.iter().cloned());
        batch.extend(queries.iter().cloned());

        let answers = service.serve_batch(&batch, Some(&g));
        prop_assert_eq!(answers.len(), batch.len());
        for (i, r) in answers.iter().enumerate() {
            let expected = engine.answer(&batch[i], &g).unwrap();
            let a = r.as_ref().expect("graph fallback always answers");
            prop_assert_eq!(&*a.result, &expected, "batch slot {} diverged", i);
        }
        // The second copy of each distinct query deduplicated.
        let distinct: std::collections::HashSet<u64> =
            batch.iter().map(query_fingerprint).collect();
        prop_assert_eq!(
            service.stats().dedup_saved,
            (batch.len() - distinct.len()) as u64
        );
    }

    /// The tentpole acceptance property: with the result cache enabled,
    /// `serve_batch` stays bit-identical to a sequential
    /// `QueryEngine::answer` built fresh from the store snapshot, across
    /// rounds of repeated batches interleaved with store mutations and
    /// between-batch recalibration — no stale answer survives a version
    /// bump or a calibration-epoch change.
    #[test]
    fn result_cache_consistent_across_mutations_and_recalibration(
        (n, m, gseed) in (5usize..40, 10usize..100, any::<u64>()),
        qseeds in proptest::collection::vec(any::<u64>(), 1..4),
        vseed in any::<u64>(),
        shards in 1usize..7,
    ) {
        let g = random_graph(n, m, &LABELS, gseed);
        let queries: Vec<Pattern> = qseeds
            .iter()
            .map(|&s| random_pattern(3, 4, &LABELS, PatternShape::Any, s))
            .collect();
        let views = covering_views(&queries, 2, vseed);
        let mut batch: Vec<Pattern> = queries.clone();
        batch.extend(queries.iter().cloned());
        // Sweep the result-cache budget across disabled, tiny (constant
        // eviction churn), and the 64 MiB default: cold, thrashing, and
        // hot cache states all face the same mutation + recalibration
        // differential, with a fresh store and service per budget.
        for rcb in [0usize, 4096, 64 << 20] {
            let store = std::sync::Arc::new(ViewStore::materialize(views.clone(), &g, shards));
            let svc = ViewService::with_config(
                store,
                graph_views::views::ServiceConfig {
                    recalibrate_every: 1,
                    result_cache_bytes: rcb,
                    ..Default::default()
                },
            );
            for round in 0..4u64 {
                // Ground truth rebuilt from the *current* store state each
                // round, so cached answers are checked against what a fresh
                // sequential engine computes now.
                let engine = QueryEngine::from_snapshot(&svc.store().snapshot());
                let answers = svc.serve_batch(&batch, Some(&g));
                for (i, r) in answers.iter().enumerate() {
                    let a = r.as_ref().expect("graph fallback always answers");
                    let expected = engine.answer(&batch[i], &g).unwrap();
                    prop_assert_eq!(
                        &*a.result, &expected,
                        "round {} slot {} diverged at cache budget {}", round, i, rcb
                    );
                }
                // Mutate the store between rounds: the version bump must
                // invalidate every cached answer exactly.
                let extra = random_pattern(2, 2, &LABELS, PatternShape::Any, vseed ^ (round + 1));
                svc.store()
                    .insert(ViewDef::new(format!("m{round}"), extra), &g)
                    .unwrap();
            }
            // Repeats inside each round's batch reuse work via dedup or the
            // result cache; across mutated rounds nothing stale ever hit, but
            // the identical second half of each batch guarantees reuse fired
            // even with the result cache disabled outright.
            let stats = svc.stats();
            prop_assert!(
                stats.dedup_saved + stats.result_cache_hits > 0,
                "no reuse at cache budget {}", rcb
            );
        }
    }

    /// Serving through a store round-tripped to/from the durable cache
    /// changes nothing.
    #[test]
    fn cache_roundtripped_store_serves_identically(
        (n, m, gseed) in (5usize..40, 10usize..100, any::<u64>()),
        qseed in any::<u64>(),
        vseed in any::<u64>(),
    ) {
        let g = random_graph(n, m, &LABELS, gseed);
        let q = random_pattern(3, 4, &LABELS, PatternShape::Any, qseed);
        let views = covering_views(std::slice::from_ref(&q), 2, vseed);
        let direct = build_service(views.clone(), &g, 4);
        let store = ViewStore::materialize(views, &g, 4);
        let revived = ViewService::new(Arc::new(ViewStore::from_cache(store.to_cache(), 2)));
        let a = direct.serve(&q, Some(&g)).unwrap();
        let b = revived.serve(&q, Some(&g)).unwrap();
        prop_assert_eq!(a.result, b.result);
    }
}

/// The zero-copy rebuild contract: after a single-view insert, the rebuilt
/// engine's extensions for the *unchanged* views are the same `Arc`
/// allocations as before the mutation — the rebuild shares, it does not
/// deep-copy the store.
#[test]
fn engine_rebuild_shares_unchanged_extensions() {
    let g = random_graph(30, 80, &LABELS, 41);
    let q = random_pattern(3, 4, &LABELS, PatternShape::Any, 43);
    let views = covering_views(std::slice::from_ref(&q), 2, 47);
    let store = ViewStore::materialize(views, &g, 4);

    let before = QueryEngine::from_snapshot(&store.snapshot());
    store
        .insert(
            ViewDef::new(
                "extra",
                random_pattern(2, 2, &LABELS, PatternShape::Any, 53),
            ),
            &g,
        )
        .unwrap();
    let after = QueryEngine::from_snapshot(&store.snapshot());

    let old = &before.extensions().extensions;
    let new = &after.extensions().extensions;
    assert_eq!(new.len(), old.len() + 1, "one view was added");
    for (i, (a, b)) in old.iter().zip(new.iter()).enumerate() {
        assert!(
            std::sync::Arc::ptr_eq(a, b),
            "extension {i} was deep-copied instead of shared"
        );
    }
    // And the stored extension itself is the same allocation the engine
    // borrows — store → snapshot → engine is one chain of Arcs.
    let snap = store.snapshot();
    for (stored, engine_ext) in snap.views().iter().zip(new.iter()) {
        assert!(std::sync::Arc::ptr_eq(&stored.ext, engine_ext));
    }
    // Rebuilds change sharing, never answers.
    assert_eq!(
        before.answer(&q, &g).unwrap(),
        after.answer(&q, &g).unwrap()
    );
}

/// The LRU regression (the cache used to clear wholesale when full): a hot
/// entry that keeps being served must survive a sustained flood of distinct
/// cold queries, and the cache never exceeds its capacity.
#[test]
fn plan_cache_lru_keeps_hot_entries_under_cold_flood() {
    use graph_views::views::ServiceConfig;
    let g = random_graph(30, 80, &LABELS, 3);
    let hot = random_pattern(3, 3, &LABELS, PatternShape::Any, 1);
    let views = covering_views(std::slice::from_ref(&hot), 2, 5);
    let store = Arc::new(ViewStore::materialize(views, &g, 2));
    let svc = ViewService::with_config(
        store,
        ServiceConfig {
            plan_cache_capacity: 8,
            // Result caching off so every repeat reaches the plan cache —
            // this test pins the plan cache's LRU policy specifically.
            result_cache_bytes: 0,
            ..ServiceConfig::default()
        },
    );
    // Warm the hot entry, then flood with distinct cold queries while the
    // hot query keeps arriving in between (staying most-recently-used).
    svc.serve(&hot, Some(&g)).unwrap();
    for i in 0..50u64 {
        let cold = random_pattern(3, 3, &LABELS, PatternShape::Any, 1_000 + i);
        svc.serve(&cold, Some(&g)).unwrap();
        let again = svc.serve(&hot, Some(&g)).unwrap();
        assert!(
            again.plan_cached,
            "hot entry evicted by the cold flood at i={i}"
        );
    }
    let stats = svc.stats();
    assert!(
        stats.plan_cache_size <= 8,
        "LRU keeps the cache bounded: {}",
        stats.plan_cache_size
    );
}

/// Between-batch recalibration: with `recalibrate_every` set the service
/// re-fits the cost weights from measured executions, exposes the
/// calibrated model and its drift in the stats — and answers stay
/// byte-identical to the sequential engine throughout.
#[test]
fn recalibration_between_batches_keeps_answers_and_updates_model() {
    use graph_views::views::ServiceConfig;
    let g = random_graph(40, 120, &LABELS, 17);
    let covered = random_pattern(3, 4, &LABELS, PatternShape::Any, 21);
    let uncovered = random_pattern(4, 5, &LABELS, PatternShape::Any, 22);
    // Views cover only the first query: the batch mixes views-only and
    // graph-reading plans, giving the fit signal on every weight.
    let views = covering_views(std::slice::from_ref(&covered), 2, 23);
    let engine = QueryEngine::materialize(views.clone(), &g);
    let store = Arc::new(ViewStore::materialize(views, &g, 4));
    let svc = ViewService::with_config(
        store,
        ServiceConfig {
            recalibrate_every: 1,
            // Result caching off: a cache hit skips execution and records
            // no CostSample, so a fully cached steady state would starve
            // the measurement log this test needs to converge on a fit.
            // (The cache-on recalibration path is covered by the
            // `result_cache_consistent_across_mutations_and_recalibration`
            // proptest below.)
            result_cache_bytes: 0,
            ..ServiceConfig::default()
        },
    );
    let batch = vec![covered.clone(), uncovered.clone(), covered.clone()];
    for round in 0..4 {
        let answers = svc.serve_batch(&batch, Some(&g));
        for (i, r) in answers.iter().enumerate() {
            assert_eq!(
                *r.as_ref().unwrap().result,
                engine.answer(&batch[i], &g).unwrap(),
                "round {round} slot {i} diverged under recalibration"
            );
        }
    }
    let stats = svc.stats();
    assert!(stats.cost_samples > 0, "executions were recorded");
    assert!(
        stats.recalibrations >= 1,
        "the cadence re-fit at least once: {stats:?}"
    );
    assert!(stats.cost_model.calibrated, "active model is the re-fit");
    assert!(
        stats.estimate_error.is_some(),
        "drift gauge exposed once samples exist"
    );
}

/// Strict views-only serving survives calibration: a cost model that
/// demotes covered edges to graph scans must not make a fully-covered
/// query unanswerable when no graph is supplied — the service executes the
/// hybrid's view-source fallback instead of failing with NeedsGraph.
#[test]
fn strict_mode_serves_cost_based_hybrids_without_graph() {
    use graph_views::views::ServiceConfig;
    let g = random_graph(40, 120, &LABELS, 29);
    let q = random_pattern(3, 4, &LABELS, PatternShape::Any, 31);
    let views = covering_views(std::slice::from_ref(&q), 2, 33);
    let truth = match_pattern(&q, &g);
    let cheap_scan = CostModel {
        scan_edge: 0.0001,
        refine_pair: 0.001,
        calibrated: true,
        ..CostModel::default()
    };
    let store = Arc::new(ViewStore::materialize(views, &g, 2));
    let svc = ViewService::with_config(
        store,
        ServiceConfig {
            engine: EngineConfig {
                cost: cheap_scan,
                ..EngineConfig::default()
            },
            ..ServiceConfig::default()
        },
    );
    // With the graph: the demoted plan executes as planned.
    assert_eq!(*svc.serve(&q, Some(&g)).unwrap().result, truth);
    // Without the graph: still answered (view-source fallback; the cached
    // answer is graph-optional, so serving it strictly is sound).
    assert_eq!(*svc.serve(&q, None).unwrap().result, truth);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Scenario-driven serving sweep biased toward churn: every sampled
    /// scenario is forced onto the hard path — multiple rounds, a store
    /// mutation after each one, recalibration every batch — and the
    /// differential checker asserts the served answers stay bit-exact
    /// against `match_pattern` throughout. Failures print the scenario's
    /// one-line JSON and the exact `gpv fuzz --repro` command.
    #[test]
    fn scenario_serving_matches_oracle_under_mutation(master in any::<u64>(), idx in 0u64..60) {
        let mut sc = gpv_generator::Scenario::sample(master, idx);
        sc.rounds = 4;
        sc.updates_per_round = 1;
        sc.recalibrate_every = 1;
        if let Err(d) = gpv_generator::check_scenario(&sc) {
            return Err(TestCaseError::fail(format!(
                "{d}\nscenario: {}\nrepro: {}",
                sc.to_json_line(),
                sc.repro_command()
            )));
        }
    }
}
