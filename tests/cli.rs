//! Integration tests for the `gpv` CLI binary.

use std::io::Write as _;
use std::process::Command;

fn gpv() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gpv"))
}

fn write_tmp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("gpv-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

const GRAPH: &str = "\
node 0 PM\n\
node 1 DBA\n\
node 2 PRG\n\
edge 0 1\n\
edge 1 2\n\
edge 2 1\n";

const QUERY: &str = "\
node pm PM\n\
node dba DBA\n\
node prg PRG\n\
edge pm dba\n\
edge dba prg\n\
edge prg dba\n";

const VIEW1: &str = "node pm PM\nnode dba DBA\nedge pm dba\n";
const VIEW2: &str = "node dba DBA\nnode prg PRG\nedge dba prg\nedge prg dba\n";

#[test]
fn stats() {
    let g = write_tmp("stats-g.txt", GRAPH);
    let out = gpv()
        .args(["stats", "--graph", g.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("nodes=3"), "{s}");
    assert!(s.contains("edges=3"), "{s}");
}

#[test]
fn match_direct() {
    let g = write_tmp("match-g.txt", GRAPH);
    let q = write_tmp("match-q.txt", QUERY);
    let out = gpv()
        .args([
            "match",
            "--graph",
            g.to_str().unwrap(),
            "--pattern",
            q.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("result=3 pairs"), "{s}");
    assert!(s.contains("S(u0->u1) = (0,1)"), "{s}");
}

#[test]
fn contain_and_answer_via_views() {
    let g = write_tmp("ans-g.txt", GRAPH);
    let q = write_tmp("ans-q.txt", QUERY);
    let v1 = write_tmp("ans-v1.txt", VIEW1);
    let v2 = write_tmp("ans-v2.txt", VIEW2);

    let out = gpv()
        .args([
            "contain",
            "--pattern",
            q.to_str().unwrap(),
            "--view",
            v1.to_str().unwrap(),
            "--view",
            v2.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("contained=true"));

    // Answering through views equals direct matching.
    let direct = gpv()
        .args([
            "match",
            "--graph",
            g.to_str().unwrap(),
            "--pattern",
            q.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let via = gpv()
        .args([
            "answer",
            "--graph",
            g.to_str().unwrap(),
            "--pattern",
            q.to_str().unwrap(),
            "--view",
            v1.to_str().unwrap(),
            "--view",
            v2.to_str().unwrap(),
            "--select",
            "minimum",
        ])
        .output()
        .unwrap();
    assert!(
        via.status.success(),
        "{}",
        String::from_utf8_lossy(&via.stderr)
    );
    assert_eq!(direct.stdout, via.stdout);
}

#[test]
fn not_contained_fails() {
    let q = write_tmp("nc-q.txt", QUERY);
    let v1 = write_tmp("nc-v1.txt", VIEW1); // V1 alone misses the cycle
    let out = gpv()
        .args([
            "contain",
            "--pattern",
            q.to_str().unwrap(),
            "--view",
            v1.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("contained=false"));
}

#[test]
fn bounded_answer() {
    let g = write_tmp("b-g.txt", GRAPH);
    let q = write_tmp("b-q.txt", "node pm PM\nnode prg PRG\nedge pm prg 2\n");
    let v = write_tmp("b-v.txt", "node pm PM\nnode prg PRG\nedge pm prg 2\n");
    let out = gpv()
        .args([
            "answer",
            "--bounded",
            "--graph",
            g.to_str().unwrap(),
            "--pattern",
            q.to_str().unwrap(),
            "--view",
            v.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("(0,2,d2)"), "PM reaches PRG in 2 hops: {s}");
}

#[test]
fn serve_batch_command() {
    let g = write_tmp("srv-g.txt", GRAPH);
    let q = write_tmp("srv-q.txt", QUERY);
    let v1 = write_tmp("srv-v1.txt", VIEW1);
    let v2 = write_tmp("srv-v2.txt", VIEW2);
    let out = gpv()
        .args([
            "serve",
            "--graph",
            g.to_str().unwrap(),
            "--view",
            v1.to_str().unwrap(),
            "--view",
            v2.to_str().unwrap(),
            "--pattern",
            q.to_str().unwrap(),
            "--pattern",
            q.to_str().unwrap(),
            "--shards",
            "4",
            "--clients",
            "2",
            "--repeat",
            "3",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let s = String::from_utf8_lossy(&out.stdout);
    // 2 patterns x 3 repeats x 2 clients, all identical: the first is
    // planned, the second dedupes inside the first batch, and the repeated
    // batches hit the cross-batch result cache.
    assert!(s.contains("served 12 queries"), "{s}");
    assert!(s.contains("query 0: 3 pairs"), "{s}");
    assert!(s.contains("query 5: 3 pairs"), "{s}");
    assert!(s.contains("deduped"), "{s}");
    assert!(s.contains("result cached"), "{s}");
    assert!(s.contains("2 views over 4 shards"), "{s}");
    assert!(s.contains("plan cache:"), "{s}");
    assert!(s.contains("result cache:"), "{s}");
}

/// The CI contract: `gpv serve --repeat 2` on the example workload must
/// report a nonzero result-cache hit rate — the second submission of the
/// batch is answered from the cache, and a regression to always-miss is
/// loud. (The CI workflow runs the same command against the release
/// binary; this test pins it for `cargo test`.)
#[test]
fn serve_repeat_reports_nonzero_result_cache_hit_rate() {
    let g = write_tmp("rc-g.txt", GRAPH);
    let q = write_tmp("rc-q.txt", QUERY);
    let v1 = write_tmp("rc-v1.txt", VIEW1);
    let v2 = write_tmp("rc-v2.txt", VIEW2);
    let out = gpv()
        .args([
            "serve",
            "--graph",
            g.to_str().unwrap(),
            "--view",
            v1.to_str().unwrap(),
            "--view",
            v2.to_str().unwrap(),
            "--pattern",
            q.to_str().unwrap(),
            "--repeat",
            "2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let s = String::from_utf8_lossy(&out.stdout);
    let line = s
        .lines()
        .find(|l| l.starts_with("result cache:"))
        .unwrap_or_else(|| panic!("no result-cache line in: {s}"));
    // One client, one pattern, two repeats: exactly 1 hit / 1 miss.
    assert!(
        line.contains("1 hits / 1 misses (50% hit rate)"),
        "repeat 2 must hit the result cache once: {line}"
    );
    // Disabling the cache must report all misses, never fake hits.
    let off = gpv()
        .args([
            "serve",
            "--graph",
            g.to_str().unwrap(),
            "--view",
            v1.to_str().unwrap(),
            "--view",
            v2.to_str().unwrap(),
            "--pattern",
            q.to_str().unwrap(),
            "--repeat",
            "2",
            "--result-cache-mb",
            "0",
        ])
        .output()
        .unwrap();
    assert!(off.status.success());
    let s = String::from_utf8_lossy(&off.stdout);
    assert!(
        s.contains("result cache: 0 hits / 0 misses"),
        "disabled cache neither hits nor probes: {s}"
    );
}

/// `serve --updates-per-round N` interleaves seeded edge deltas with the
/// serving rounds through the delta-maintenance pipeline and reports a
/// maintenance summary. Serving must stay green across the deltas.
#[test]
fn serve_updates_per_round_applies_deltas_between_rounds() {
    let g = write_tmp("upd-g.txt", GRAPH);
    let q = write_tmp("upd-q.txt", QUERY);
    let v1 = write_tmp("upd-v1.txt", VIEW1);
    let v2 = write_tmp("upd-v2.txt", VIEW2);
    let out = gpv()
        .args([
            "serve",
            "--graph",
            g.to_str().unwrap(),
            "--view",
            v1.to_str().unwrap(),
            "--view",
            v2.to_str().unwrap(),
            "--pattern",
            q.to_str().unwrap(),
            "--clients",
            "2",
            "--repeat",
            "3",
            "--updates-per-round",
            "2",
            "--seed",
            "7",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let s = String::from_utf8_lossy(&out.stdout);
    // 1 pattern x 3 rounds x 2 clients.
    assert!(s.contains("served 6 queries"), "{s}");
    assert!(s.contains("maintenance: "), "{s}");
    assert!(s.contains("deltas applied"), "{s}");
    assert!(s.contains("view extensions re-frozen"), "{s}");
    // The stats block keeps its grep-stable lines in update mode.
    assert!(s.contains("plan cache:"), "{s}");
    assert!(s.contains("result cache:"), "{s}");
    assert!(s.contains("refusal cache:"), "{s}");
}

#[test]
fn minimize_command() {
    let q = write_tmp(
        "min-q.txt",
        "node a A\nnode b1 B\nnode b2 B\nedge a b1\nedge a b2\n",
    );
    let out = gpv()
        .args(["minimize", "--pattern", q.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("3 -> 2 nodes"), "{s}");
}

#[test]
fn single_pattern_commands_reject_multiple_patterns() {
    let g = write_tmp("mp-g.txt", GRAPH);
    let q = write_tmp("mp-q.txt", QUERY);
    let out = gpv()
        .args([
            "match",
            "--graph",
            g.to_str().unwrap(),
            "--pattern",
            q.to_str().unwrap(),
            "--pattern",
            q.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("exactly one --pattern"));
}

#[test]
fn bad_usage() {
    let out = gpv().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = gpv().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
}

/// Golden-file contract for `gpv plan` EXPLAIN output. The per-edge
/// `View`/`Graph` sources and the active cost weights are part of the plan
/// IR contract (the serving layer EXPLAINs cached plans with the same
/// renderer), so format drift must be a deliberate edit to `tests/golden/`,
/// not a side effect. CI runs this via `cargo test`.
#[test]
fn plan_explain_matches_golden() {
    let g = write_tmp("gold-g.txt", GRAPH);
    let q = write_tmp("gold-q.txt", QUERY);
    let v1 = write_tmp("gold-v1.txt", VIEW1);
    let v2 = write_tmp("gold-v2.txt", VIEW2);
    let chain = write_tmp(
        "gold-chain.txt",
        "node pm PM\nnode dba DBA\nnode prg PRG\nedge pm dba\nedge dba prg\n",
    );
    let vxy = write_tmp("gold-vxy.txt", "node x X\nnode y Y\nedge x y\n");
    let run = |args: &[&std::path::PathBuf], views: &[&std::path::PathBuf]| -> String {
        let mut cmd = gpv();
        cmd.args(["plan", "--graph", args[0].to_str().unwrap()]);
        cmd.args(["--pattern", args[1].to_str().unwrap()]);
        for v in views {
            cmd.args(["--view", v.to_str().unwrap()]);
        }
        let out = cmd.output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    assert_eq!(
        run(&[&g, &q], &[&v1, &v2]),
        include_str!("golden/plan_views_only.txt"),
        "views-only EXPLAIN drifted; update tests/golden/ deliberately"
    );
    assert_eq!(
        run(&[&g, &chain], &[&v1]),
        include_str!("golden/plan_hybrid.txt"),
        "hybrid EXPLAIN drifted; update tests/golden/ deliberately"
    );
    assert_eq!(
        run(&[&g, &q], &[&vxy]),
        include_str!("golden/plan_direct.txt"),
        "direct EXPLAIN drifted; update tests/golden/ deliberately"
    );
}

/// Golden-file contract for the parallel-executor EXPLAIN lines: `--exec
/// par` pins `parallel(T, per-edge)`, and each `--chunk-pairs` setting pins
/// `parallel(T, chunked:N)` — the chunk size is part of the plan IR, so a
/// chunking change that leaks into EXPLAIN must be a deliberate golden
/// edit. The forced executor changes only the `execute:` line; sources,
/// cost and weights stay identical to the auto plan.
#[test]
fn plan_explain_parallel_matches_golden() {
    let g = write_tmp("goldp-g.txt", GRAPH);
    let q = write_tmp("goldp-q.txt", QUERY);
    let v1 = write_tmp("goldp-v1.txt", VIEW1);
    let v2 = write_tmp("goldp-v2.txt", VIEW2);
    let run = |extra: &[&str]| -> String {
        let mut cmd = gpv();
        cmd.args(["plan", "--graph", g.to_str().unwrap()]);
        cmd.args(["--pattern", q.to_str().unwrap()]);
        cmd.args(["--view", v1.to_str().unwrap()]);
        cmd.args(["--view", v2.to_str().unwrap()]);
        cmd.args(["--exec", "par", "--threads", "8"]);
        cmd.args(extra);
        let out = cmd.output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    assert_eq!(
        run(&[]),
        include_str!("golden/plan_parallel_per_edge.txt"),
        "per-edge parallel EXPLAIN drifted; update tests/golden/ deliberately"
    );
    assert_eq!(
        run(&["--chunk-pairs", "64"]),
        include_str!("golden/plan_parallel_chunked_64.txt"),
        "chunked:64 EXPLAIN drifted; update tests/golden/ deliberately"
    );
    assert_eq!(
        run(&["--chunk-pairs", "65536"]),
        include_str!("golden/plan_parallel_chunked_65536.txt"),
        "chunked:65536 EXPLAIN drifted; update tests/golden/ deliberately"
    );
}

/// `gpv calibrate` fits measured weights and reports the error reduction.
#[test]
fn calibrate_command_reports_fit() {
    let g = write_tmp("cal-g.txt", GRAPH);
    let q = write_tmp("cal-q.txt", QUERY);
    let v1 = write_tmp("cal-v1.txt", VIEW1);
    let v2 = write_tmp("cal-v2.txt", VIEW2);
    let out = gpv()
        .args([
            "calibrate",
            "--graph",
            g.to_str().unwrap(),
            "--pattern",
            q.to_str().unwrap(),
            "--view",
            v1.to_str().unwrap(),
            "--view",
            v2.to_str().unwrap(),
            "--repeat",
            "5",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("read_pair"), "{s}");
    assert!(s.contains("est. error"), "{s}");
}

/// `gpv plan --calibrated` EXPLAINs under re-fitted weights.
#[test]
fn plan_calibrated_shows_fitted_weights() {
    let g = write_tmp("pc-g.txt", GRAPH);
    let q = write_tmp("pc-q.txt", QUERY);
    let v1 = write_tmp("pc-v1.txt", VIEW1);
    let v2 = write_tmp("pc-v2.txt", VIEW2);
    let out = gpv()
        .args([
            "plan",
            "--calibrated",
            "--graph",
            g.to_str().unwrap(),
            "--pattern",
            q.to_str().unwrap(),
            "--view",
            v1.to_str().unwrap(),
            "--view",
            v2.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("sources:"), "{s}");
    assert!(s.contains("(calibrated)"), "{s}");
}

/// `serve --store-dir` must save the sharded store on the first run, load
/// it on the second — announcing which happened — and serve identical
/// answers either way (the store-dir round trip may not perturb results).
#[test]
fn serve_store_dir_saves_then_loads_with_identical_answers() {
    let g = write_tmp("sd-g.txt", GRAPH);
    let q = write_tmp("sd-q.txt", QUERY);
    let v1 = write_tmp("sd-v1.txt", VIEW1);
    let v2 = write_tmp("sd-v2.txt", VIEW2);
    let dir = std::env::temp_dir().join(format!("gpv-cli-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let run = || {
        gpv()
            .args([
                "serve",
                "--graph",
                g.to_str().unwrap(),
                "--view",
                v1.to_str().unwrap(),
                "--view",
                v2.to_str().unwrap(),
                "--pattern",
                q.to_str().unwrap(),
                "--store-dir",
                dir.to_str().unwrap(),
            ])
            .output()
            .unwrap()
    };
    // The per-query latency varies run to run; everything before it is
    // the answer (pair count, disposition, sourcing) and must match.
    let answers = |stdout: &str| -> Vec<String> {
        stdout
            .lines()
            .filter(|l| l.starts_with("query "))
            .map(|l| l[..l.rfind(", ").unwrap_or(l.len())].to_string())
            .collect()
    };

    let first = run();
    assert!(
        first.status.success(),
        "{}",
        String::from_utf8_lossy(&first.stderr)
    );
    let s1 = String::from_utf8_lossy(&first.stdout).to_string();
    assert!(s1.contains("store-dir: saved 2 views"), "{s1}");
    assert!(dir.join("meta.json").exists());

    let second = run();
    assert!(
        second.status.success(),
        "{}",
        String::from_utf8_lossy(&second.stderr)
    );
    let s2 = String::from_utf8_lossy(&second.stdout).to_string();
    assert!(s2.contains("store-dir: loaded 2 views"), "{s2}");

    let (a1, a2) = (answers(&s1), answers(&s2));
    assert!(!a1.is_empty(), "{s1}");
    assert_eq!(a1, a2, "answers must be identical across save and load");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Serving a persisted store against a *different* graph must be refused
/// up front (fingerprint mismatch), not silently produce wrong answers.
#[test]
fn serve_store_dir_rejects_a_different_graph() {
    let g = write_tmp("sdm-g.txt", GRAPH);
    let q = write_tmp("sdm-q.txt", QUERY);
    let v1 = write_tmp("sdm-v1.txt", VIEW1);
    let v2 = write_tmp("sdm-v2.txt", VIEW2);
    // Same shape, one extra node: a different fingerprint.
    let g2 = write_tmp(
        "sdm-g2.txt",
        "node 0 PM\nnode 1 DBA\nnode 2 PRG\nnode 3 PM\nedge 0 1\nedge 1 2\nedge 2 1\nedge 3 1\n",
    );
    let dir = std::env::temp_dir().join(format!("gpv-cli-store-mismatch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let run = |graph: &std::path::Path| {
        gpv()
            .args([
                "serve",
                "--graph",
                graph.to_str().unwrap(),
                "--view",
                v1.to_str().unwrap(),
                "--view",
                v2.to_str().unwrap(),
                "--pattern",
                q.to_str().unwrap(),
                "--store-dir",
                dir.to_str().unwrap(),
            ])
            .output()
            .unwrap()
    };
    assert!(run(&g).status.success());
    let bad = run(&g2);
    assert!(!bad.status.success(), "mismatched graph must be rejected");
    let err = String::from_utf8_lossy(&bad.stderr);
    assert!(err.contains("different graph"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `advise` prints the kept views, the unanswered workload queries, and
/// eviction candidates for whatever the budget leaves out.
#[test]
fn advise_reports_selection_and_eviction_candidates() {
    let g = write_tmp("adv-g.txt", GRAPH);
    let q = write_tmp("adv-q.txt", QUERY);
    let v1 = write_tmp("adv-v1.txt", VIEW1);
    let v2 = write_tmp("adv-v2.txt", VIEW2);

    // Full budget: both views kept, the workload is answered, nothing to
    // evict.
    let full = gpv()
        .args([
            "advise",
            "--graph",
            g.to_str().unwrap(),
            "--view",
            v1.to_str().unwrap(),
            "--view",
            v2.to_str().unwrap(),
            "--pattern",
            q.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        full.status.success(),
        "{}",
        String::from_utf8_lossy(&full.stderr)
    );
    let s = String::from_utf8_lossy(&full.stdout);
    assert!(s.contains("answering 1/1 workload queries"), "{s}");
    assert!(s.contains("evict: nothing"), "{s}");

    // Budget 1: one view kept, the query unanswered, the other view is an
    // eviction candidate with its resident bytes.
    let one = gpv()
        .args([
            "advise",
            "--graph",
            g.to_str().unwrap(),
            "--view",
            v1.to_str().unwrap(),
            "--view",
            v2.to_str().unwrap(),
            "--pattern",
            q.to_str().unwrap(),
            "--budget",
            "1",
        ])
        .output()
        .unwrap();
    assert!(
        one.status.success(),
        "{}",
        String::from_utf8_lossy(&one.stderr)
    );
    let s = String::from_utf8_lossy(&one.stdout);
    assert!(s.contains("keep 1 of 2 views (budget 1)"), "{s}");
    assert!(s.contains("unanswered "), "{s}");
    assert!(s.contains("evict "), "{s}");
    assert!(s.contains("bytes resident"), "{s}");
}

/// `advise --budget 0` is a legal degenerate request: keep nothing, answer
/// nothing, and flag every resident view as an eviction candidate.
#[test]
fn advise_zero_budget_keeps_nothing() {
    let g = write_tmp("adv0-g.txt", GRAPH);
    let q = write_tmp("adv0-q.txt", QUERY);
    let v1 = write_tmp("adv0-v1.txt", VIEW1);
    let v2 = write_tmp("adv0-v2.txt", VIEW2);

    let out = gpv()
        .args([
            "advise",
            "--graph",
            g.to_str().unwrap(),
            "--view",
            v1.to_str().unwrap(),
            "--view",
            v2.to_str().unwrap(),
            "--pattern",
            q.to_str().unwrap(),
            "--budget",
            "0",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(
        s.contains("keep 0 of 2 views (budget 0), answering 0/1 workload queries"),
        "{s}"
    );
    assert!(!s.contains("\nkeep "), "budget 0 must keep no views: {s}");
    assert!(s.contains("unanswered "), "{s}");
    // Both resident views are eviction candidates.
    assert_eq!(s.matches("evict ").count(), 2, "{s}");
}

/// `gpv fuzz` smoke: a short deterministic sweep passes and reports both
/// the per-sample matrix coverage and the aggregate differential totals.
#[test]
fn fuzz_smoke_passes_and_reports_coverage() {
    let out = gpv()
        .args(["fuzz", "--iterations", "10", "--seed", "7"])
        .env_remove("GPV_FUZZ_INJECT")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(
        s.contains("engine and service matched match_pattern on every sample"),
        "{s}"
    );
    assert!(s.contains("coverage: modes=["), "{s}");
    assert!(s.contains("checked: "), "{s}");
}

/// `fuzz --require-deltas` forces every sampled scenario to carry a
/// nonzero insert/delete stream, so the sweep exercises the incremental
/// maintenance pipeline on each iteration (the CI smoke runs this mode).
#[test]
fn fuzz_require_deltas_exercises_maintenance_on_every_scenario() {
    let out = gpv()
        .args([
            "fuzz",
            "--iterations",
            "6",
            "--seed",
            "7",
            "--require-deltas",
        ])
        .env_remove("GPV_FUZZ_INJECT")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(
        s.contains("engine and service matched match_pattern on every sample"),
        "{s}"
    );
    let checked = s
        .lines()
        .find(|l| l.starts_with("checked: "))
        .unwrap_or_else(|| panic!("no totals line in: {s}"));
    let deltas: usize = checked
        .split("; ")
        .find(|p| p.contains("edge deltas"))
        .and_then(|p| p.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("unparseable totals line: {checked}"));
    assert!(
        deltas > 0,
        "update-heavy sweep applied no deltas: {checked}"
    );
}

/// The acceptance loop for the harness itself: a deliberately injected
/// divergence (test-only oracle corruption via `GPV_FUZZ_INJECT`) is
/// caught, prints a one-line JSON scenario, and that exact line replayed
/// through `gpv fuzz --repro` reproduces the divergence — and passes clean
/// once the corruption is removed.
#[test]
fn fuzz_injected_divergence_reproduces_from_printed_json() {
    let out = gpv()
        .args(["fuzz", "--iterations", "2", "--seed", "7"])
        .env("GPV_FUZZ_INJECT", "1")
        .output()
        .unwrap();
    assert!(!out.status.success(), "injected corruption must be caught");
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("DIVERGENCE: "), "{s}");
    let json = s
        .lines()
        .find_map(|l| l.strip_prefix("scenario: "))
        .unwrap_or_else(|| panic!("no scenario repro line in:\n{s}"))
        .to_string();

    // The printed JSON replays the divergence under the corrupted oracle...
    let bad = gpv()
        .args(["fuzz", "--repro", &json])
        .env("GPV_FUZZ_INJECT", "1")
        .output()
        .unwrap();
    assert!(
        !bad.status.success(),
        "repro must re-trigger the divergence"
    );
    assert!(
        String::from_utf8_lossy(&bad.stdout).contains("DIVERGENCE: "),
        "{}",
        String::from_utf8_lossy(&bad.stdout)
    );

    // ...and passes clean against the honest oracle.
    let good = gpv()
        .args(["fuzz", "--repro", &json])
        .env_remove("GPV_FUZZ_INJECT")
        .output()
        .unwrap();
    assert!(
        good.status.success(),
        "{}{}",
        String::from_utf8_lossy(&good.stdout),
        String::from_utf8_lossy(&good.stderr)
    );
    assert!(
        String::from_utf8_lossy(&good.stdout).contains("repro ok: "),
        "{}",
        String::from_utf8_lossy(&good.stdout)
    );
}

/// Boundary flag values are structured errors, not silent clamps or
/// panics: `--threads 0` and `--chunk-pairs 0` each print one clean
/// `gpv:` line on stderr and exit nonzero.
#[test]
fn zero_thread_and_chunk_flags_error_cleanly() {
    let g = write_tmp("zero-g.txt", GRAPH);
    let q = write_tmp("zero-q.txt", QUERY);
    let v1 = write_tmp("zero-v1.txt", VIEW1);
    for flag in ["--threads", "--chunk-pairs"] {
        let out = gpv()
            .args([
                "answer",
                "--graph",
                g.to_str().unwrap(),
                "--pattern",
                q.to_str().unwrap(),
                "--view",
                v1.to_str().unwrap(),
                flag,
                "0",
            ])
            .output()
            .unwrap();
        assert!(!out.status.success(), "{flag} 0 must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains(&format!("{flag} must be at least 1")),
            "{flag}: {err}"
        );
        assert!(!err.contains("panicked"), "{flag}: {err}");
        assert_eq!(err.lines().count(), 1, "{flag}: one clean line, got {err}");
    }
}

/// A malformed `--repro` descriptor is a structured error: one clean
/// `gpv:` line, nonzero exit, no panic or backtrace.
#[test]
fn fuzz_repro_bad_descriptor_errors_cleanly() {
    for bad in ["not json at all", "{\"seed\": \"wrong-type\"}", "{", ""] {
        let out = gpv().args(["fuzz", "--repro", bad]).output().unwrap();
        assert!(!out.status.success(), "--repro {bad:?} must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("bad scenario JSON"), "{bad:?}: {err}");
        assert!(!err.contains("panicked"), "{bad:?}: {err}");
        assert_eq!(err.lines().count(), 1, "{bad:?}: one clean line, got {err}");
    }
}

/// `gpv lint` surfaces the advisory diagnostics: a provably-empty query
/// (no PRG -> PM edge in the fixture graph) and a subsumed duplicate
/// view. Warnings do not fail the exit status.
#[test]
fn lint_reports_findings_and_exits_zero() {
    let g = write_tmp("lint-g.txt", GRAPH);
    let q = write_tmp("lint-q.txt", "node a PRG\nnode b PM\nedge a b\n");
    let v1 = write_tmp("lint-v1.txt", VIEW1);
    let v2 = write_tmp("lint-v2.txt", VIEW1); // duplicate pattern: subsumed
    let out = gpv()
        .args([
            "lint",
            "--graph",
            g.to_str().unwrap(),
            "--pattern",
            q.to_str().unwrap(),
            "--view",
            v1.to_str().unwrap(),
            "--view",
            v2.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "warnings must not fail the exit: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("GPV013"), "provably-empty warning missing: {s}");
    assert!(s.contains("GPV020"), "subsumption warning missing: {s}");
    assert!(s.contains("0 errors"), "summary line missing: {s}");
}

/// `gpv lint --json` emits one machine-readable JSON array with the
/// stable code, kebab-case name, severity, message and context per
/// finding — and nothing else on stdout.
#[test]
fn lint_json_emits_machine_readable_array() {
    let g = write_tmp("lintj-g.txt", GRAPH);
    let q = write_tmp("lintj-q.txt", "node a PRG\nnode b PM\nedge a b\n");
    let out = gpv()
        .args([
            "lint",
            "--graph",
            g.to_str().unwrap(),
            "--pattern",
            q.to_str().unwrap(),
            "--json",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let s = String::from_utf8_lossy(&out.stdout);
    assert_eq!(s.lines().count(), 1, "one JSON line, got {s}");
    assert!(s.starts_with("[{"), "{s}");
    for key in [
        "\"code\":\"GPV013\"",
        "\"name\":\"query-provably-empty\"",
        "\"severity\":\"warning\"",
        "\"message\":",
        "\"context\":",
    ] {
        assert!(s.contains(key), "missing {key}: {s}");
    }
}

/// `gpv check --store-dir`: a store persisted by `serve` passes with
/// zero findings; after a payload bit-flip the checksum mismatch is
/// reported under its stable code and the exit turns nonzero.
#[test]
fn check_command_passes_clean_store_and_flags_corruption() {
    let g = write_tmp("check-g.txt", GRAPH);
    let q = write_tmp("check-q.txt", QUERY);
    let v1 = write_tmp("check-v1.txt", VIEW1);
    let v2 = write_tmp("check-v2.txt", VIEW2);
    let dir = std::env::temp_dir().join(format!("gpv-cli-check-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let save = gpv()
        .args([
            "serve",
            "--graph",
            g.to_str().unwrap(),
            "--pattern",
            q.to_str().unwrap(),
            "--view",
            v1.to_str().unwrap(),
            "--view",
            v2.to_str().unwrap(),
            "--shards",
            "2",
            "--store-dir",
            dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        save.status.success(),
        "{}",
        String::from_utf8_lossy(&save.stderr)
    );

    let clean = gpv()
        .args([
            "check",
            "--store-dir",
            dir.to_str().unwrap(),
            "--graph",
            g.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        clean.status.success(),
        "{}{}",
        String::from_utf8_lossy(&clean.stdout),
        String::from_utf8_lossy(&clean.stderr)
    );
    assert!(
        String::from_utf8_lossy(&clean.stdout).contains("0 errors"),
        "{}",
        String::from_utf8_lossy(&clean.stdout)
    );

    // Flip one payload byte in the first nonempty shard.
    let shard = (0..2)
        .map(|i| dir.join(format!("shard-{i:04}.bin")))
        .find(|p| std::fs::metadata(p).is_ok_and(|m| m.len() > 40))
        .expect("a nonempty shard file");
    let mut bytes = std::fs::read(&shard).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&shard, bytes).unwrap();

    let bad = gpv()
        .args(["check", "--store-dir", dir.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    assert!(!bad.status.success(), "corruption must fail the exit");
    let s = String::from_utf8_lossy(&bad.stdout);
    assert!(s.contains("\"code\":\"GPV054\""), "{s}");
    assert!(s.contains("shard-checksum-mismatch"), "{s}");
    std::fs::remove_dir_all(&dir).ok();
}
