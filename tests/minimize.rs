//! Property tests for pattern minimization: the simulation-equivalence
//! quotient is a genuinely equivalent query — per-edge match sets transfer
//! through the edge map on every graph.

use gpv_generator::{random_graph, random_pattern, PatternShape};
use graph_views::prelude::*;
use graph_views::views::{minimize, query_contained};
use proptest::prelude::*;

const LABELS: [&str; 3] = ["A", "B", "C"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn quotient_preserves_match_sets(
        qseed in any::<u64>(),
        gseed in any::<u64>(),
        nv in 2usize..6,
        ne in 1usize..8,
    ) {
        let q = random_pattern(nv, ne, &LABELS, PatternShape::Any, qseed);
        let m = minimize(&q);
        prop_assert!(m.pattern.size() <= q.size());
        prop_assert!(query_contained(&q, &m.pattern));
        prop_assert!(query_contained(&m.pattern, &q));

        let g = random_graph(25, 70, &LABELS, gseed);
        let r1 = match_pattern(&q, &g);
        let r2 = match_pattern(&m.pattern, &g);
        prop_assert_eq!(r1.is_empty(), r2.is_empty());
        if !r1.is_empty() {
            for (ei, set) in r1.edge_matches.iter().enumerate() {
                let qe = m.edge_map[ei];
                prop_assert_eq!(set, &r2.edge_matches[qe.index()], "edge {}", ei);
            }
        }
    }

    /// Minimization is idempotent: minimizing a quotient changes nothing.
    #[test]
    fn minimization_idempotent(qseed in any::<u64>()) {
        let q = random_pattern(5, 7, &LABELS, PatternShape::Any, qseed);
        let m1 = minimize(&q);
        let m2 = minimize(&m1.pattern);
        prop_assert_eq!(&m2.pattern, &m1.pattern);
    }

    /// Minimizing before containment checking gives the same verdict.
    #[test]
    fn containment_invariant_under_minimization(
        qseed in any::<u64>(),
        vseed in any::<u64>(),
    ) {
        use gpv_generator::covering_views;
        let q = random_pattern(4, 6, &LABELS, PatternShape::Any, qseed);
        let views = covering_views(std::slice::from_ref(&q), 2, vseed);
        let m = minimize(&q);
        prop_assert_eq!(
            contain(&q, &views).is_some(),
            contain(&m.pattern, &views).is_some()
        );
    }
}
