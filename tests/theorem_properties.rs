//! Property-based tests for the paper's theorems, over randomized graphs,
//! queries and view sets.
//!
//! The central property (Theorem 1 / Theorem 8): whenever `Q ⊑ V`,
//! `MatchJoin` over the materialized views equals direct evaluation — for
//! *every* graph. Plus: minimality is irreducible (Theorem 5), minimum never
//! selects more views than minimal (Theorem 6's point), both join strategies
//! agree, and the literal union-merge agrees with the narrowed merge.

use gpv_generator::{
    covering_bounded_views, covering_views, random_bounded_pattern, random_graph, random_pattern,
    PatternShape,
};
use graph_views::prelude::*;
use graph_views::views::matchjoin::merge_step_union;
use graph_views::views::ContainmentPlan;
use proptest::prelude::*;

const LABELS: [&str; 4] = ["A", "B", "C", "D"];

fn arb_graph() -> impl Strategy<Value = DataGraph> {
    (5usize..60, 10usize..150, any::<u64>())
        .prop_map(|(n, m, seed)| random_graph(n, m, &LABELS, seed))
}

fn arb_query() -> impl Strategy<Value = Pattern> {
    (2usize..5, 1usize..6, any::<u64>())
        .prop_map(|(nv, ne, seed)| random_pattern(nv, ne, &LABELS, PatternShape::Any, seed))
}

fn arb_bounded_query() -> impl Strategy<Value = BoundedPattern> {
    (2usize..4, 1usize..5, 1u32..4, any::<u64>()).prop_map(|(nv, ne, k, seed)| {
        random_bounded_pattern(nv, ne, &LABELS, k, PatternShape::Any, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1: MatchJoin(V(G)) == Match(G) whenever Q ⊑ V.
    #[test]
    fn theorem1_matchjoin_equals_match(g in arb_graph(), q in arb_query(), vseed in any::<u64>()) {
        let views = covering_views(std::slice::from_ref(&q), 3, vseed);
        let plan = contain(&q, &views).expect("covering views contain q");
        let ext = materialize(&views, &g);
        let joined = match_join(&q, &plan, &ext).unwrap();
        let direct = match_pattern(&q, &g);
        prop_assert_eq!(joined, direct);
    }

    /// Both worklist strategies compute the same fixpoint.
    #[test]
    fn join_strategies_agree(g in arb_graph(), q in arb_query(), vseed in any::<u64>()) {
        use graph_views::views::{match_join_with, JoinStrategy};
        let views = covering_views(std::slice::from_ref(&q), 2, vseed);
        let plan = contain(&q, &views).expect("contained");
        let ext = materialize(&views, &g);
        let (a, _) = match_join_with(&q, &plan, &ext, JoinStrategy::RankedBottomUp).unwrap();
        let (b, _) = match_join_with(&q, &plan, &ext, JoinStrategy::NaiveFixpoint).unwrap();
        prop_assert_eq!(a, b);
    }

    /// The union merge (literal Fig. 2) and the narrowed single-witness
    /// merge both lead to the correct result.
    #[test]
    fn union_merge_agrees(g in arb_graph(), q in arb_query(), vseed in any::<u64>()) {
        // Compare end results: narrowed path via match_join, union path via
        // merge_step_union + the naive fixpoint (re-using public pieces).
        let views = covering_views(std::slice::from_ref(&q), 3, vseed);
        let plan: ContainmentPlan = contain(&q, &views).expect("contained");
        let ext = materialize(&views, &g);
        let narrowed = match_join(&q, &plan, &ext).unwrap();
        let direct = match_pattern(&q, &g);
        prop_assert_eq!(&narrowed, &direct);
        // The union initialization is a superset of the narrowed one; its
        // per-edge sets must still contain every true match.
        let union = merge_step_union(&q, &plan, &ext).unwrap();
        if !direct.is_empty() {
            for (ei, set) in direct.edge_matches.iter().enumerate() {
                for pair in set {
                    prop_assert!(union[ei].contains(pair), "union merge lost a true match");
                }
            }
        }
    }

    /// Theorem 5: the minimal selection is irreducible — dropping any view
    /// breaks containment.
    #[test]
    fn minimal_is_irreducible(q in arb_query(), vseed in any::<u64>()) {
        let views = covering_views(std::slice::from_ref(&q), 2, vseed);
        let sel = minimal(&q, &views).expect("contained");
        for skip in &sel.views {
            let rest: Vec<usize> = sel.views.iter().copied().filter(|v| v != skip).collect();
            prop_assert!(
                contain(&q, &views.subset(&rest)).is_none(),
                "view {} is redundant in a 'minimal' selection",
                skip
            );
        }
    }

    /// minimum never selects more views than minimal, and both contain q.
    #[test]
    fn minimum_not_larger_than_minimal(q in arb_query(), vseed in any::<u64>()) {
        let views = covering_views(std::slice::from_ref(&q), 3, vseed);
        let mnl = minimal(&q, &views).expect("contained");
        let min = minimum(&q, &views).expect("contained");
        prop_assert!(min.views.len() <= mnl.views.len());
        prop_assert!(contain(&q, &views.subset(&min.views)).is_some());
        prop_assert!(contain(&q, &views.subset(&mnl.views)).is_some());
    }

    /// Theorem 8: BMatchJoin(V(G)) == BMatch(G) whenever Qb ⊑ V.
    #[test]
    fn theorem8_bounded_join_equals_bmatch(
        g in arb_graph(),
        qb in arb_bounded_query(),
        vseed in any::<u64>(),
    ) {
        let views = covering_bounded_views(std::slice::from_ref(&qb), 2, vseed);
        let plan = bcontain(&qb, &views).expect("covering views contain qb");
        let ext = graph_views::views::bmaterialize(&views, &g);
        let joined = bmatch_join(&qb, &plan, &ext).unwrap();
        let direct = bmatch_pattern(&qb, &g);
        prop_assert_eq!(joined, direct);
    }

    /// Bounded minimal / minimum behave like their plain counterparts.
    #[test]
    fn bounded_selection_properties(qb in arb_bounded_query(), vseed in any::<u64>()) {
        let views = covering_bounded_views(std::slice::from_ref(&qb), 3, vseed);
        let mnl = bminimal(&qb, &views).expect("contained");
        let min = bminimum(&qb, &views).expect("contained");
        prop_assert!(min.views.len() <= mnl.views.len());
        for skip in &mnl.views {
            let rest: Vec<usize> = mnl.views.iter().copied().filter(|v| v != skip).collect();
            prop_assert!(bcontain(&qb, &views.subset(&rest)).is_none());
        }
    }

    /// Plain patterns are the fe(e)=1 special case: BMatch with unit bounds
    /// equals Match on pairs.
    #[test]
    fn unit_bounds_reduce_to_simulation(g in arb_graph(), q in arb_query()) {
        let qb = BoundedPattern::from_pattern(q.clone());
        let plain = match_pattern(&q, &g);
        let bounded = bmatch_pattern(&qb, &g);
        prop_assert_eq!(plain.is_empty(), bounded.is_empty());
        if !plain.is_empty() {
            prop_assert_eq!(plain.edge_matches, bounded.pairs());
        }
    }

    /// Query containment is sound: if q1 ⊑ q2 via λ, then on any graph each
    /// match set of q1 is inside the union of its covering q2 sets.
    #[test]
    fn query_containment_sound(g in arb_graph(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let q1 = random_pattern(3, 3, &LABELS, PatternShape::Any, s1);
        let q2 = random_pattern(2, 2, &LABELS, PatternShape::Any, s2);
        let views = graph_views::views::ViewSet::new(vec![
            graph_views::views::ViewDef::new("q2", q2.clone()),
        ]);
        if let Some(plan) = contain(&q1, &views) {
            let r1 = match_pattern(&q1, &g);
            let r2 = match_pattern(&q2, &g);
            if !r1.is_empty() {
                prop_assert!(!r2.is_empty(), "containment forces q2 to match too");
                for (ei, set) in r1.edge_matches.iter().enumerate() {
                    for pair in set {
                        let covered = plan.lambda[ei].iter().any(|r| {
                            r2.edge_matches[r.edge.index()].contains(pair)
                        });
                        prop_assert!(covered, "pair {:?} escaped λ", pair);
                    }
                }
            }
        }
    }

    /// §VIII extension: DualMatchJoin(V(G)) == DualMatch(G) whenever the
    /// query is dual-contained in the views.
    #[test]
    fn dual_join_equals_dual_match(g in arb_graph(), q in arb_query(), vseed in any::<u64>()) {
        use graph_views::views::{dual_contain, dual_match_join, dual_materialize};
        use graph_views::matching::dual_match_pattern;
        let views = covering_views(std::slice::from_ref(&q), 2, vseed);
        // Dual containment can be stricter than plain; only proceed when it
        // holds (fragment views of q always dual-simulate into q? not
        // necessarily — a fragment node can lack q's in-edges, which is
        // fine, but q's node must cover the fragment's constraints, which
        // holds since the fragment's edges are q's own).
        if let Some(plan) = dual_contain(&q, &views) {
            let ext = dual_materialize(&views, &g);
            let joined = dual_match_join(&q, &plan, &ext).unwrap();
            let direct = dual_match_pattern(&q, &g);
            prop_assert_eq!(joined, direct);
        }
    }

    /// Pattern minimization composes with view answering: the minimized
    /// query, answered through views, agrees with the original's answer
    /// modulo the edge map.
    #[test]
    fn minimize_then_answer_with_views(
        g in arb_graph(),
        q in arb_query(),
        vseed in any::<u64>(),
    ) {
        use graph_views::views::minimize;
        let m = minimize(&q);
        let views = covering_views(std::slice::from_ref(&m.pattern), 2, vseed);
        let plan = contain(&m.pattern, &views).expect("covering views");
        let ext = materialize(&views, &g);
        let joined = match_join(&m.pattern, &plan, &ext).unwrap();
        let direct = match_pattern(&q, &g);
        prop_assert_eq!(joined.is_empty(), direct.is_empty());
        if !direct.is_empty() {
            for (ei, set) in direct.edge_matches.iter().enumerate() {
                let qe = m.edge_map[ei];
                prop_assert_eq!(set, &joined.edge_matches[qe.index()]);
            }
        }
    }

    /// Hybrid evaluation (partial views + surgical G access) equals direct
    /// matching regardless of how much of the query the views cover.
    #[test]
    fn hybrid_equals_match(
        g in arb_graph(),
        q in arb_query(),
        vseed in any::<u64>(),
        keep in proptest::collection::vec(any::<bool>(), 24),
    ) {
        use graph_views::views::{hybrid_match_join, partial_contain};
        // Randomly drop views from a covering set so coverage is partial.
        let full = covering_views(std::slice::from_ref(&q), 2, vseed);
        let kept: Vec<usize> = (0..full.card())
            .filter(|&i| *keep.get(i).unwrap_or(&false))
            .collect();
        let views = full.subset(&kept);
        let ext = materialize(&views, &g);
        let partial = partial_contain(&q, &views);
        let (r, _) = hybrid_match_join(&q, &partial, &ext, &g).unwrap();
        prop_assert_eq!(r, match_pattern(&q, &g));
    }

    /// Dual simulation is a restriction of plain simulation; strong is a
    /// restriction of dual.
    #[test]
    fn simulation_hierarchy(g in arb_graph(), q in arb_query()) {
        use graph_views::matching::{dual_simulation_relation, simulation_relation,
                                    strong_simulation_matches};
        let plain = simulation_relation(&q, &g);
        let dual = dual_simulation_relation(&q, &g);
        match (&plain, &dual) {
            (None, Some(_)) => prop_assert!(false, "dual matched where plain failed"),
            (Some(p), Some(d)) => {
                for u in 0..q.node_count() {
                    prop_assert!(d[u].is_subset(&p[u]));
                }
                if let Some(strong) = strong_simulation_matches(&q, &g) {
                    for u in 0..q.node_count() {
                        for v in &strong[u] {
                            prop_assert!(d[u].contains(v.index()), "strong ⊆ dual");
                        }
                    }
                }
            }
            _ => {}
        }
    }
}
