//! End-to-end reproduction of the paper's worked examples (Figs. 1, 3, 4),
//! exercising the whole stack across crates.

use graph_views::prelude::*;
use graph_views::views::{ViewDef, ViewSet};

/// Fig. 1(a) — recommendation network G.
fn fig1a() -> (DataGraph, Vec<NodeId>) {
    let mut b = GraphBuilder::new();
    let bob = b.add_node(["PM"]);
    let walt = b.add_node(["PM"]);
    let mat = b.add_node(["DBA"]);
    let fred = b.add_node(["DBA"]);
    let mary = b.add_node(["DBA"]);
    let dan = b.add_node(["PRG"]);
    let pat = b.add_node(["PRG"]);
    let bill = b.add_node(["PRG"]);
    let jean = b.add_node(["BA"]);
    let emmy = b.add_node(["ST"]);
    for (s, t) in [
        (bob, mat),
        (walt, mat),
        (bob, dan),
        (walt, bill),
        (fred, pat),
        (mat, pat),
        (mary, bill),
        (dan, fred),
        (pat, mary),
        (pat, mat),
        (bill, mat),
        (bob, jean),
        (jean, emmy),
    ] {
        b.add_edge(s, t);
    }
    (
        b.build(),
        vec![bob, walt, mat, fred, mary, dan, pat, bill, jean, emmy],
    )
}

/// Fig. 1(c) — the team pattern Qs.
fn fig1c() -> Pattern {
    let mut b = PatternBuilder::new();
    let pm = b.node_labeled("PM");
    let dba1 = b.node_labeled("DBA");
    let prg1 = b.node_labeled("PRG");
    let dba2 = b.node_labeled("DBA");
    let prg2 = b.node_labeled("PRG");
    b.edge(pm, dba1);
    b.edge(pm, prg2);
    b.edge(dba1, prg1);
    b.edge(prg1, dba2);
    b.edge(dba2, prg2);
    b.edge(prg2, dba1);
    b.build().unwrap()
}

/// Fig. 1(b) — views V1, V2.
fn fig1_views() -> ViewSet {
    let mut b = PatternBuilder::new();
    let pm = b.node_labeled("PM");
    let dba = b.node_labeled("DBA");
    let prg = b.node_labeled("PRG");
    b.edge(pm, dba);
    b.edge(pm, prg);
    let v1 = b.build().unwrap();
    let mut b = PatternBuilder::new();
    let dba = b.node_labeled("DBA");
    let prg = b.node_labeled("PRG");
    b.edge(dba, prg);
    b.edge(prg, dba);
    let v2 = b.build().unwrap();
    ViewSet::new(vec![ViewDef::new("V1", v1), ViewDef::new("V2", v2)])
}

#[test]
fn example_1_2_direct_match() {
    let (g, n) = fig1a();
    let q = fig1c();
    let r = match_pattern(&q, &g);
    assert!(!r.is_empty());
    // Example 2's table (spot checks).
    let e_pm_dba1 = q.edge_id(PatternNodeId(0), PatternNodeId(1)).unwrap();
    assert_eq!(
        r.edge_matches[e_pm_dba1.index()],
        vec![(n[0], n[2]), (n[1], n[2])],
        "(PM,DBA1) = {{(Bob,Mat),(Walt,Mat)}}"
    );
    // Jean (BA) and Emmy (ST) never appear.
    for set in &r.edge_matches {
        for &(a, b) in set {
            assert!(a != n[8] && b != n[8] && a != n[9] && b != n[9]);
        }
    }
    // |Qs(G)| per the paper's table: 2 + 2 + 3 + 4 + 3 + 4.
    assert_eq!(r.size(), 18);
}

#[test]
fn example_3_4_answering_via_views() {
    let (g, _) = fig1a();
    let q = fig1c();
    let views = fig1_views();
    let plan = contain(&q, &views).expect("Example 3: Qs ⊑ V");
    let ext = materialize(&views, &g);
    // V(G) is a small fraction of G — the premise of the paper.
    assert!(ext.size() > 0);
    let joined = match_join(&q, &plan, &ext).unwrap();
    assert_eq!(joined, match_pattern(&q, &g), "Theorem 1");
}

#[test]
fn examples_5_6_7_fig4_selection() {
    // Fig. 4's query and seven views; minimal = {V2,V3,V4}, minimum = {V5,V6}.
    let mut b = PatternBuilder::new();
    let a = b.node_labeled("A");
    let bb = b.node_labeled("B");
    let c = b.node_labeled("C");
    let d = b.node_labeled("D");
    let e = b.node_labeled("E");
    b.edge(a, bb);
    b.edge(a, c);
    b.edge(bb, d);
    b.edge(c, d);
    b.edge(bb, e);
    let q = b.build().unwrap();

    let single = |x: &str, y: &str| {
        let mut b = PatternBuilder::new();
        let u = b.node_labeled(x);
        let v = b.node_labeled(y);
        b.edge(u, v);
        b.build().unwrap()
    };
    let multi = |edges: &[(&str, &str)]| {
        let mut b = PatternBuilder::new();
        let mut ids = std::collections::HashMap::new();
        for &(x, y) in edges {
            ids.entry(x.to_string())
                .or_insert_with(|| b.node_labeled(x));
            ids.entry(y.to_string())
                .or_insert_with(|| b.node_labeled(y));
        }
        for &(x, y) in edges {
            b.edge(ids[x], ids[y]);
        }
        b.build().unwrap()
    };
    let views = ViewSet::new(vec![
        ViewDef::new("V1", single("C", "D")),
        ViewDef::new("V2", single("B", "E")),
        ViewDef::new("V3", multi(&[("A", "B"), ("A", "C")])),
        ViewDef::new("V4", multi(&[("B", "D"), ("C", "D")])),
        ViewDef::new("V5", multi(&[("B", "D"), ("B", "E")])),
        ViewDef::new("V6", multi(&[("A", "B"), ("A", "C"), ("C", "D")])),
        ViewDef::new("V7", multi(&[("A", "B"), ("A", "C"), ("B", "D")])),
    ]);
    assert!(contain(&q, &views).is_some(), "Example 5");
    let mnl = minimal(&q, &views).unwrap();
    assert_eq!(mnl.views, vec![1, 2, 3], "Example 6: {{V2,V3,V4}}");
    let min = minimum(&q, &views).unwrap();
    assert_eq!(min.views, vec![4, 5], "Example 7: {{V5,V6}}");

    // Both selections answer the query identically on Fig. 1's graph shape.
    let (g, _) = fig1a();
    let ext = materialize(&views, &g);
    let a = match_join(&q, &mnl.plan, &ext).unwrap();
    let b2 = match_join(&q, &min.plan, &ext).unwrap();
    assert_eq!(a, b2);
    assert!(a.is_empty(), "no A/B/C/D/E labels in Fig. 1's graph");
}

#[test]
fn fig3_example_4_bounded_example_8() {
    use graph_views::views::bview::{bmaterialize, BoundedViewDef, BoundedViewSet};

    // Fig. 3(a) (reconstruction consistent with Examples 4 and 8).
    let mut b = GraphBuilder::new();
    let pm1 = b.add_node(["PM"]);
    let ai1 = b.add_node(["AI"]);
    let ai2 = b.add_node(["AI"]);
    let bio1 = b.add_node(["Bio"]);
    let se1 = b.add_node(["SE"]);
    let se2 = b.add_node(["SE"]);
    let db1 = b.add_node(["DB"]);
    let db2 = b.add_node(["DB"]);
    for (s, t) in [
        (pm1, ai1),
        (pm1, ai2),
        (ai2, bio1),
        (db1, ai2),
        (db2, ai1),
        (ai1, se1),
        (ai2, se2),
        (se1, db2),
        (se2, db1),
        (se1, bio1),
    ] {
        b.add_edge(s, t);
    }
    let g = b.build();

    // Example 8's bounded query: fe(AI,Bio) = 2, others 1.
    let mut pb = PatternBuilder::new();
    let pm = pb.node_labeled("PM");
    let ai = pb.node_labeled("AI");
    let bio = pb.node_labeled("Bio");
    let db = pb.node_labeled("DB");
    let se = pb.node_labeled("SE");
    pb.edge_bounded(pm, ai, 1);
    pb.edge_bounded(ai, bio, 2);
    pb.edge_bounded(db, ai, 1);
    pb.edge_bounded(ai, se, 1);
    pb.edge_bounded(se, db, 1);
    let qb = pb.build_bounded().unwrap();

    let direct = bmatch_pattern(&qb, &g);
    assert!(!direct.is_empty());
    // Example 8: (AI,Bio) includes (AI1,Bio1) at distance 2 via SE1.
    let e_ai_bio = qb
        .pattern()
        .edge_id(PatternNodeId(1), PatternNodeId(2))
        .unwrap();
    assert!(direct
        .edge_set(e_ai_bio)
        .iter()
        .any(|&(a, b2, d)| a == ai1 && b2 == bio1 && d == 2));

    // Bounded views covering it; Theorem 8 equivalence.
    let mut vb = PatternBuilder::new();
    let ai = vb.node_labeled("AI");
    let bio = vb.node_labeled("Bio");
    let pm = vb.node_labeled("PM");
    vb.edge_bounded(ai, bio, 2);
    vb.edge_bounded(pm, ai, 1);
    let v1 = vb.build_bounded().unwrap();
    let mut vb = PatternBuilder::new();
    let db = vb.node_labeled("DB");
    let ai = vb.node_labeled("AI");
    let se = vb.node_labeled("SE");
    vb.edge_bounded(db, ai, 1);
    vb.edge_bounded(ai, se, 1);
    vb.edge_bounded(se, db, 1);
    let v2 = vb.build_bounded().unwrap();
    let views = BoundedViewSet::new(vec![
        BoundedViewDef::new("BV1", v1),
        BoundedViewDef::new("BV2", v2),
    ]);
    let plan = bcontain(&qb, &views).expect("Qb ⊑ V");
    let ext = bmaterialize(&views, &g);
    let joined = bmatch_join(&qb, &plan, &ext).unwrap();
    assert_eq!(joined, direct, "Theorem 8");
}
