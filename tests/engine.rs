//! Engine-contract property tests (seeded): on random graph / view /
//! pattern triples, `QueryEngine::answer(q, g)` must equal the
//! `match_pattern(q, g)` ground truth for *every* plan shape the planner
//! can pick — views-only under all three selection modes, the parallel
//! executor, hybrid partial coverage, direct fallback, and bounded plans.

use gpv_generator::{
    covering_bounded_views, covering_views, random_bounded_pattern, random_graph, random_pattern,
    PatternShape,
};
use graph_views::prelude::*;
use graph_views::views::{ExecStrategy, QueryPlan};
use proptest::prelude::*;

const LABELS: [&str; 4] = ["A", "B", "C", "D"];

fn arb_graph() -> impl Strategy<Value = DataGraph> {
    (5usize..60, 10usize..150, any::<u64>())
        .prop_map(|(n, m, seed)| random_graph(n, m, &LABELS, seed))
}

fn arb_query() -> impl Strategy<Value = Pattern> {
    (2usize..5, 1usize..6, any::<u64>())
        .prop_map(|(nv, ne, seed)| random_pattern(nv, ne, &LABELS, PatternShape::Any, seed))
}

fn arb_bounded_query() -> impl Strategy<Value = BoundedPattern> {
    (2usize..4, 1usize..5, 1u32..4, any::<u64>()).prop_map(|(nv, ne, k, seed)| {
        random_bounded_pattern(nv, ne, &LABELS, k, PatternShape::Any, seed)
    })
}

/// Configs that pin each selection mode, plus the cost-based default.
fn mode_configs() -> Vec<EngineConfig> {
    let mut cfgs = vec![EngineConfig::default()];
    for m in [
        SelectionMode::All,
        SelectionMode::Minimal,
        SelectionMode::Minimum,
    ] {
        cfgs.push(EngineConfig {
            force_selection: Some(m),
            ..EngineConfig::default()
        });
    }
    cfgs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Covered queries: the engine must answer from views alone, matching
    /// the ground truth under every selection mode and both executors.
    #[test]
    fn engine_equals_match_when_contained(g in arb_graph(), q in arb_query(), vseed in any::<u64>()) {
        let views = covering_views(std::slice::from_ref(&q), 3, vseed);
        let direct = match_pattern(&q, &g);
        for cfg in mode_configs() {
            let engine = QueryEngine::materialize(views.clone(), &g).with_config(cfg);
            let plan = engine.plan(&q);
            prop_assert!(!plan.needs_graph(), "covering views contain q: {plan}");
            prop_assert_eq!(&engine.answer_from_views(&q).unwrap(), &direct);
            prop_assert_eq!(&engine.answer(&q, &g).unwrap(), &direct);
        }
        // Forced parallel execution (2 and 4 workers) agrees bit-for-bit.
        for threads in [2usize, 4] {
            let engine = QueryEngine::materialize(views.clone(), &g).with_config(EngineConfig {
                force_exec: Some(ExecStrategy::Parallel { threads }),
                ..EngineConfig::default()
            });
            prop_assert_eq!(&engine.answer_from_views(&q).unwrap(), &direct);
        }
    }

    /// Partially-covered queries: the planner picks hybrid (or direct) and
    /// `answer` still equals the ground truth; strict views-only answering
    /// refuses.
    #[test]
    fn engine_equals_match_under_partial_coverage(
        g in arb_graph(),
        q in arb_query(),
        vseed in any::<u64>(),
        keep_probe in any::<u64>(),
    ) {
        // Drop some of the covering views so coverage is partial (or, for
        // single-edge queries, possibly empty).
        let full = covering_views(std::slice::from_ref(&q), 2, vseed);
        let keep: Vec<usize> = (0..full.card())
            .filter(|i| (keep_probe >> (i % 64)) & 1 == 1)
            .collect();
        let views = full.subset(&keep);
        let engine = QueryEngine::materialize(views, &g);
        let direct = match_pattern(&q, &g);
        let plan = engine.plan(&q);
        prop_assert_eq!(&engine.answer(&q, &g).unwrap(), &direct, "plan was: {}", plan);
        if plan.needs_graph() {
            prop_assert!(engine.answer_from_views(&q).is_err());
        }
    }

    /// No views at all: the engine falls back to direct evaluation.
    #[test]
    fn engine_direct_fallback(g in arb_graph(), q in arb_query()) {
        let engine = QueryEngine::materialize(graph_views::views::ViewSet::default(), &g);
        prop_assert!(matches!(engine.plan(&q), QueryPlan::Direct { .. }));
        prop_assert_eq!(engine.answer(&q, &g).unwrap(), match_pattern(&q, &g));
    }

    /// Bounded queries: engine plans over the bounded registry equal
    /// `bmatch_pattern` (Theorem 8), under every selection mode.
    #[test]
    fn engine_bounded_equals_bmatch(g in arb_graph(), qb in arb_bounded_query(), vseed in any::<u64>()) {
        let views = covering_bounded_views(std::slice::from_ref(&qb), 2, vseed);
        let direct = bmatch_pattern(&qb, &g);
        for cfg in mode_configs() {
            let engine = QueryEngine::materialize(graph_views::views::ViewSet::default(), &g)
                .with_bounded_views(views.clone(), &g)
                .with_config(cfg);
            prop_assert_eq!(&engine.answer_bounded(&qb).unwrap(), &direct);
        }
    }

    /// The plan IR is stable through serialization (plans are cacheable).
    #[test]
    fn plans_roundtrip_through_json(g in arb_graph(), q in arb_query(), vseed in any::<u64>()) {
        let views = covering_views(std::slice::from_ref(&q), 3, vseed);
        let engine = QueryEngine::materialize(views, &g);
        let plan = engine.plan(&q);
        let json = serde_json::to_string(&plan).unwrap();
        let back: QueryPlan = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, plan);
    }
}
