//! Engine-contract property tests (seeded): on random graph / view /
//! pattern triples, `QueryEngine::answer(q, g)` must equal the
//! `match_pattern(q, g)` ground truth for *every* plan shape the planner
//! can pick — views-only under all three selection modes, the parallel
//! executor, hybrid partial coverage, direct fallback, and bounded plans.

use gpv_generator::{
    covering_bounded_views, covering_views, random_bounded_pattern, random_graph, random_pattern,
    PatternShape,
};
use graph_views::prelude::*;
use graph_views::views::{EdgeSource, ExecStrategy, ParGranularity, QueryPlan};
use proptest::prelude::*;

const LABELS: [&str; 4] = ["A", "B", "C", "D"];

/// Thread counts the chunked-equivalence sweep exercises. CI forces the
/// chunked code paths on 1-core runners by extending the matrix through
/// `GPV_TEST_THREADS` (the counts are explicit worker counts, not
/// `available_parallelism`, so they fan out real threads anywhere).
fn sweep_threads() -> Vec<usize> {
    let mut ts = vec![1usize, 2, 4, 8];
    if let Ok(v) = std::env::var("GPV_TEST_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if !ts.contains(&n) {
                ts.push(n);
            }
        }
    }
    ts
}

fn arb_graph() -> impl Strategy<Value = DataGraph> {
    (5usize..60, 10usize..150, any::<u64>())
        .prop_map(|(n, m, seed)| random_graph(n, m, &LABELS, seed))
}

fn arb_query() -> impl Strategy<Value = Pattern> {
    (2usize..5, 1usize..6, any::<u64>())
        .prop_map(|(nv, ne, seed)| random_pattern(nv, ne, &LABELS, PatternShape::Any, seed))
}

fn arb_bounded_query() -> impl Strategy<Value = BoundedPattern> {
    (2usize..4, 1usize..5, 1u32..4, any::<u64>()).prop_map(|(nv, ne, k, seed)| {
        random_bounded_pattern(nv, ne, &LABELS, k, PatternShape::Any, seed)
    })
}

/// Cost-weight variants spanning the sourcing decisions the planner can
/// make: the unit-free default (views always win), scan-cheap calibrations
/// (bloated extensions demoted to graph scans), and read-expensive ones.
fn cost_variants() -> Vec<CostModel> {
    vec![
        CostModel::default(),
        CostModel {
            scan_edge: 0.001,
            refine_pair: 0.01,
            calibrated: true,
            ..CostModel::default()
        },
        CostModel {
            read_pair: 50.0,
            scan_edge: 0.5,
            refine_pair: 0.2,
            calibrated: true,
            ..CostModel::default()
        },
        CostModel {
            read_pair: 0.02,
            scan_edge: 1_000.0,
            calibrated: true,
            ..CostModel::default()
        },
    ]
}

/// Configs that pin each selection mode, plus the cost-based default.
fn mode_configs() -> Vec<EngineConfig> {
    let mut cfgs = vec![EngineConfig::default()];
    for m in [
        SelectionMode::All,
        SelectionMode::Minimal,
        SelectionMode::Minimum,
    ] {
        cfgs.push(EngineConfig {
            force_selection: Some(m),
            ..EngineConfig::default()
        });
    }
    cfgs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Covered queries: the engine must answer from views alone, matching
    /// the ground truth under every selection mode and both executors.
    #[test]
    fn engine_equals_match_when_contained(g in arb_graph(), q in arb_query(), vseed in any::<u64>()) {
        let views = covering_views(std::slice::from_ref(&q), 3, vseed);
        let direct = match_pattern(&q, &g);
        for cfg in mode_configs() {
            let engine = QueryEngine::materialize(views.clone(), &g).with_config(cfg);
            let plan = engine.plan(&q);
            prop_assert!(!plan.needs_graph(), "covering views contain q: {plan}");
            prop_assert_eq!(&engine.answer_from_views(&q).unwrap(), &direct);
            prop_assert_eq!(&engine.answer(&q, &g).unwrap(), &direct);
        }
        // Forced parallel execution (2 and 4 workers) agrees bit-for-bit.
        for threads in [2usize, 4] {
            let engine = QueryEngine::materialize(views.clone(), &g).with_config(EngineConfig {
                force_exec: Some(ExecStrategy::Parallel {
                    threads,
                    granularity: ParGranularity::PerEdge,
                }),
                ..EngineConfig::default()
            });
            prop_assert_eq!(&engine.answer_from_views(&q).unwrap(), &direct);
        }
    }

    /// The intra-edge parallelism acceptance property: the chunked-parallel
    /// executor is **bit-for-bit identical** to the sequential
    /// `RankedBottomUp` strategy across threads ∈ {1, 2, 4, 8} × chunk
    /// sizes — including chunk size 1 (every pair its own unit) and chunk
    /// sizes larger than any merged set (one unit per edge). Chunk
    /// boundaries are fixed by index, so neither thread count nor chunk
    /// size may leak into the answer.
    #[test]
    fn chunked_parallel_is_bit_identical_to_ranked_bottom_up(
        g in arb_graph(),
        q in arb_query(),
        vseed in any::<u64>(),
    ) {
        let views = covering_views(std::slice::from_ref(&q), 3, vseed);
        let sequential = QueryEngine::materialize(views.clone(), &g).with_config(EngineConfig {
            force_exec: Some(ExecStrategy::Sequential(JoinStrategy::RankedBottomUp)),
            ..EngineConfig::default()
        });
        let baseline = sequential.answer_from_views(&q).unwrap();
        prop_assert_eq!(&baseline, &match_pattern(&q, &g));
        // Chunk sizes: degenerate (1), small odd (3), and far beyond any
        // merged set in these graphs (1 << 20).
        for threads in sweep_threads() {
            for chunk_pairs in [1usize, 3, 1 << 20] {
                let engine = QueryEngine::materialize(views.clone(), &g).with_config(EngineConfig {
                    force_exec: Some(ExecStrategy::Parallel {
                        threads,
                        granularity: ParGranularity::Chunked { chunk_pairs },
                    }),
                    ..EngineConfig::default()
                });
                prop_assert_eq!(
                    &engine.answer_from_views(&q).unwrap(),
                    &baseline,
                    "threads={} chunk_pairs={}", threads, chunk_pairs
                );
            }
        }
    }

    /// The union-merge ablation path under the parallel strategy:
    /// `match_join_union_with(Parallel)` chunk-sorts the per-edge unions
    /// (`par_sort_dedup`) and runs the per-edge parallel fixpoint
    /// (`JoinStrategy::Parallel` carries no granularity; the chunked
    /// fixpoint itself is covered by the engine sweep above), and must
    /// equal the sequential `RankedBottomUp` union join.
    #[test]
    fn parallel_union_join_matches_sequential(
        g in arb_graph(),
        q in arb_query(),
        vseed in any::<u64>(),
    ) {
        use graph_views::views::matchjoin::match_join_union_with;
        use graph_views::views::{contain, materialize};
        let views = covering_views(std::slice::from_ref(&q), 3, vseed);
        let Some(plan) = contain(&q, &views) else {
            return Ok(()); // covering_views should contain q; skip if not
        };
        let ext = materialize(&views, &g);
        let (seq, _) =
            match_join_union_with(&q, &plan, &ext, JoinStrategy::RankedBottomUp).unwrap();
        let (par, _) = match_join_union_with(&q, &plan, &ext, JoinStrategy::Parallel).unwrap();
        prop_assert_eq!(par, seq);
    }

    /// Partially-covered queries: the planner picks hybrid (or direct) and
    /// `answer` still equals the ground truth; strict views-only answering
    /// refuses.
    #[test]
    fn engine_equals_match_under_partial_coverage(
        g in arb_graph(),
        q in arb_query(),
        vseed in any::<u64>(),
        keep_probe in any::<u64>(),
    ) {
        // Drop some of the covering views so coverage is partial (or, for
        // single-edge queries, possibly empty).
        let full = covering_views(std::slice::from_ref(&q), 2, vseed);
        let keep: Vec<usize> = (0..full.card())
            .filter(|i| (keep_probe >> (i % 64)) & 1 == 1)
            .collect();
        let views = full.subset(&keep);
        let engine = QueryEngine::materialize(views, &g);
        let direct = match_pattern(&q, &g);
        let plan = engine.plan(&q);
        prop_assert_eq!(&engine.answer(&q, &g).unwrap(), &direct, "plan was: {}", plan);
        if plan.needs_graph() {
            prop_assert!(engine.answer_from_views(&q).is_err());
        }
    }

    /// No views at all: the engine falls back to direct evaluation.
    #[test]
    fn engine_direct_fallback(g in arb_graph(), q in arb_query()) {
        let engine = QueryEngine::materialize(graph_views::views::ViewSet::default(), &g);
        prop_assert!(matches!(engine.plan(&q), QueryPlan::Direct { .. }));
        prop_assert_eq!(engine.answer(&q, &g).unwrap(), match_pattern(&q, &g));
    }

    /// Bounded queries: engine plans over the bounded registry equal
    /// `bmatch_pattern` (Theorem 8), under every selection mode.
    #[test]
    fn engine_bounded_equals_bmatch(g in arb_graph(), qb in arb_bounded_query(), vseed in any::<u64>()) {
        let views = covering_bounded_views(std::slice::from_ref(&qb), 2, vseed);
        let direct = bmatch_pattern(&qb, &g);
        for cfg in mode_configs() {
            let engine = QueryEngine::materialize(graph_views::views::ViewSet::default(), &g)
                .with_bounded_views(views.clone(), &g)
                .with_config(cfg);
            prop_assert_eq!(&engine.answer_bounded(&qb).unwrap(), &direct);
        }
    }

    /// Hybrid per-edge sourcing never changes answers: whatever
    /// `EdgeSource` assignment the planner emits — under the default
    /// weights or any calibrated variant, over full, partial, or no
    /// coverage — `answer` equals `match_pattern`, and the emitted source
    /// vector always has one entry per query edge.
    #[test]
    fn hybrid_sourcing_never_changes_answers(
        g in arb_graph(),
        q in arb_query(),
        vseed in any::<u64>(),
        keep_probe in any::<u64>(),
    ) {
        let full = covering_views(std::slice::from_ref(&q), 2, vseed);
        let keep: Vec<usize> = (0..full.card())
            .filter(|i| (keep_probe >> (i % 64)) & 1 == 1)
            .collect();
        let views = full.subset(&keep);
        let direct = match_pattern(&q, &g);
        for cost in cost_variants() {
            let engine = QueryEngine::materialize(views.clone(), &g).with_config(EngineConfig {
                cost,
                ..EngineConfig::default()
            });
            let plan = engine.plan(&q);
            if let Some(sources) = plan.sources() {
                prop_assert_eq!(sources.len(), q.edge_count(), "plan: {}", plan);
            }
            prop_assert_eq!(&engine.answer(&q, &g).unwrap(), &direct, "plan: {}", plan);
        }
    }

    /// Calibration recovers known weights from synthetic logs: samples
    /// manufactured with random ground-truth weights are fitted back to
    /// those weights within tolerance, and the fitted model predicts the
    /// log better than the default one.
    #[test]
    fn calibrate_recovers_random_weights(
        wr in 1u32..2_000, wf in 1u32..2_000, ws in 1u32..2_000,
        jitter in any::<u64>(),
    ) {
        use graph_views::views::{CostEstimate, CostLog, CostSample, JoinStats};
        let truth = (wr as f64 / 100.0, wf as f64 / 100.0, ws as f64 / 100.0);
        let mut log = CostLog::new(128);
        for i in 1..16u64 {
            let j = (jitter >> (i % 32)) & 0x7;
            for (pairs, merged, scanned, ne) in [
                (100 * i + 13 * j, 80 * i + j, 0, 3),
                (37 * i, 22 * i + 9 * j, 11 * i, 4),
                (0, 0, 41 * i + j, 2),
            ] {
                let s = CostSample {
                    estimate: CostEstimate {
                        pairs_read: pairs,
                        graph_edges_scanned: scanned,
                        ..CostEstimate::default()
                    },
                    stats: JoinStats {
                        merged_pairs: merged,
                        ..JoinStats::default()
                    },
                    edge_count: ne,
                    wall_micros: 0.0,
                };
                let [f0, f1, f2] = s.features();
                log.push(CostSample {
                    wall_micros: truth.0 * f0 + truth.1 * f1 + truth.2 * f2,
                    ..s
                });
            }
        }
        let fitted = CostModel::default().calibrate(&log).expect("well-conditioned log");
        prop_assert!(fitted.calibrated);
        prop_assert!((fitted.read_pair - truth.0).abs() / truth.0 < 1e-2, "{} vs {}", fitted.read_pair, truth.0);
        prop_assert!((fitted.refine_pair - truth.1).abs() / truth.1 < 1e-2, "{} vs {}", fitted.refine_pair, truth.1);
        prop_assert!((fitted.scan_edge - truth.2).abs() / truth.2 < 1e-2, "{} vs {}", fitted.scan_edge, truth.2);
        let fit_err = fitted.mean_relative_error(&log).unwrap();
        prop_assert!(fit_err < 1e-3, "fitted error {fit_err}");
    }

    /// The plan IR is stable through serialization (plans are cacheable).
    #[test]
    fn plans_roundtrip_through_json(g in arb_graph(), q in arb_query(), vseed in any::<u64>()) {
        let views = covering_views(std::slice::from_ref(&q), 3, vseed);
        let engine = QueryEngine::materialize(views, &g);
        let plan = engine.plan(&q);
        let json = serde_json::to_string(&plan).unwrap();
        let back: QueryPlan = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, plan);
    }
}

/// A calibrated model that prices scans cheap must actually demote a
/// bloated covered extension to a graph scan (mixed sources, CostBased
/// hybrid) — and the answer is still exactly `match_pattern`. This pins
/// that the sourcing proptest genuinely exercises both `EdgeSource` arms.
#[test]
fn cheap_scan_calibration_emits_mixed_sources() {
    use graph_views::views::FallbackReason;
    let mut b = GraphBuilder::new();
    // 20 A->B edges (bloated vab extension), one B->C edge (tight vbc).
    let c = {
        let mut last_b = None;
        for _ in 0..20 {
            let a = b.add_node(["A"]);
            let bb = b.add_node(["B"]);
            b.add_edge(a, bb);
            last_b = Some(bb);
        }
        let c = b.add_node(["C"]);
        b.add_edge(last_b.unwrap(), c);
        c
    };
    let _ = c;
    let g = b.build();

    let single = |x: &str, y: &str| {
        let mut p = PatternBuilder::new();
        let u = p.node_labeled(x);
        let v = p.node_labeled(y);
        p.edge(u, v);
        p.build().unwrap()
    };
    let mut p = PatternBuilder::new();
    let ua = p.node_labeled("A");
    let ub = p.node_labeled("B");
    let uc = p.node_labeled("C");
    p.edge(ua, ub);
    p.edge(ub, uc);
    let q = p.build().unwrap();

    let views = graph_views::views::ViewSet::new(vec![
        ViewDef::new("vab", single("A", "B")),
        ViewDef::new("vbc", single("B", "C")),
    ]);
    let cheap_scan = CostModel {
        read_pair: 1.0,
        scan_edge: 0.1,
        refine_pair: 0.01,
        calibrated: true,
        ..CostModel::default()
    };
    let engine = QueryEngine::materialize(views.clone(), &g).with_config(EngineConfig {
        cost: cheap_scan,
        ..EngineConfig::default()
    });
    let plan = engine.plan(&q);
    let QueryPlan::Hybrid {
        sources, reason, ..
    } = &plan
    else {
        panic!("expected a cost-based hybrid, got: {plan}");
    };
    assert_eq!(*reason, FallbackReason::CostBased);
    assert!(
        matches!(sources[0], EdgeSource::Graph),
        "bloated extension demoted to a scan: {plan}"
    );
    assert!(
        matches!(sources[1], EdgeSource::View(_)),
        "tight extension stays on the view: {plan}"
    );
    assert_eq!(engine.answer(&q, &g).unwrap(), match_pattern(&q, &g));

    // Strict Theorem-1 mode: the demotion is a performance preference, not
    // an availability requirement — with no graph supplied the fully-covered
    // hybrid falls back to its view sources and still answers.
    assert!(plan.graph_optional());
    assert_eq!(engine.answer_from_views(&q).unwrap(), match_pattern(&q, &g));

    // Under the default weights the same registry stays views-only.
    let default_engine = QueryEngine::materialize(views, &g);
    assert!(!default_engine.plan(&q).needs_graph());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Scenario-driven differential sweep: a `Scenario` sampled from a
    /// random (master seed, index) pair bundles every knob — graph source,
    /// query mode, executor, weights, cache state — and the differential
    /// checker asserts the engine and service agree bit-exactly with
    /// `match_pattern` on all of it. Failures print the scenario's
    /// one-line JSON and the exact `gpv fuzz --repro` command.
    #[test]
    fn scenario_differential_matches_oracle(master in any::<u64>(), idx in 0u64..60) {
        let sc = gpv_generator::Scenario::sample(master, idx);
        if let Err(d) = gpv_generator::check_scenario(&sc) {
            return Err(TestCaseError::fail(format!(
                "{d}\nscenario: {}\nrepro: {}",
                sc.to_json_line(),
                sc.repro_command()
            )));
        }
    }
}
