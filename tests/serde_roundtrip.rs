//! Serde round-trips for the persistent types: graphs, patterns, view sets,
//! match results. Interners skip their redundant lookup maps on the wire, so
//! the graph test also exercises `rebuild_indices`.

use gpv_generator::{random_graph, random_pattern, PatternShape};
use graph_views::prelude::*;
use graph_views::views::{ViewDef, ViewSet};

#[test]
fn graph_json_roundtrip() {
    let mut b = GraphBuilder::new();
    let v = b.add_node(["video"]);
    b.set_attr(v, "C", Value::str("Music"));
    b.set_attr(v, "V", Value::int(10_000));
    let w = b.add_node(["video", "Sports"]);
    b.add_edge(v, w);
    let g = b.build();

    let json = serde_json::to_string(&g).unwrap();
    let mut g2: DataGraph = serde_json::from_str(&json).unwrap();
    g2.rebuild_indices();

    assert_eq!(g2.node_count(), g.node_count());
    assert_eq!(g2.edge_count(), g.edge_count());
    assert_eq!(g2.lookup_label("video"), g.lookup_label("video"));
    let c = g2.lookup_attr("C").unwrap();
    assert_eq!(
        g2.attr(v, c).map(|x| x.to_owned_value()),
        Some(Value::str("Music"))
    );
    // Matching works against the deserialized graph.
    let mut pb = PatternBuilder::new();
    let x = pb.node(Predicate::cmp("C", gpv_pattern::CmpOp::Eq, "Music"));
    let y = pb.node_labeled("Sports");
    pb.edge(x, y);
    let q = pb.build().unwrap();
    assert_eq!(match_pattern(&q, &g), match_pattern(&q, &g2));
}

#[test]
fn pattern_json_roundtrip() {
    let q = random_pattern(5, 8, &["A", "B", "C"], PatternShape::Cyclic, 9);
    let json = serde_json::to_string(&q).unwrap();
    let q2: Pattern = serde_json::from_str(&json).unwrap();
    assert_eq!(q, q2);
}

#[test]
fn bounded_pattern_json_roundtrip() {
    let mut b = PatternBuilder::new();
    let x = b.node_labeled("A");
    let y = b.node_labeled("B");
    b.edge_bounded(x, y, 3);
    b.edge_unbounded(y, x);
    let q = b.build_bounded().unwrap();
    let json = serde_json::to_string(&q).unwrap();
    let q2: BoundedPattern = serde_json::from_str(&json).unwrap();
    assert_eq!(q, q2);
}

#[test]
fn view_set_and_result_roundtrip() {
    let g = random_graph(40, 100, &["A", "B", "C"], 3);
    let q = random_pattern(3, 3, &["A", "B", "C"], PatternShape::Any, 4);
    let views = ViewSet::new(vec![ViewDef::new("v", q.clone())]);
    let ext = materialize(&views, &g);

    let json = serde_json::to_string(&views).unwrap();
    let views2: ViewSet = serde_json::from_str(&json).unwrap();
    assert_eq!(views2.card(), 1);

    let json = serde_json::to_string(&ext).unwrap();
    let ext2: graph_views::views::ViewExtensions = serde_json::from_str(&json).unwrap();
    assert_eq!(ext, ext2);

    // The deserialized cache answers queries.
    if let Some(plan) = contain(&q, &views2) {
        let r = match_join(&q, &plan, &ext2).unwrap();
        assert_eq!(r, match_pattern(&q, &g));
    }
}

#[test]
fn match_result_equality_ignores_node_sets_json() {
    let g = random_graph(30, 80, &["A", "B"], 5);
    let q = random_pattern(2, 2, &["A", "B"], PatternShape::Any, 6);
    let r = match_pattern(&q, &g);
    let json = serde_json::to_string(&r).unwrap();
    let r2: MatchResult = serde_json::from_str(&json).unwrap();
    assert_eq!(r, r2);
}
