//! Persistence contract tests for the columnar shard format: a store
//! saved to disk and reloaded must serve **bit-identical** answers to the
//! boxed `match_pattern` ground truth across every query mode × executor
//! × granularity the planner can pick, and corrupt shard files must load
//! as clean errors — never panics — in both debug and release builds.

use gpv_generator::{covering_views, random_graph, random_pattern, PatternShape};
use graph_views::prelude::*;
use graph_views::views::store::ViewStore;
use graph_views::views::{CompactView, ExecStrategy, ParGranularity, ViewService};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const LABELS: [&str; 4] = ["A", "B", "C", "D"];

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A unique scratch directory per test case (proptest runs many cases in
/// one process, so a per-process name is not enough).
fn scratch_dir() -> std::path::PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("gpv-persist-{}-{n}", std::process::id()))
}

fn arb_graph() -> impl Strategy<Value = DataGraph> {
    (5usize..50, 10usize..120, any::<u64>())
        .prop_map(|(n, m, seed)| random_graph(n, m, &LABELS, seed))
}

fn arb_query() -> impl Strategy<Value = Pattern> {
    (2usize..5, 1usize..5, any::<u64>())
        .prop_map(|(nv, ne, seed)| random_pattern(nv, ne, &LABELS, PatternShape::Any, seed))
}

/// Five query modes (cost-based auto + the three pinned selections + the
/// pinned sequential executor) plus the parallel executor at both
/// granularities: every plan shape a reloaded store can serve under.
fn all_configs() -> Vec<EngineConfig> {
    let mut cfgs = vec![EngineConfig::default()];
    for m in [
        SelectionMode::All,
        SelectionMode::Minimal,
        SelectionMode::Minimum,
    ] {
        cfgs.push(EngineConfig {
            force_selection: Some(m),
            ..EngineConfig::default()
        });
    }
    cfgs.push(EngineConfig {
        force_exec: Some(ExecStrategy::Sequential(JoinStrategy::RankedBottomUp)),
        ..EngineConfig::default()
    });
    for threads in [2usize, 4] {
        for granularity in [
            ParGranularity::PerEdge,
            ParGranularity::Chunked { chunk_pairs: 3 },
        ] {
            cfgs.push(EngineConfig {
                force_exec: Some(ExecStrategy::Parallel {
                    threads,
                    granularity,
                }),
                ..EngineConfig::default()
            });
        }
    }
    cfgs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Save → load → serve equals the boxed ground truth, for every plan
    /// shape; and freezing the ground truth itself thaws back unchanged
    /// (compact ≡ boxed at the representation level).
    #[test]
    fn reloaded_store_serves_boxed_ground_truth(
        g in arb_graph(),
        q in arb_query(),
        vseed in any::<u64>(),
    ) {
        let views = covering_views(std::slice::from_ref(&q), 3, vseed);
        let direct = match_pattern(&q, &g);

        // Representation equivalence: frozen columns thaw bit-identical.
        prop_assert_eq!(&CompactView::freeze(&direct).thaw(), &direct);

        let dir = scratch_dir();
        let store = ViewStore::materialize(views, &g, 4);
        store.save_to_dir(&dir).unwrap();
        let loaded = Arc::new(ViewStore::load_from_dir(&dir).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(loaded.snapshot().fingerprint, store.snapshot().fingerprint);

        // Through the batch service over the reloaded store...
        let service = ViewService::new(loaded.clone());
        let served = service.serve_batch(std::slice::from_ref(&q), Some(&g));
        prop_assert_eq!(&*served[0].as_ref().unwrap().result, &direct);

        // ...and through engines pinned to every mode × executor ×
        // granularity, views-only (no graph access at all).
        let snap = loaded.snapshot();
        for cfg in all_configs() {
            let engine = QueryEngine::from_snapshot(&snap).with_config(cfg);
            prop_assert_eq!(&engine.answer_from_views(&q).unwrap(), &direct);
        }
    }
}

/// Every kind of shard-file damage — truncation at any point, a flipped
/// byte anywhere, and an emptied file — must surface as `Err`, never a
/// panic. Runs under `--release` in CI so debug-only checks cannot mask
/// unchecked arithmetic.
#[test]
fn corrupt_shard_files_fail_cleanly() {
    let g = random_graph(30, 80, &LABELS, 11);
    let q = random_pattern(3, 3, &LABELS, PatternShape::Any, 12);
    let views = covering_views(std::slice::from_ref(&q), 3, 13);
    let dir = scratch_dir();
    ViewStore::materialize(views, &g, 2)
        .save_to_dir(&dir)
        .unwrap();

    let shard = dir.join("shard-0000.bin");
    let pristine = std::fs::read(&shard).unwrap();
    assert!(ViewStore::load_from_dir(&dir).is_ok(), "pristine loads");

    // Truncations (every 7th prefix keeps it fast in debug builds).
    for cut in (0..pristine.len()).step_by(7) {
        std::fs::write(&shard, &pristine[..cut]).unwrap();
        assert!(
            ViewStore::load_from_dir(&dir).is_err(),
            "truncation at {cut} must be an error"
        );
    }

    // Single-byte flips (every 5th offset).
    for pos in (0..pristine.len()).step_by(5) {
        let mut bytes = pristine.clone();
        bytes[pos] ^= 0x40;
        std::fs::write(&shard, &bytes).unwrap();
        assert!(
            ViewStore::load_from_dir(&dir).is_err(),
            "bit flip at {pos} must be an error"
        );
    }

    // Restore: pristine still loads after the abuse.
    std::fs::write(&shard, &pristine).unwrap();
    assert!(ViewStore::load_from_dir(&dir).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Scenario-driven persistence sweep: materialize a sampled scenario's
    /// view set, round-trip it through the on-disk shard format, and serve
    /// the scenario's first batch from the reloaded store — every answer
    /// must stay bit-exact against `match_pattern`. Failures print the
    /// scenario's one-line JSON and the `gpv fuzz --repro` command.
    #[test]
    fn scenario_store_roundtrip_serves_oracle(master in any::<u64>(), idx in 0u64..60) {
        let sc = gpv_generator::Scenario::sample(master, idx);
        let inputs = sc.materialize();
        let store = ViewStore::materialize(inputs.views.clone(), &inputs.graph, sc.shards);
        let dir = scratch_dir();
        store.save_to_dir(&dir).unwrap();
        let loaded = Arc::new(ViewStore::load_from_dir(&dir).unwrap());
        let svc = ViewService::with_config(loaded, sc.service_config());
        let batch: Vec<Pattern> = inputs.rounds[0]
            .iter()
            .map(|&i| inputs.queries[i].clone())
            .collect();
        for (slot, served) in svc.serve_batch(&batch, Some(&inputs.graph)).into_iter().enumerate() {
            let got = served.expect("reloaded store serves the scenario batch");
            let want = match_pattern(&batch[slot], &inputs.graph);
            prop_assert_eq!(
                &*got.result,
                &want,
                "slot {} diverged after the shard round-trip\nscenario: {}\nrepro: {}",
                slot,
                sc.to_json_line(),
                sc.repro_command()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
