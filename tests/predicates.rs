//! Property tests for the predicate algebra: implication must be *sound*
//! with respect to satisfaction — if `p ⇒ q` syntactically, then every data
//! node satisfying `p` satisfies `q`.

use graph_views::graph::{GraphBuilder, Value};
use graph_views::pattern::{Atom, CmpOp, Predicate};
use proptest::prelude::*;

const ATTRS: [&str; 2] = ["x", "y"];
const STRS: [&str; 3] = ["red", "green", "blue"];
const LABELS: [&str; 2] = ["A", "B"];

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    prop_oneof![
        (0usize..LABELS.len()).prop_map(|i| Atom::Label(LABELS[i].to_string())),
        (0usize..ATTRS.len(), arb_op(), -5i64..5).prop_map(|(a, op, v)| Atom::Cmp {
            attr: ATTRS[a].to_string(),
            op,
            value: Value::Int(v),
        }),
        (
            0usize..ATTRS.len(),
            prop_oneof![Just(CmpOp::Eq), Just(CmpOp::Ne)],
            0usize..STRS.len()
        )
            .prop_map(|(a, op, s)| Atom::Cmp {
                attr: ATTRS[a].to_string(),
                op,
                value: Value::Str(STRS[s].to_string()),
            }),
    ]
}

fn arb_pred() -> impl Strategy<Value = Predicate> {
    proptest::collection::vec(arb_atom(), 0..3).prop_map(|atoms| {
        let mut p = Predicate::any();
        for a in atoms {
            p.push(a);
        }
        p
    })
}

/// A random node: labels plus int/str attribute assignments.
#[derive(Debug, Clone)]
struct NodeSpec {
    labels: Vec<&'static str>,
    ints: Vec<(usize, i64)>,
    strs: Vec<(usize, usize)>,
}

fn arb_node() -> impl Strategy<Value = NodeSpec> {
    (
        proptest::collection::vec(0usize..LABELS.len(), 0..2),
        proptest::collection::vec((0usize..ATTRS.len(), -5i64..5), 0..2),
        proptest::collection::vec((0usize..ATTRS.len(), 0usize..STRS.len()), 0..2),
    )
        .prop_map(|(ls, ints, strs)| NodeSpec {
            labels: ls.into_iter().map(|i| LABELS[i]).collect(),
            ints,
            strs,
        })
}

fn build_graph_with(
    node: &NodeSpec,
) -> (graph_views::graph::DataGraph, graph_views::graph::NodeId) {
    let mut b = GraphBuilder::new();
    let v = b.add_node(node.labels.iter().copied());
    // Int attrs first, then strings (strings overwrite ints on collision,
    // which is fine — the node is still a consistent assignment).
    for &(a, x) in &node.ints {
        b.set_attr(v, ATTRS[a], Value::Int(x));
    }
    for &(a, s) in &node.strs {
        b.set_attr(v, ATTRS[a], Value::str(STRS[s]));
    }
    // A second node interning all string constants so `Ne` against an
    // interned-but-unequal literal is exercised.
    let w = b.add_node(["A"]);
    for (i, s) in STRS.iter().enumerate() {
        b.set_attr(w, "z", Value::str(*s));
        let _ = i;
    }
    (b.build(), v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Soundness: p ⇒ q implies sat(p) ⊆ sat(q) on arbitrary nodes.
    #[test]
    fn implication_sound(p in arb_pred(), q in arb_pred(), node in arb_node()) {
        if p.implies(&q) {
            let (g, v) = build_graph_with(&node);
            if p.satisfied_by(&g, v) {
                prop_assert!(
                    q.satisfied_by(&g, v),
                    "p={p} implies q={q} but node {node:?} satisfies only p"
                );
            }
        }
    }

    /// Reflexivity and conjunction-weakening.
    #[test]
    fn implication_laws(p in arb_pred(), q in arb_pred()) {
        prop_assert!(p.implies(&p));
        let both = p.clone().and(q.clone());
        prop_assert!(both.implies(&p));
        prop_assert!(both.implies(&q));
        prop_assert!(p.implies(&Predicate::any()));
    }

    /// Equivalence is symmetric and implies mutual satisfaction agreement.
    #[test]
    fn equivalence_laws(p in arb_pred(), q in arb_pred(), node in arb_node()) {
        if p.equivalent(&q) {
            prop_assert!(q.equivalent(&p));
            let (g, v) = build_graph_with(&node);
            prop_assert_eq!(p.satisfied_by(&g, v), q.satisfied_by(&g, v));
        }
    }

    /// Transitivity of implication.
    #[test]
    fn implication_transitive(a in arb_pred(), b in arb_pred(), c in arb_pred()) {
        if a.implies(&b) && b.implies(&c) {
            prop_assert!(a.implies(&c));
        }
    }
}
