#![allow(clippy::needless_range_loop, clippy::int_plus_one)] // oracle code favours index clarity

//! Property tests for the graph substrate against brute-force oracles:
//! bounded BFS vs Floyd–Warshall, Tarjan SCC vs mutual reachability, and
//! BitSet vs HashSet.

use graph_views::graph::scc::{tarjan_scc, Condensation};
use graph_views::graph::traverse::{bounded_bfs, BfsScratch, Direction};
use graph_views::graph::{BitSet, DataGraph, GraphBuilder, NodeId};
use proptest::prelude::*;

fn arb_edges(n: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..n as u32, 0..n as u32), 0..(n * 3))
}

fn build(n: usize, edges: &[(u32, u32)]) -> DataGraph {
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        b.add_node(["N"]);
    }
    for &(u, v) in edges {
        b.add_edge(NodeId(u), NodeId(v));
    }
    b.build()
}

/// Brute-force nonempty-path shortest distances (Floyd–Warshall flavour).
fn oracle_distances(g: &DataGraph) -> Vec<Vec<Option<u32>>> {
    let n = g.node_count();
    let mut d: Vec<Vec<Option<u32>>> = vec![vec![None; n]; n];
    for (u, v) in g.edges() {
        d[u.index()][v.index()] = Some(1);
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if let (Some(a), Some(b)) = (d[i][k], d[k][j]) {
                    let via = a + b;
                    if d[i][j].is_none_or(|cur| via < cur) {
                        d[i][j] = Some(via);
                    }
                }
            }
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn bfs_matches_floyd_warshall(n in 2usize..15, edges in arb_edges(14)) {
        let edges: Vec<_> = edges.into_iter().filter(|&(u, v)| (u as usize) < n && (v as usize) < n).collect();
        let g = build(n, &edges);
        let oracle = oracle_distances(&g);
        let mut scratch = BfsScratch::new(n);
        for s in 0..n {
            bounded_bfs(&g, NodeId(s as u32), u32::MAX, Direction::Out, &mut scratch);
            let mut got: Vec<Option<u32>> = vec![None; n];
            for &(v, dist) in &scratch.visited {
                got[v.index()] = Some(dist);
            }
            prop_assert_eq!(&got, &oracle[s], "source {}", s);
        }
    }

    #[test]
    fn bounded_bfs_is_truncation(n in 2usize..12, edges in arb_edges(11), k in 1u32..4) {
        let edges: Vec<_> = edges.into_iter().filter(|&(u, v)| (u as usize) < n && (v as usize) < n).collect();
        let g = build(n, &edges);
        let mut s1 = BfsScratch::new(n);
        let mut s2 = BfsScratch::new(n);
        for s in 0..n {
            bounded_bfs(&g, NodeId(s as u32), k, Direction::Out, &mut s1);
            bounded_bfs(&g, NodeId(s as u32), u32::MAX, Direction::Out, &mut s2);
            let full: std::collections::HashMap<NodeId, u32> =
                s2.visited.iter().copied().collect();
            // Bounded = exactly the full-BFS entries with distance ≤ k.
            let bounded: std::collections::HashMap<NodeId, u32> =
                s1.visited.iter().copied().collect();
            let expect: std::collections::HashMap<NodeId, u32> = full
                .iter()
                .filter(|&(_, &d)| d <= k)
                .map(|(&v, &d)| (v, d))
                .collect();
            prop_assert_eq!(&bounded, &expect);
        }
    }

    #[test]
    fn in_bfs_mirrors_out_bfs(n in 2usize..12, edges in arb_edges(11)) {
        let edges: Vec<_> = edges.into_iter().filter(|&(u, v)| (u as usize) < n && (v as usize) < n).collect();
        let g = build(n, &edges);
        let mut s1 = BfsScratch::new(n);
        let mut s2 = BfsScratch::new(n);
        // dist_out(u, v) must equal dist_in(v, u).
        for u in 0..n {
            bounded_bfs(&g, NodeId(u as u32), u32::MAX, Direction::Out, &mut s1);
            for &(v, d) in &s1.visited {
                bounded_bfs(&g, v, u32::MAX, Direction::In, &mut s2);
                let back = s2
                    .visited
                    .iter()
                    .find(|&&(w, _)| w == NodeId(u as u32))
                    .map(|&(_, d2)| d2);
                prop_assert_eq!(back, Some(d));
            }
        }
    }

    #[test]
    fn tarjan_matches_mutual_reachability(n in 1usize..12, edges in arb_edges(11)) {
        let edges: Vec<_> = edges.into_iter().filter(|&(u, v)| (u as usize) < n && (v as usize) < n).collect();
        let g = build(n, &edges);
        // Reflexive-transitive closure.
        let mut reach = vec![vec![false; n]; n];
        for i in 0..n {
            reach[i][i] = true;
        }
        for (u, v) in g.edges() {
            reach[u.index()][v.index()] = true;
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    if reach[i][k] && reach[k][j] {
                        reach[i][j] = true;
                    }
                }
            }
        }
        let scc = tarjan_scc(n, |v| {
            g.out_neighbors(NodeId(v)).iter().map(|w| w.0).collect::<Vec<_>>()
        });
        for i in 0..n {
            for j in 0..n {
                let same = scc.comp_of[i] == scc.comp_of[j];
                prop_assert_eq!(same, reach[i][j] && reach[j][i], "{} {}", i, j);
            }
        }
    }

    #[test]
    fn ranks_are_longest_paths(n in 1usize..10, edges in arb_edges(9)) {
        let edges: Vec<_> = edges.into_iter().filter(|&(u, v)| (u as usize) < n && (v as usize) < n).collect();
        let g = build(n, &edges);
        let succ = |v: u32| {
            g.out_neighbors(NodeId(v)).iter().map(|w| w.0).collect::<Vec<_>>()
        };
        let scc = tarjan_scc(n, succ);
        let cond = Condensation::build(n, succ, scc);
        // Rank must be antitone along condensation edges with slack ≥ 1 and
        // tight for at least one successor (max semantics).
        for &(a, b) in &cond.edges {
            prop_assert!(cond.comp_rank[a as usize] >= cond.comp_rank[b as usize] + 1);
        }
        for c in 0..cond.scc.comp_count {
            let succs: Vec<u32> = cond
                .edges
                .iter()
                .filter(|&&(a, _)| a as usize == c)
                .map(|&(_, b)| b)
                .collect();
            if succs.is_empty() {
                prop_assert_eq!(cond.comp_rank[c], 0);
            } else {
                let best = succs.iter().map(|&s| cond.comp_rank[s as usize] + 1).max().unwrap();
                prop_assert_eq!(cond.comp_rank[c], best);
            }
        }
    }

    #[test]
    fn bitset_matches_hashset(ops in proptest::collection::vec((any::<bool>(), 0usize..120), 0..80)) {
        let mut bs = BitSet::new(120);
        let mut hs = std::collections::HashSet::new();
        for (insert, i) in ops {
            if insert {
                prop_assert_eq!(bs.insert(i), hs.insert(i));
            } else {
                prop_assert_eq!(bs.remove(i), hs.remove(&i));
            }
        }
        prop_assert_eq!(bs.count(), hs.len());
        let mut from_bs: Vec<usize> = bs.iter().collect();
        let mut from_hs: Vec<usize> = hs.into_iter().collect();
        from_bs.sort_unstable();
        from_hs.sort_unstable();
        prop_assert_eq!(from_bs, from_hs);
    }
}
