//! Integrity-checker contract tests: `check_store_dir` must (a) pass a
//! freshly saved store with zero findings, (b) map every corruption class
//! — magic, version, checksum, truncation, CSR offsets, pair sort order,
//! intern table, pattern JSON, id ordering, meta.json, graph fingerprint —
//! to a *distinct* stable `GPV0xx` code, and (c) never report an
//! error-severity diagnostic for any scenario the generator can sample
//! (the false-positive pin: the verifier passes run inside the
//! differential fuzz harness on every iteration, so a spurious error
//! there would poison every future fuzz run).

use graph_views::generator::Scenario;
use graph_views::prelude::*;
use graph_views::views::store::ViewStore;
use graph_views::views::{
    check_snapshot, check_store_dir, has_errors, lint_query, lint_views, verify_plan, DiagCode,
    Diagnostic, Severity,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Byte-wise FNV-1a, matching `gpv_core::fnv` — needed to re-forge shard
/// checksums so structural corruptions get past the integrity gate.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir() -> std::path::PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("gpv-verify-{}-{n}", std::process::id()))
}

fn single(x: &str, y: &str) -> Pattern {
    let mut b = PatternBuilder::new();
    let u = b.node_labeled(x);
    let v = b.node_labeled(y);
    b.edge(u, v);
    b.build().unwrap()
}

/// A one-shard store whose first view has a two-pair edge set (so the
/// pair-sort corruption has something to unsort) and which holds two
/// views (so the id-ordering corruption has a second id to clash with).
fn saved_store() -> (std::path::PathBuf, DataGraph) {
    let mut b = GraphBuilder::new();
    let a0 = b.add_node(["A"]);
    let b1 = b.add_node(["B"]);
    let a2 = b.add_node(["A"]);
    let b3 = b.add_node(["B"]);
    let c4 = b.add_node(["C"]);
    b.add_edge(a0, b1);
    b.add_edge(a2, b3);
    b.add_edge(b1, c4);
    let g = b.build();
    let vs = ViewSet::new(vec![
        ViewDef::new("vab", single("A", "B")),
        ViewDef::new("vbc", single("B", "C")),
    ]);
    let dir = scratch_dir();
    let store = ViewStore::materialize(vs, &g, 1);
    store.save_to_dir(&dir).expect("store saves");
    (dir, g)
}

/// Byte positions of the first shard's corruptible fields, recovered by
/// walking the clean file with the documented layout (`gpv_core::shard`).
struct FieldMap {
    /// First view's name-table index (u32).
    name_idx: usize,
    /// First byte of the first view's pattern JSON.
    pat_json: usize,
    /// First view's node-offsets column (u32s; `[0]` must be 0).
    node_offsets: usize,
    /// First view's pair column (8 bytes per pair).
    pairs: usize,
    /// Pairs in the first view's first edge set.
    pair_count: usize,
    /// Second view's stable id (u64).
    second_id: usize,
}

fn map_fields(bytes: &[u8]) -> FieldMap {
    let u32_at = |p: usize| u32::from_le_bytes(bytes[p..p + 4].try_into().unwrap()) as usize;
    let mut p = 20 + 8 + 4; // payload + fingerprint + view count
    let name_count = u32_at(p);
    p += 4;
    for _ in 0..name_count {
        p += 4 + u32_at(p);
    }
    p += 8; // first view id
    let name_idx = p;
    p += 4;
    let pat_len = u32_at(p);
    let pat_json = p + 4;
    p += 4 + pat_len;
    let np = u32_at(p);
    let ne = u32_at(p + 4);
    p += 8;
    let node_offsets = p;
    let nn = u32_at(p + 4 * np); // last node offset
    p += 4 * (np + 1) + 4 * nn;
    let pair_count = u32_at(p + 4 * ne); // last edge offset
    p += 4 * (ne + 1);
    let pairs = p;
    let second_id = p + 8 * pair_count;
    FieldMap {
        name_idx,
        pat_json,
        node_offsets,
        pairs,
        pair_count,
        second_id,
    }
}

/// Re-forges the header checksum after a structural corruption, so the
/// check reaches the structural validators instead of stopping at
/// `GPV054`.
fn forge_checksum(bytes: &mut [u8]) {
    let sum = fnv1a(&bytes[20..]);
    bytes[12..20].copy_from_slice(&sum.to_le_bytes());
}

fn check_corrupted(dir: &std::path::Path, bytes: Vec<u8>) -> Vec<Diagnostic> {
    std::fs::write(dir.join("shard-0000.bin"), bytes).expect("shard writes");
    check_store_dir(dir)
}

fn sole_error_code(diags: &[Diagnostic]) -> DiagCode {
    let errors: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert!(!errors.is_empty(), "expected an error finding: {diags:?}");
    errors[0].code
}

#[test]
fn clean_store_checks_clean() {
    let (dir, g) = saved_store();
    let diags = check_store_dir(&dir);
    assert!(diags.is_empty(), "{diags:?}");
    let loaded = ViewStore::load_from_dir(&dir).expect("loads");
    let snap = check_snapshot(&loaded.snapshot(), Some(&g));
    assert!(snap.is_empty(), "{snap:?}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The sweep: bit-flip (or rewrite) each field class of the shard file
/// and assert each corruption surfaces as its own distinct `GPV0xx` code.
#[test]
fn each_corruption_class_has_a_distinct_code() {
    let (dir, _g) = saved_store();
    let clean = std::fs::read(dir.join("shard-0000.bin")).expect("shard reads");
    let f = map_fields(&clean);
    assert!(f.pair_count >= 2, "fixture needs a two-pair edge set");

    let mut seen: Vec<(&str, DiagCode)> = Vec::new();
    let mut case = |name: &'static str, corrupt: &dyn Fn(&mut Vec<u8>), expect: DiagCode| {
        let mut bytes = clean.clone();
        corrupt(&mut bytes);
        let code = sole_error_code(&check_corrupted(&dir, bytes));
        assert_eq!(code, expect, "corruption class `{name}`");
        seen.push((name, code));
    };

    case("magic", &|b| b[0] ^= 0xff, DiagCode::ShardBadMagic);
    case("version", &|b| b[8] = 99, DiagCode::ShardBadVersion);
    case(
        "checksum",
        &|b| {
            let last = b.len() - 1;
            b[last] ^= 0x01; // payload flip, header checksum left alone
        },
        DiagCode::ShardChecksumMismatch,
    );
    case(
        "truncation",
        &|b| {
            b.truncate(b.len() - 4);
            forge_checksum(b);
        },
        DiagCode::ShardTruncated,
    );
    case(
        "csr-offsets",
        &|b| {
            b[f.node_offsets..f.node_offsets + 4].copy_from_slice(&7u32.to_le_bytes());
            forge_checksum(b);
        },
        DiagCode::ShardBadOffsets,
    );
    case(
        "pair-sort",
        &|b| {
            // Overwrite the first pair with the second: equal adjacent
            // pairs break the strictly-sorted set invariant.
            let second: Vec<u8> = b[f.pairs + 8..f.pairs + 16].to_vec();
            b[f.pairs..f.pairs + 8].copy_from_slice(&second);
            forge_checksum(b);
        },
        DiagCode::ShardUnsortedSet,
    );
    case(
        "intern-table",
        &|b| {
            b[f.name_idx..f.name_idx + 4].copy_from_slice(&u32::MAX.to_le_bytes());
            forge_checksum(b);
        },
        DiagCode::ShardBadInternTable,
    );
    case(
        "pattern-json",
        &|b| {
            b[f.pat_json] = b'X';
            forge_checksum(b);
        },
        DiagCode::ShardBadPatternJson,
    );
    case(
        "id-order",
        &|b| {
            // Both view ids zero: the second is no longer strictly above
            // the first.
            b[f.second_id..f.second_id + 8].copy_from_slice(&0u64.to_le_bytes());
            forge_checksum(b);
        },
        DiagCode::StoreIdsNotAscending,
    );
    case(
        "trailing-bytes",
        &|b| {
            b.extend_from_slice(&[0u8; 4]);
            forge_checksum(b);
        },
        DiagCode::ShardTrailingBytes,
    );
    case(
        "graph-fingerprint",
        &|b| {
            b[20] ^= 0xff; // fingerprint no longer matches meta.json
            forge_checksum(b);
        },
        DiagCode::StoreGraphMismatch,
    );

    // meta.json corruption classes live outside the shard bytes.
    std::fs::write(dir.join("shard-0000.bin"), &clean).unwrap();
    std::fs::write(dir.join("meta.json"), "{not json").unwrap();
    let meta_code = sole_error_code(&check_store_dir(&dir));
    assert_eq!(meta_code, DiagCode::StoreMetaInvalid);
    seen.push(("meta-json", meta_code));

    std::fs::remove_dir_all(&dir).ok();
    let missing_code = sole_error_code(&check_store_dir(&dir));
    assert_eq!(missing_code, DiagCode::StoreIo);
    seen.push(("missing-dir", missing_code));

    // Distinctness: every corruption class maps to its own code.
    for (i, (ni, ci)) in seen.iter().enumerate() {
        for (nj, cj) in seen.iter().skip(i + 1) {
            assert_ne!(ci, cj, "classes `{ni}` and `{nj}` share code {ci:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The false-positive pin: on any scenario the generator can sample,
    /// all four verifier passes — plan IR, query lints, view-set lints,
    /// store/snapshot integrity — report zero error-severity diagnostics
    /// for plans the engine produced and stores it materialized.
    #[test]
    fn sampled_scenarios_verify_clean(seed in any::<u64>(), index in 0u64..64) {
        let sc = Scenario::sample(seed, index);
        let inputs = sc.materialize();
        let g = &inputs.graph;

        let engine = QueryEngine::materialize(inputs.views.clone(), g);
        for q in &inputs.queries {
            let plan = engine.plan(q);
            let diags = verify_plan(q, &plan, engine.views());
            prop_assert!(!has_errors(&diags), "plan verifier errored: {diags:?}");
            let lints = lint_query(q, Some(g));
            prop_assert!(!has_errors(&lints), "query lint errored: {lints:?}");
        }
        let vdiags = lint_views(&inputs.views, &inputs.queries, &[]);
        prop_assert!(!has_errors(&vdiags), "view lint errored: {vdiags:?}");

        let store = ViewStore::materialize(inputs.views.clone(), g, 2);
        let sdiags = check_snapshot(&store.snapshot(), Some(g));
        prop_assert!(!has_errors(&sdiags), "snapshot check errored: {sdiags:?}");

        let dir = scratch_dir();
        store.save_to_dir(&dir).expect("store saves");
        let ddiags = check_store_dir(&dir);
        std::fs::remove_dir_all(&dir).ok();
        prop_assert!(!has_errors(&ddiags), "store check errored: {ddiags:?}");
    }
}
