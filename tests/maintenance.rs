//! Property tests for incremental view maintenance: after any script of
//! edge deletions and insertions, the incrementally maintained extension
//! equals recomputation from scratch — both on small random scripts and
//! on full delta streams sampled from [`gpv_generator::Scenario`]s.

use gpv_generator::{random_graph, random_pattern, PatternShape, Scenario};
use graph_views::prelude::*;
use graph_views::views::IncrementalView;
use proptest::prelude::*;

const LABELS: [&str; 3] = ["A", "B", "C"];

/// Rebuilds a graph applying an edit script to the original edge set.
fn apply_script(g0: &DataGraph, script: &[(bool, u32, u32)]) -> DataGraph {
    use std::collections::BTreeSet;
    let mut edges: BTreeSet<(u32, u32)> = g0.edges().map(|(u, v)| (u.0, v.0)).collect();
    for &(insert, a, b) in script {
        if insert {
            edges.insert((a, b));
        } else {
            edges.remove(&(a, b));
        }
    }
    let mut b = GraphBuilder::new();
    for v in g0.nodes() {
        let labels: Vec<&str> = g0.labels_of(v).iter().map(|&l| g0.label_name(l)).collect();
        b.add_node(labels.iter().copied());
    }
    for (u, v) in edges {
        b.add_edge(NodeId(u), NodeId(v));
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_equals_recompute(
        gseed in any::<u64>(),
        qseed in any::<u64>(),
        raw_script in proptest::collection::vec((any::<bool>(), 0u32..20, 0u32..20), 0..25),
    ) {
        let g = random_graph(20, 40, &LABELS, gseed);
        let q = random_pattern(3, 3, &LABELS, PatternShape::Any, qseed);
        let mut inc = IncrementalView::new(q.clone(), &g);

        // Normalize the script: drop self-referential no-ops that the
        // builder would dedup anyway (self-loops are fine).
        let mut applied: Vec<(bool, u32, u32)> = Vec::new();
        for (insert, a, b) in raw_script {
            if insert {
                inc.insert_edge(NodeId(a), NodeId(b));
            } else {
                inc.delete_edge(NodeId(a), NodeId(b));
            }
            applied.push((insert, a, b));
            // Check after *every* step, not just at the end, so ordering
            // bugs can't cancel out.
            let oracle_graph = apply_script(&g, &applied);
            let expect = match_pattern(&q, &oracle_graph);
            prop_assert_eq!(
                inc.result(),
                expect,
                "divergence after {} ops",
                applied.len()
            );
        }
    }

    /// Deleting every edge empties the view; re-inserting restores it.
    #[test]
    fn full_teardown_and_rebuild(gseed in any::<u64>(), qseed in any::<u64>()) {
        let g = random_graph(15, 30, &LABELS, gseed);
        let q = random_pattern(2, 2, &LABELS, PatternShape::Any, qseed);
        let mut inc = IncrementalView::new(q.clone(), &g);
        let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
        for &(u, v) in &edges {
            inc.delete_edge(u, v);
        }
        prop_assert!(inc.result().is_empty() || q.edge_count() == 0);
        for &(u, v) in &edges {
            inc.insert_edge(u, v);
        }
        prop_assert_eq!(inc.result(), match_pattern(&q, &g));
    }

    /// Scenario-sampled maintenance sweep: sample a full [`Scenario`]
    /// (forced update-heavy — nonzero `delta_batch_len` and
    /// `delete_ratio`), keep one warm [`IncrementalView`] per registered
    /// view, and replay the scenario's generated insert/delete stream,
    /// checking after every batch that each maintainer equals the boxed
    /// from-scratch oracle on the evolving graph. Failures print the
    /// scenario's one-line JSON and the `gpv fuzz --repro` command (plus
    /// the shim's `GPV_TEST_SEED` replay line).
    #[test]
    fn scenario_delta_streams_keep_incremental_views_exact(
        master in any::<u64>(),
        idx in 0u64..40,
    ) {
        let mut sc = Scenario::sample(master, idx);
        sc.delta_batch_len = sc.delta_batch_len.max(3);
        if sc.delete_ratio == 0.0 {
            sc.delete_ratio = 0.5;
        }
        sc.rounds = sc.rounds.max(2);
        let inputs = sc.materialize();

        // The "boxed match_pattern" oracle — the same shape the
        // differential harness injects, so this pins maintainer ≡ oracle
        // rather than maintainer ≡ some inlined shortcut.
        type Oracle = Box<dyn Fn(&Pattern, &DataGraph) -> MatchResult>;
        let oracle: Oracle = Box::new(match_pattern);

        let mut incs: Vec<(Pattern, IncrementalView)> = inputs
            .views
            .iter()
            .map(|(_, def)| {
                (
                    def.pattern.clone(),
                    IncrementalView::new(def.pattern.clone(), &inputs.graph),
                )
            })
            .collect();
        let mut edges: std::collections::BTreeSet<(NodeId, NodeId)> =
            inputs.graph.edges().collect();
        for (round, delta) in inputs.deltas.iter().enumerate() {
            // EdgeDelta semantics: deletes land before inserts.
            for &(u, v) in &delta.deletes {
                edges.remove(&(u, v));
                for (_, inc) in &mut incs {
                    inc.delete_edge(u, v);
                }
            }
            for &(u, v) in &delta.inserts {
                edges.insert((u, v));
                for (_, inc) in &mut incs {
                    inc.insert_edge(u, v);
                }
            }
            let edge_list: Vec<(NodeId, NodeId)> = edges.iter().copied().collect();
            let truth_graph = inputs.graph.with_edges(&edge_list);
            for (vi, (q, inc)) in incs.iter().enumerate() {
                let want = oracle(q, &truth_graph);
                if inc.result() != want {
                    return Err(TestCaseError::fail(format!(
                        "view {vi} diverged from the oracle after delta round {round}\n\
                         scenario: {}\nrepro: {}",
                        sc.to_json_line(),
                        sc.repro_command()
                    )));
                }
            }
        }
    }
}
