//! Property tests for incremental view maintenance: after any script of
//! edge deletions and insertions, the incrementally maintained extension
//! equals recomputation from scratch.

use gpv_generator::{random_graph, random_pattern, PatternShape};
use graph_views::prelude::*;
use graph_views::views::IncrementalView;
use proptest::prelude::*;

const LABELS: [&str; 3] = ["A", "B", "C"];

/// Rebuilds a graph applying an edit script to the original edge set.
fn apply_script(g0: &DataGraph, script: &[(bool, u32, u32)]) -> DataGraph {
    use std::collections::BTreeSet;
    let mut edges: BTreeSet<(u32, u32)> = g0.edges().map(|(u, v)| (u.0, v.0)).collect();
    for &(insert, a, b) in script {
        if insert {
            edges.insert((a, b));
        } else {
            edges.remove(&(a, b));
        }
    }
    let mut b = GraphBuilder::new();
    for v in g0.nodes() {
        let labels: Vec<&str> = g0.labels_of(v).iter().map(|&l| g0.label_name(l)).collect();
        b.add_node(labels.iter().copied());
    }
    for (u, v) in edges {
        b.add_edge(NodeId(u), NodeId(v));
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_equals_recompute(
        gseed in any::<u64>(),
        qseed in any::<u64>(),
        raw_script in proptest::collection::vec((any::<bool>(), 0u32..20, 0u32..20), 0..25),
    ) {
        let g = random_graph(20, 40, &LABELS, gseed);
        let q = random_pattern(3, 3, &LABELS, PatternShape::Any, qseed);
        let mut inc = IncrementalView::new(q.clone(), &g);

        // Normalize the script: drop self-referential no-ops that the
        // builder would dedup anyway (self-loops are fine).
        let mut applied: Vec<(bool, u32, u32)> = Vec::new();
        for (insert, a, b) in raw_script {
            if insert {
                inc.insert_edge(NodeId(a), NodeId(b));
            } else {
                inc.delete_edge(NodeId(a), NodeId(b));
            }
            applied.push((insert, a, b));
            // Check after *every* step, not just at the end, so ordering
            // bugs can't cancel out.
            let oracle_graph = apply_script(&g, &applied);
            let expect = match_pattern(&q, &oracle_graph);
            prop_assert_eq!(
                inc.result(),
                expect,
                "divergence after {} ops",
                applied.len()
            );
        }
    }

    /// Deleting every edge empties the view; re-inserting restores it.
    #[test]
    fn full_teardown_and_rebuild(gseed in any::<u64>(), qseed in any::<u64>()) {
        let g = random_graph(15, 30, &LABELS, gseed);
        let q = random_pattern(2, 2, &LABELS, PatternShape::Any, qseed);
        let mut inc = IncrementalView::new(q.clone(), &g);
        let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
        for &(u, v) in &edges {
            inc.delete_edge(u, v);
        }
        prop_assert!(inc.result().is_empty() || q.edge_count() == 0);
        for &(u, v) in &edges {
            inc.insert_edge(u, v);
        }
        prop_assert_eq!(inc.result(), match_pattern(&q, &g));
    }
}
