//! The scenario harness: every workload + configuration knob in one
//! deterministic, serializable descriptor.
//!
//! A [`Scenario`] pins everything that influences an end-to-end run of the
//! engine/service stack — which graph emulator and at what scale, how many
//! queries of what shape over how many labels, how the serving schedule
//! repeats them (zipfian), what fraction of the covering view set is
//! registered, how the store mutates between rounds, and the full engine/
//! service configuration (selection mode, executor + granularity, threads,
//! chunk size, cost weights, cache budgets, recalibration cadence). Two
//! invariants make it a fuzzing substrate:
//!
//! * **One-seed determinism** — [`Scenario::sample`] is a pure function of
//!   `(master_seed, index)`, and [`Scenario::materialize`] is a pure
//!   function of the descriptor. Same scenario, same workload, bit for bit.
//! * **One-line repro** — [`Scenario::to_json_line`] serializes the whole
//!   descriptor to one JSON line; [`Scenario::from_json_line`] round-trips
//!   it. A failing fuzz iteration prints this line, and
//!   `gpv fuzz --repro '<json>'` replays exactly that case.
//!
//! Config knobs are swept by *cycling* (`index` modulo small co-prime-ish
//! periods) rather than sampled randomly, so a short run provably covers
//! the whole configuration matrix: 5 query modes × 3 executor settings ×
//! 2 weight classes × 4 cache states are all hit within the first
//! `lcm ≤ 60` iterations (and mostly within the first 5–12). Workload
//! dimensions (graph source/scale, query shapes, zipf skew, coverage) are
//! drawn from the seeded RNG for diversity.

use crate::datasets::{
    amazon, amazon_predicate_pool, citation, citation_predicate_pool, youtube,
    youtube_predicate_pool,
};
use crate::patterns::{random_bounded_pattern, random_pattern, random_pattern_with_preds};
use crate::synthetic::{densification_graph, random_graph, DEFAULT_ALPHABET};
use crate::views::{covering_bounded_views, covering_views};
use crate::PatternShape;
use gpv_core::differential::{
    check_bounded, check_plain, BoundedOracle, DifferentialCase, DifferentialReport, Divergence,
    PlainOracle,
};
use gpv_core::{
    BoundedViewSet, CostModel, EdgeDelta, EngineConfig, ExecStrategy, JoinStrategy, ParGranularity,
    SelectionMode, ServiceConfig, ViewDef, ViewSet,
};
use gpv_graph::{DataGraph, NodeId};
use gpv_matching::{bmatch_pattern, match_pattern};
use gpv_pattern::{BoundedPattern, Pattern};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which data-graph emulator a scenario draws its graph from.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum GraphSource {
    /// Uniform `G(n, m, Σ)` over the first `labels` entries of the default
    /// alphabet ([`random_graph`]).
    Synthetic {
        /// Node count.
        nodes: usize,
        /// Edge count.
        edges: usize,
        /// Label-alphabet cardinality (prefix of [`DEFAULT_ALPHABET`]).
        labels: usize,
    },
    /// Densification-law graph `|E| = |V|^alpha` ([`densification_graph`]).
    Densification {
        /// Node count.
        nodes: usize,
        /// Densification exponent (use binary-exact values like `1.125`).
        alpha: f64,
        /// Label-alphabet cardinality (prefix of [`DEFAULT_ALPHABET`]).
        labels: usize,
    },
    /// The Amazon product-graph emulator ([`amazon`]).
    Amazon {
        /// Node count.
        nodes: usize,
    },
    /// The Citation DAG emulator ([`citation`]).
    Citation {
        /// Node count.
        nodes: usize,
    },
    /// The YouTube video-graph emulator ([`youtube`]).
    YouTube {
        /// Node count.
        nodes: usize,
    },
}

/// Which of the five query modes a scenario exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryMode {
    /// Full coverage, selection forced to `all` (plain containment).
    Contain,
    /// Full coverage, selection forced to `minimal`.
    Minimal,
    /// Full coverage, selection forced to `minimum`.
    Minimum,
    /// Reduced view coverage — hybrid/direct fallbacks, cost-based
    /// selection.
    Partial,
    /// Bounded pattern queries vs `bmatch_pattern` (plus the plain check).
    Bounded,
}

/// Which executor the engine is forced to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecKnob {
    /// Single-threaded ranked-bottom-up.
    Sequential,
    /// Parallel, one work unit per pattern edge.
    ParallelPerEdge,
    /// Parallel, chunked within each edge's pair set.
    ParallelChunked,
}

/// Which cost-weight class the engine plans under.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WeightsKnob {
    /// The unit-free default weights.
    Default,
    /// Calibrated-style weights with graph scans priced very cheap
    /// (pushes the planner toward hybrid/direct shapes).
    CheapScan,
    /// Calibrated-style weights with pair reads priced very expensive
    /// (stresses the opposite plan shapes).
    ExpensiveRead,
}

/// The result-cache states the sampler cycles through (bytes):
/// default 64 MiB (hot), disabled, 4 KiB (eviction churn), 64 KiB.
pub const CACHE_STATES: [usize; 4] = [64 << 20, 0, 4096, 64 << 10];

/// One fully-pinned workload + configuration. See the module docs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The seed all of [`materialize`](Scenario::materialize)'s randomness
    /// derives from.
    pub seed: u64,
    /// Data-graph source and scale.
    pub graph: GraphSource,
    /// Distinct queries in the pool.
    pub queries: usize,
    /// Pattern nodes per query.
    pub query_nodes: usize,
    /// Pattern edges per query (before duplicate-merge).
    pub query_edges: usize,
    /// Shape constraint for generated queries.
    pub shape: PatternShape,
    /// Upper bound `k` for bounded-mode edge bounds.
    pub max_bound: u32,
    /// Zipf exponent for the serving schedule (0 = uniform).
    pub zipf_s: f64,
    /// Queries per serving round (drawn zipfian from the pool).
    pub batch_len: usize,
    /// Serving rounds.
    pub rounds: usize,
    /// Views inserted into the store after each round.
    pub updates_per_round: usize,
    /// Edge operations per [`EdgeDelta`] batch applied to the graph after
    /// each round (0 keeps the graph static — the pre-delta serving path).
    pub delta_batch_len: usize,
    /// Fraction of each delta batch that deletes live edges; the rest
    /// inserts fresh edges between existing nodes. Sampled from a small
    /// set including 0.0 (insert-only) and 1.0 (delete-only churn).
    pub delete_ratio: f64,
    /// Fraction of the covering view set that gets registered
    /// (1.0 except in [`QueryMode::Partial`]).
    pub coverage: f64,
    /// Max edges per covering-view fragment.
    pub max_fragment: usize,
    /// Query mode under test.
    pub mode: QueryMode,
    /// Executor under test.
    pub exec: ExecKnob,
    /// Worker threads for parallel executors.
    pub threads: usize,
    /// Pairs per chunk for [`ExecKnob::ParallelChunked`].
    pub chunk_pairs: usize,
    /// Cost-weight class under test.
    pub weights: WeightsKnob,
    /// Service recalibration cadence (0 = never).
    pub recalibrate_every: usize,
    /// Result-cache budget in bytes (0 disables).
    pub result_cache_bytes: usize,
    /// Plan-cache capacity (small values force churn).
    pub plan_cache_capacity: usize,
    /// Store shard count.
    pub shards: usize,
}

/// Everything [`Scenario::materialize`] builds: the concrete workload the
/// differential checker (or a benchmark) runs.
pub struct ScenarioInputs {
    /// The data graph.
    pub graph: DataGraph,
    /// The distinct plain-query pool.
    pub queries: Vec<Pattern>,
    /// The registered view set (post-coverage subsetting).
    pub views: ViewSet,
    /// Per-round serve schedules (indices into `queries`).
    pub rounds: Vec<Vec<usize>>,
    /// Views inserted after each round.
    pub updates: Vec<Vec<ViewDef>>,
    /// Edge deltas applied to the graph after each round (empty batches
    /// when [`Scenario::delta_batch_len`] is 0).
    pub deltas: Vec<EdgeDelta>,
    /// Bounded workload (queries + covering bounded views), present only
    /// in [`QueryMode::Bounded`].
    pub bounded: Option<(Vec<BoundedPattern>, BoundedViewSet)>,
}

fn mix(master_seed: u64, index: u64) -> u64 {
    // splitmix64-style finalizer over (seed, index) — decorrelates nearby
    // indices without an RNG.
    let mut z = master_seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Scenario {
    /// Deterministically samples the `index`-th scenario of a fuzz run
    /// seeded with `master_seed`.
    ///
    /// Configuration axes cycle with short periods so coverage is
    /// guaranteed, not probabilistic: query mode has period 5, executor 3,
    /// weight class 4 (default on even indices, the two calibrated classes
    /// alternating on odd), cache state 4, threads/chunk sizes 3 and 4
    /// (offset so they decorrelate from the other axes). Everything else
    /// is drawn from an RNG seeded with `mix(master_seed, index)`.
    pub fn sample(master_seed: u64, index: u64) -> Scenario {
        let seed = mix(master_seed, index);
        let mut rng = StdRng::seed_from_u64(seed);

        let mode = match index % 5 {
            0 => QueryMode::Contain,
            1 => QueryMode::Minimal,
            2 => QueryMode::Minimum,
            3 => QueryMode::Partial,
            _ => QueryMode::Bounded,
        };
        let exec = match index % 3 {
            0 => ExecKnob::Sequential,
            1 => ExecKnob::ParallelPerEdge,
            _ => ExecKnob::ParallelChunked,
        };
        let weights = if index % 2 == 0 {
            WeightsKnob::Default
        } else if (index / 2) % 2 == 0 {
            WeightsKnob::CheapScan
        } else {
            WeightsKnob::ExpensiveRead
        };
        let result_cache_bytes = CACHE_STATES[(index % 4) as usize];
        let threads = [2, 4, 8][((index / 3) % 3) as usize];
        let chunk_pairs = [1, 8, 64, 65_536][((index / 4) % 4) as usize];
        let recalibrate_every = usize::from(index % 7 < 3);

        let labels = rng.gen_range(2..=6);
        // Bounded mode needs label-alphabet graphs (the bounded generator
        // draws from the alphabet, not the dataset predicate pools).
        let graph = if mode == QueryMode::Bounded {
            let n = rng.gen_range(20..=60);
            GraphSource::Synthetic {
                nodes: n,
                edges: n * rng.gen_range(2..=3usize),
                labels,
            }
        } else {
            match rng.gen_range(0..6) {
                0 | 1 => {
                    let n = rng.gen_range(20..=60);
                    GraphSource::Synthetic {
                        nodes: n,
                        edges: n * rng.gen_range(2..=3usize),
                        labels,
                    }
                }
                2 => GraphSource::Densification {
                    nodes: rng.gen_range(20..=50),
                    alpha: [1.125, 1.25][rng.gen_range(0..2usize)],
                    labels,
                },
                3 => GraphSource::Amazon {
                    nodes: rng.gen_range(40..=80),
                },
                4 => GraphSource::Citation {
                    nodes: rng.gen_range(40..=80),
                },
                _ => GraphSource::YouTube {
                    nodes: rng.gen_range(40..=80),
                },
            }
        };

        let shape = match rng.gen_range(0..3) {
            0 => PatternShape::Any,
            1 => PatternShape::Dag,
            _ => PatternShape::Cyclic,
        };
        let coverage = if mode == QueryMode::Partial {
            [0.25, 0.375, 0.5, 0.625][rng.gen_range(0..4usize)]
        } else {
            1.0
        };

        Scenario {
            seed,
            graph,
            queries: rng.gen_range(2..=4),
            query_nodes: rng.gen_range(3..=4),
            query_edges: rng.gen_range(2..=5),
            shape,
            max_bound: rng.gen_range(1..=3),
            zipf_s: [0.0, 0.75, 1.5][rng.gen_range(0..3usize)],
            batch_len: rng.gen_range(4..=10),
            rounds: rng.gen_range(2..=4),
            updates_per_round: rng.gen_range(0..=2),
            delta_batch_len: rng.gen_range(0..=3),
            delete_ratio: [0.0, 0.25, 0.5, 1.0][rng.gen_range(0..4usize)],
            coverage,
            max_fragment: rng.gen_range(2..=3),
            mode,
            exec,
            threads,
            chunk_pairs,
            weights,
            recalibrate_every,
            result_cache_bytes,
            plan_cache_capacity: [2, 8, 4096][rng.gen_range(0..3usize)],
            shards: rng.gen_range(1..=4),
        }
    }

    /// Builds the concrete workload. Pure in `self` (all randomness comes
    /// from [`seed`](Scenario::seed)), so a deserialized repro line
    /// rebuilds the identical graph, queries, views and schedules.
    pub fn materialize(&self) -> ScenarioInputs {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let labels = match self.graph {
            GraphSource::Synthetic { labels, .. } | GraphSource::Densification { labels, .. } => {
                labels.clamp(1, DEFAULT_ALPHABET.len())
            }
            _ => DEFAULT_ALPHABET.len(),
        };
        let alphabet = &DEFAULT_ALPHABET[..labels];
        let graph = match self.graph {
            GraphSource::Synthetic { nodes, edges, .. } => {
                random_graph(nodes, edges, alphabet, rng.gen())
            }
            GraphSource::Densification { nodes, alpha, .. } => {
                densification_graph(nodes, alpha, alphabet, rng.gen())
            }
            GraphSource::Amazon { nodes } => amazon(nodes, rng.gen()),
            GraphSource::Citation { nodes } => citation(nodes, rng.gen()),
            GraphSource::YouTube { nodes } => youtube(nodes, rng.gen()),
        };
        let pool = match self.graph {
            GraphSource::Amazon { .. } => Some(amazon_predicate_pool()),
            GraphSource::Citation { .. } => Some(citation_predicate_pool()),
            GraphSource::YouTube { .. } => Some(youtube_predicate_pool()),
            _ => None,
        };
        let queries: Vec<Pattern> = (0..self.queries.max(1))
            .map(|_| match &pool {
                Some(preds) => random_pattern_with_preds(
                    self.query_nodes,
                    self.query_edges,
                    preds,
                    self.shape,
                    rng.gen(),
                ),
                None => random_pattern(
                    self.query_nodes,
                    self.query_edges,
                    alphabet,
                    self.shape,
                    rng.gen(),
                ),
            })
            .collect();

        let full = covering_views(&queries, self.max_fragment, rng.gen());
        let views = if self.coverage >= 1.0 {
            full
        } else {
            // Keep a deterministic random subset of ~coverage·|V| views.
            let keep = ((full.card() as f64 * self.coverage).ceil() as usize).min(full.card());
            let mut idx: Vec<usize> = (0..full.card()).collect();
            for i in (1..idx.len()).rev() {
                idx.swap(i, rng.gen_range(0..=i));
            }
            idx.truncate(keep);
            idx.sort_unstable();
            full.subset(&idx)
        };

        let rounds: Vec<Vec<usize>> = (0..self.rounds.max(1))
            .map(|_| zipf_schedule(&mut rng, queries.len(), self.batch_len, self.zipf_s))
            .collect();
        let updates: Vec<Vec<ViewDef>> = (0..self.rounds.max(1))
            .map(|r| {
                (0..self.updates_per_round)
                    .map(|j| {
                        let p = match &pool {
                            Some(preds) => {
                                random_pattern_with_preds(2, 1, preds, PatternShape::Any, rng.gen())
                            }
                            None => random_pattern(2, 1, alphabet, PatternShape::Any, rng.gen()),
                        };
                        ViewDef::new(format!("U{r}_{j}"), p)
                    })
                    .collect()
            })
            .collect();

        // Per-round edge deltas over the *evolving* edge set: deletes pick
        // live edges (so they actually remove something most of the time),
        // inserts pick fresh endpoint pairs among the existing nodes
        // (deltas never grow the node set). Tracking the live set across
        // rounds makes a long delete-heavy run drain the graph instead of
        // retrying the same victims.
        let deltas: Vec<EdgeDelta> = {
            let mut live: Vec<(NodeId, NodeId)> = graph.edges().collect();
            let n = graph.node_count() as u32;
            (0..self.rounds.max(1))
                .map(|_| {
                    let mut inserts = Vec::new();
                    let mut deletes = Vec::new();
                    for _ in 0..self.delta_batch_len {
                        if rng.gen::<f64>() < self.delete_ratio && !live.is_empty() {
                            let k = rng.gen_range(0..live.len());
                            deletes.push(live.swap_remove(k));
                        } else if n > 0 {
                            let e = (NodeId(rng.gen_range(0..n)), NodeId(rng.gen_range(0..n)));
                            if !live.contains(&e) {
                                live.push(e);
                                inserts.push(e);
                            }
                        }
                    }
                    EdgeDelta::new(inserts, deletes)
                })
                .collect()
        };

        let bounded = (self.mode == QueryMode::Bounded).then(|| {
            let bqueries: Vec<BoundedPattern> = (0..self.queries.max(1))
                .map(|_| {
                    random_bounded_pattern(
                        self.query_nodes,
                        self.query_edges,
                        alphabet,
                        self.max_bound.max(1),
                        self.shape,
                        rng.gen(),
                    )
                })
                .collect();
            let bviews = covering_bounded_views(&bqueries, self.max_fragment, rng.gen());
            (bqueries, bviews)
        });

        ScenarioInputs {
            graph,
            queries,
            views,
            rounds,
            updates,
            deltas,
            bounded,
        }
    }

    /// The cost weights the scenario plans under.
    pub fn cost_model(&self) -> CostModel {
        match self.weights {
            WeightsKnob::Default => CostModel::default(),
            WeightsKnob::CheapScan => CostModel {
                read_pair: 2.0,
                refine_pair: 1.0,
                scan_edge: 0.05,
                calibrated: true,
                ..CostModel::default()
            },
            WeightsKnob::ExpensiveRead => CostModel {
                read_pair: 50.0,
                refine_pair: 0.2,
                scan_edge: 0.5,
                calibrated: true,
                ..CostModel::default()
            },
        }
    }

    /// The engine configuration the scenario forces (executor, selection
    /// mode, threads, chunking, weights).
    pub fn engine_config(&self) -> EngineConfig {
        let force_exec = Some(match self.exec {
            ExecKnob::Sequential => ExecStrategy::Sequential(JoinStrategy::RankedBottomUp),
            ExecKnob::ParallelPerEdge => ExecStrategy::Parallel {
                threads: self.threads,
                granularity: ParGranularity::PerEdge,
            },
            ExecKnob::ParallelChunked => ExecStrategy::Parallel {
                threads: self.threads,
                granularity: ParGranularity::Chunked {
                    chunk_pairs: self.chunk_pairs.max(1),
                },
            },
        });
        let force_selection = match self.mode {
            QueryMode::Contain => Some(SelectionMode::All),
            QueryMode::Minimal => Some(SelectionMode::Minimal),
            QueryMode::Minimum => Some(SelectionMode::Minimum),
            QueryMode::Partial | QueryMode::Bounded => None,
        };
        EngineConfig {
            cost: self.cost_model(),
            threads: self.threads,
            chunk_pairs: matches!(self.exec, ExecKnob::ParallelChunked)
                .then_some(self.chunk_pairs.max(1)),
            force_selection,
            force_exec,
        }
    }

    /// The service configuration (cache budgets, recalibration cadence)
    /// wrapping [`engine_config`](Scenario::engine_config).
    pub fn service_config(&self) -> ServiceConfig {
        ServiceConfig {
            engine: self.engine_config(),
            plan_cache_capacity: self.plan_cache_capacity,
            result_cache_bytes: self.result_cache_bytes,
            recalibrate_every: self.recalibrate_every as u64,
        }
    }

    /// Serializes the descriptor to its one-line JSON repro string.
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("scenario serializes")
    }

    /// Parses a repro string produced by [`to_json_line`](Scenario::to_json_line).
    pub fn from_json_line(s: &str) -> Result<Scenario, String> {
        serde_json::from_str(s.trim()).map_err(|e| format!("bad scenario JSON: {e}"))
    }

    /// The exact CLI command that replays this scenario.
    pub fn repro_command(&self) -> String {
        format!("gpv fuzz --repro '{}'", self.to_json_line())
    }
}

/// One zipfian serve schedule: `len` indices into a pool of `n` queries,
/// rank `i` drawn with probability ∝ `(i+1)^-s` (`s = 0` is uniform).
fn zipf_schedule(rng: &mut StdRng, n: usize, len: usize, s: f64) -> Vec<usize> {
    let n = n.max(1);
    let weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-s)).collect();
    let total: f64 = weights.iter().sum();
    (0..len.max(1))
        .map(|_| {
            let mut x = rng.gen::<f64>() * total;
            for (i, w) in weights.iter().enumerate() {
                if x < *w {
                    return i;
                }
                x -= *w;
            }
            n - 1
        })
        .collect()
}

/// Runs the scenario through the differential checker with the real
/// oracles (`match_pattern` / `bmatch_pattern`).
pub fn check_scenario(sc: &Scenario) -> Result<DifferentialReport, Box<Divergence>> {
    let oracle: PlainOracle = Box::new(match_pattern);
    let boracle: BoundedOracle = Box::new(bmatch_pattern);
    check_scenario_with(sc, &oracle, &boracle)
}

/// Runs the scenario through the differential checker with caller-supplied
/// oracles (the fuzz CLI's injection hook wraps the real oracle here).
pub fn check_scenario_with(
    sc: &Scenario,
    oracle: &PlainOracle,
    boracle: &BoundedOracle,
) -> Result<DifferentialReport, Box<Divergence>> {
    let inputs = sc.materialize();
    let case = DifferentialCase {
        graph: &inputs.graph,
        views: &inputs.views,
        queries: &inputs.queries,
        rounds: &inputs.rounds,
        updates: &inputs.updates,
        deltas: &inputs.deltas,
        shards: sc.shards.max(1),
        engine: sc.engine_config(),
        service: sc.service_config(),
    };
    let mut report = check_plain(&case, oracle)?;
    if let Some((bqueries, bviews)) = &inputs.bounded {
        report.bounded_queries =
            check_bounded(&inputs.graph, bviews, bqueries, sc.engine_config(), boracle)?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn sampling_is_deterministic() {
        for i in 0..8 {
            let a = Scenario::sample(99, i);
            let b = Scenario::sample(99, i);
            assert_eq!(a, b);
            assert_eq!(a.to_json_line(), b.to_json_line());
        }
        // Different indices actually differ.
        assert_ne!(Scenario::sample(99, 0), Scenario::sample(99, 1));
    }

    #[test]
    fn json_line_roundtrips() {
        for i in 0..12 {
            let sc = Scenario::sample(7, i);
            let line = sc.to_json_line();
            assert!(!line.contains('\n'), "repro must be one line");
            let back = Scenario::from_json_line(&line).expect("parses");
            assert_eq!(sc, back, "roundtrip at index {i}");
        }
    }

    #[test]
    fn materialize_is_deterministic() {
        let sc = Scenario::sample(3, 4);
        let a = sc.materialize();
        let b = sc.materialize();
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.deltas, b.deltas);
        assert_eq!(a.views.card(), b.views.card());
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    }

    /// Delta batches are valid for the evolving graph: every referenced
    /// node exists, delete-heavy batches pick live edges, and applying the
    /// whole stream round by round never errors.
    #[test]
    fn generated_deltas_replay_against_the_evolving_graph() {
        let mut sc = Scenario::sample(17, 1);
        sc.delta_batch_len = 4;
        sc.delete_ratio = 0.5;
        sc.rounds = 4;
        let inputs = sc.materialize();
        assert_eq!(inputs.deltas.len(), 4);
        assert!(inputs.deltas.iter().any(|d| !d.deletes.is_empty()));
        assert!(inputs.deltas.iter().any(|d| !d.inserts.is_empty()));
        let mut g = inputs.graph.clone();
        for d in &inputs.deltas {
            d.validate(&g).expect("deltas reference live nodes");
            g = d.apply_to(&g);
        }
    }

    #[test]
    fn twenty_five_iterations_cover_the_matrix() {
        let mut modes = BTreeSet::new();
        let mut execs = BTreeSet::new();
        let mut weights = BTreeSet::new();
        let mut caches = BTreeSet::new();
        for i in 0..25 {
            let sc = Scenario::sample(42, i);
            modes.insert(format!("{:?}", sc.mode));
            execs.insert(format!("{:?}", sc.exec));
            weights.insert(sc.cost_model().calibrated);
            caches.insert(sc.result_cache_bytes);
        }
        assert_eq!(modes.len(), 5, "all five query modes: {modes:?}");
        assert_eq!(
            execs.len(),
            3,
            "both executors, both granularities: {execs:?}"
        );
        assert_eq!(weights.len(), 2, "default and calibrated weights");
        assert!(caches.len() >= 2, "≥ 2 cache states: {caches:?}");
    }

    #[test]
    fn partial_mode_reduces_coverage() {
        let sc = (0..40)
            .map(|i| Scenario::sample(5, i))
            .find(|s| s.mode == QueryMode::Partial)
            .expect("partial mode sampled");
        assert!(sc.coverage < 1.0);
        // Same scenario at full coverage keeps the whole covering set; the
        // partial one keeps ceil(coverage·|V|) of it.
        let mut full_sc = sc.clone();
        full_sc.coverage = 1.0;
        let partial = sc.materialize().views.card();
        let full = full_sc.materialize().views.card();
        assert!(partial <= full, "partial {partial} > full {full}");
        assert!(partial >= 1);
    }

    #[test]
    fn zipf_schedule_is_skewed_and_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let sched = zipf_schedule(&mut rng, 4, 400, 1.5);
        assert!(sched.iter().all(|&i| i < 4));
        let head = sched.iter().filter(|&&i| i == 0).count();
        let tail = sched.iter().filter(|&&i| i == 3).count();
        assert!(head > tail, "zipf head ({head}) should beat tail ({tail})");
    }

    #[test]
    fn sampled_scenarios_pass_differential_check() {
        // A cheap smoke over the first few sampled scenarios; the full
        // sweep lives in `gpv fuzz` and the integration proptests.
        for i in 0..5 {
            let sc = Scenario::sample(11, i);
            if let Err(d) = check_scenario(&sc) {
                panic!(
                    "{d}\nscenario: {}\nrepro: {}",
                    sc.to_json_line(),
                    sc.repro_command()
                );
            }
        }
    }

    /// Update-heavy smoke: force the delta path on (including pure-delete
    /// churn) and hold delta-maintained serving to the oracle across every
    /// round. This is the unit-test twin of CI's `gpv fuzz --require-deltas`
    /// sweep.
    #[test]
    fn update_heavy_scenarios_pass_differential_check() {
        for i in 0..4 {
            let mut sc = Scenario::sample(13, i);
            sc.delta_batch_len = 3;
            sc.delete_ratio = if i % 2 == 0 { 0.5 } else { 1.0 };
            sc.rounds = 3;
            match check_scenario(&sc) {
                Ok(report) => assert!(report.edge_deltas > 0, "deltas must have applied"),
                Err(d) => panic!(
                    "{d}\nscenario: {}\nrepro: {}",
                    sc.to_json_line(),
                    sc.repro_command()
                ),
            }
        }
    }
}
