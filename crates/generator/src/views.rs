//! View-set generators.
//!
//! The benchmark workloads need view sets that actually contain the queries
//! (otherwise `MatchJoin` is inapplicable and the comparison with `Match` is
//! vacuous). Two strategies are provided:
//!
//! * [`covering_views`] — decompose each workload query into small connected
//!   sub-patterns (1–3 edges) and register them as views. Single-edge
//!   decompositions always cover their source edges, so `Qs ⊑ V` holds by
//!   construction; larger fragments give `minimal`/`minimum` real choices
//!   to make, as in the paper's setups (12 views per real-life dataset,
//!   22 for synthetic).
//! * [`label_pair_views`] — one single-edge view per label pair occurring
//!   in a query workload; the baseline "cache everything small" strategy.

use gpv_core::bview::{BoundedViewDef, BoundedViewSet};
use gpv_core::view::{ViewDef, ViewSet};
use gpv_pattern::{BoundedPattern, EdgeBound, Pattern, PatternBuilder, PatternEdgeId, Predicate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Builds a connected sub-pattern of `q` from a set of its edge ids.
/// Node predicates are cloned, so view conditions are equivalent to the
/// query's — the requirement for view-match coverage.
pub fn subpattern(q: &Pattern, edge_ids: &[PatternEdgeId]) -> Pattern {
    let mut b = PatternBuilder::new();
    let mut map: HashMap<u32, gpv_pattern::PatternNodeId> = HashMap::new();
    let mut order: Vec<(u32, u32)> = Vec::new();
    for &e in edge_ids {
        let (u, v) = q.edge(e);
        order.push((u.0, v.0));
    }
    for &(u, v) in &order {
        for n in [u, v] {
            map.entry(n)
                .or_insert_with(|| b.node(q.pred(gpv_pattern::PatternNodeId(n)).clone()));
        }
    }
    for &(u, v) in &order {
        b.edge(map[&u], map[&v]);
    }
    b.build().expect("nonempty subpattern")
}

/// Bounded analogue of [`subpattern`]: bounds are carried over (views keep
/// the query's bound, so `fe(e) ≤ k` holds with equality).
pub fn bounded_subpattern(qb: &BoundedPattern, edge_ids: &[PatternEdgeId]) -> BoundedPattern {
    let q = qb.pattern();
    let mut b = PatternBuilder::new();
    let mut map: HashMap<u32, gpv_pattern::PatternNodeId> = HashMap::new();
    for &e in edge_ids {
        let (u, v) = q.edge(e);
        for n in [u.0, v.0] {
            map.entry(n)
                .or_insert_with(|| b.node(q.pred(gpv_pattern::PatternNodeId(n)).clone()));
        }
    }
    for &e in edge_ids {
        let (u, v) = q.edge(e);
        match qb.bound(e) {
            EdgeBound::Hop(k) => b.edge_bounded(map[&u.0], map[&v.0], k),
            EdgeBound::Unbounded => b.edge_unbounded(map[&u.0], map[&v.0]),
        }
    }
    b.build_bounded().expect("nonempty subpattern")
}

/// Groups a pattern's edges into connected fragments of at most
/// `max_fragment` edges (a BFS-ish edge partition).
fn fragment_edges(q: &Pattern, max_fragment: usize, rng: &mut StdRng) -> Vec<Vec<PatternEdgeId>> {
    let ne = q.edge_count();
    let mut assigned = vec![false; ne];
    let mut fragments = Vec::new();
    for start in 0..ne {
        if assigned[start] {
            continue;
        }
        let mut frag = vec![PatternEdgeId(start as u32)];
        assigned[start] = true;
        let size = rng.gen_range(1..=max_fragment);
        // Grow by edges sharing a node with the fragment.
        while frag.len() < size {
            let mut grown = false;
            #[allow(clippy::needless_range_loop)] // cand doubles as the PatternEdgeId
            for cand in 0..ne {
                if assigned[cand] {
                    continue;
                }
                let (cu, cv) = q.edge(PatternEdgeId(cand as u32));
                let touches = frag.iter().any(|&f| {
                    let (fu, fv) = q.edge(f);
                    cu == fu || cu == fv || cv == fu || cv == fv
                });
                if touches {
                    frag.push(PatternEdgeId(cand as u32));
                    assigned[cand] = true;
                    grown = true;
                    break;
                }
            }
            if !grown {
                break;
            }
        }
        fragments.push(frag);
    }
    fragments
}

/// Generates a view set covering every query in `queries` by random
/// connected decomposition (fragments of 1..=`max_fragment` edges).
/// Containment `Qi ⊑ V` is guaranteed for every query.
pub fn covering_views(queries: &[Pattern], max_fragment: usize, seed: u64) -> ViewSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<ViewDef> = Vec::new();
    let mut seen: Vec<Pattern> = Vec::new();
    for q in queries {
        for frag in fragment_edges(q, max_fragment.max(1), &mut rng) {
            let sub = subpattern(q, &frag);
            if !seen.contains(&sub) {
                seen.push(sub.clone());
                out.push(ViewDef::new(format!("V{}", out.len() + 1), sub));
            }
        }
    }
    ViewSet::new(out)
}

/// Bounded analogue of [`covering_views`].
pub fn covering_bounded_views(
    queries: &[BoundedPattern],
    max_fragment: usize,
    seed: u64,
) -> BoundedViewSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<BoundedViewDef> = Vec::new();
    let mut seen: Vec<BoundedPattern> = Vec::new();
    for q in queries {
        for frag in fragment_edges(q.pattern(), max_fragment.max(1), &mut rng) {
            let sub = bounded_subpattern(q, &frag);
            if !seen.contains(&sub) {
                seen.push(sub.clone());
                out.push(BoundedViewDef::new(format!("V{}", out.len() + 1), sub));
            }
        }
    }
    BoundedViewSet::new(out)
}

/// One single-edge view per distinct (source predicate, target predicate)
/// pair across the workload.
pub fn label_pair_views(queries: &[Pattern]) -> ViewSet {
    let mut out: Vec<ViewDef> = Vec::new();
    let mut seen: Vec<(Predicate, Predicate)> = Vec::new();
    for q in queries {
        for &(u, v) in q.edges() {
            let key = (q.pred(u).clone(), q.pred(v).clone());
            if seen.contains(&key) {
                continue;
            }
            seen.push(key.clone());
            let mut b = PatternBuilder::new();
            let x = b.node(key.0.clone());
            let y = b.node(key.1.clone());
            b.edge(x, y);
            out.push(ViewDef::new(
                format!("V{}", out.len() + 1),
                b.build().unwrap(),
            ));
        }
    }
    ViewSet::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::{random_bounded_pattern, random_pattern, PatternShape};
    use crate::synthetic::DEFAULT_ALPHABET;
    use gpv_core::bcontainment::bcontain;
    use gpv_core::containment::contain;

    #[test]
    fn subpattern_extracts_edges() {
        let q = random_pattern(6, 9, &DEFAULT_ALPHABET, PatternShape::Any, 1);
        let sub = subpattern(&q, &[PatternEdgeId(0), PatternEdgeId(1)]);
        assert_eq!(sub.edge_count(), 2);
        assert!(sub.node_count() >= 2 && sub.node_count() <= 4);
    }

    #[test]
    fn covering_views_guarantee_containment() {
        for seed in 0..10 {
            let queries: Vec<Pattern> = (0..3)
                .map(|i| random_pattern(5, 8, &DEFAULT_ALPHABET, PatternShape::Any, seed * 10 + i))
                .collect();
            let views = covering_views(&queries, 3, seed);
            for (qi, q) in queries.iter().enumerate() {
                assert!(
                    contain(q, &views).is_some(),
                    "seed {seed} query {qi} not contained"
                );
            }
        }
    }

    #[test]
    fn covering_bounded_views_guarantee_containment() {
        for seed in 0..10 {
            let queries: Vec<BoundedPattern> = (0..3)
                .map(|i| {
                    random_bounded_pattern(
                        4,
                        6,
                        &DEFAULT_ALPHABET,
                        3,
                        PatternShape::Any,
                        seed * 10 + i,
                    )
                })
                .collect();
            let views = covering_bounded_views(&queries, 3, seed);
            for (qi, q) in queries.iter().enumerate() {
                assert!(
                    bcontain(q, &views).is_some(),
                    "seed {seed} query {qi} not contained"
                );
            }
        }
    }

    #[test]
    fn label_pair_views_cover() {
        let queries: Vec<Pattern> = (0..4)
            .map(|i| random_pattern(5, 8, &DEFAULT_ALPHABET, PatternShape::Cyclic, i))
            .collect();
        let views = label_pair_views(&queries);
        for q in &queries {
            assert!(contain(q, &views).is_some());
        }
        // Dedup works: fewer than total edges.
        let total: usize = queries.iter().map(|q| q.edge_count()).sum();
        assert!(views.card() <= total);
    }

    #[test]
    fn views_deduplicated() {
        // Identical fragments are deduplicated: decomposing the same query
        // with fragment size 1 yields exactly one view per distinct edge
        // shape, no matter how often the query repeats.
        let q = random_pattern(4, 5, &DEFAULT_ALPHABET, PatternShape::Any, 2);
        let triple = covering_views(&[q.clone(), q.clone(), q.clone()], 1, 0);
        let single = covering_views(&[q], 1, 0);
        assert_eq!(triple.card(), single.card());
        assert!(single.card() >= 1);
    }
}
