//! # gpv-generator — seeded workload generators
//!
//! Reproduces the experimental setting of *Answering Graph Pattern Queries
//! Using Views* (Fan, Wang, Wu — ICDE 2014), Section VII:
//!
//! * [`synthetic`] — random graphs `G(|V|, |E|, Σ)` and densification-law
//!   graphs `|E| = |V|^α`;
//! * [`patterns`] — random (bounded) pattern queries controlled by
//!   `(|Vp|, |Ep|, k)` with DAG/cyclic shape control;
//! * [`views`] — view sets guaranteed to contain a query workload
//!   (decomposition-based, mirroring the paper's curated 12–22 view sets);
//! * [`datasets`] — seeded emulators of the Amazon, Citation and YouTube
//!   snapshots (schema-faithful; see DESIGN.md §S1);
//! * [`youtube_views`] — the 12 concrete views of the paper's Fig. 7.
//!
//! Everything is deterministic in an explicit `seed`, so the benchmark
//! harness and EXPERIMENTS.md numbers are reproducible.

#![forbid(unsafe_code)]

pub mod datasets;
pub mod patterns;
pub mod scenario;
pub mod synthetic;
pub mod views;
pub mod youtube_views;

pub use datasets::{
    amazon, amazon_predicate_pool, citation, citation_predicate_pool, youtube,
    youtube_predicate_pool,
};
pub use patterns::{
    random_bounded_pattern, random_pattern, random_pattern_with_preds, uniform_bounded_pattern,
    uniform_bounded_pattern_with_preds, PatternShape,
};
pub use scenario::{
    check_scenario, check_scenario_with, ExecKnob, GraphSource, QueryMode, Scenario,
    ScenarioInputs, WeightsKnob, CACHE_STATES,
};
pub use synthetic::{densification_graph, random_graph, DEFAULT_ALPHABET};
pub use views::{
    bounded_subpattern, covering_bounded_views, covering_views, label_pair_views, subpattern,
};
pub use youtube_views::{fig7_queries, fig7_views};
