//! Emulators for the paper's three real-life datasets (DESIGN.md §S1).
//!
//! The original snapshots (Amazon co-purchase 548K/1.78M, Citation 1.4M/3M,
//! YouTube 1.6M/4.5M) are not redistributable here; these seeded generators
//! reproduce their *schemas* and coarse structure at a configurable scale:
//!
//! * **Amazon** — products labeled by group (`Book`, `Music`, `DVD`, ...),
//!   `sales-rank` attribute; co-purchase edges with preferential attachment
//!   ("people who buy x also buy y").
//! * **Citation** — papers labeled by venue area, `year` attribute; edges
//!   cite strictly older papers (a DAG), per arnetminer's citation network.
//! * **YouTube** — videos labeled `video` plus a category label, with the
//!   Fig. 7 attributes: age (A), length (L), category (C), rate (R),
//!   visits (V); "related video" edges mix same-category and random links.
//!
//! All algorithms under test are label/structure driven, so these preserve
//! the experiments' relevant behaviour; absolute timings differ from the
//! paper's testbed either way (§S2).

use gpv_graph::{DataGraph, GraphBuilder, NodeId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Product groups for the Amazon emulator.
pub const AMAZON_GROUPS: [&str; 6] = ["Book", "Music", "DVD", "Video", "Software", "Toy"];

/// Venue areas for the Citation emulator.
pub const CITATION_AREAS: [&str; 8] = ["DB", "AI", "SE", "OS", "PL", "Arch", "Net", "Theory"];

/// Video categories for the YouTube emulator (per Fig. 7's conditions).
pub const YOUTUBE_CATEGORIES: [&str; 6] = ["Music", "Sports", "Comedy", "News", "Ent.", "Film"];

/// Amazon-like co-purchase network: `n` products, ~`2n` edges by
/// preferential attachment within and across groups.
pub fn amazon(n: usize, seed: u64) -> DataGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, 3 * n);
    for i in 0..n {
        let group = AMAZON_GROUPS[rng.gen_range(0..AMAZON_GROUPS.len())];
        let v = b.add_node([group]);
        b.set_attr(v, "salesrank", Value::int(rng.gen_range(1..1_000_000)));
        b.set_attr(v, "id", Value::int(i as i64));
    }
    // Preferential attachment flavour: later products point to earlier,
    // popular ones ("people who buy x also buy y" lists are short).
    for i in 1..n {
        let out_deg = rng.gen_range(1..=4usize).min(i);
        for _ in 0..out_deg {
            // Bias toward low ids (earlier = more popular): square the unit
            // sample.
            let r: f64 = rng.gen::<f64>();
            let j = ((r * r) * i as f64) as usize;
            if j != i {
                b.add_edge(NodeId(i as u32), NodeId(j as u32));
            }
        }
        // Occasionally reciprocate, as co-purchasing is loosely symmetric.
        if rng.gen_bool(0.3) {
            let r: f64 = rng.gen::<f64>();
            let j = ((r * r) * i as f64) as usize;
            if j != i {
                b.add_edge(NodeId(j as u32), NodeId(i as u32));
            }
        }
    }
    b.build()
}

/// Citation-like DAG: `n` papers, each citing up to 8 strictly older papers,
/// preferring its own area.
pub fn citation(n: usize, seed: u64) -> DataGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, 3 * n);
    let mut areas = Vec::with_capacity(n);
    for i in 0..n {
        let area = CITATION_AREAS[rng.gen_range(0..CITATION_AREAS.len())];
        areas.push(area);
        let v = b.add_node([area]);
        // Publication years increase with id; citations point backwards.
        b.set_attr(v, "year", Value::int(1990 + (i * 30 / n.max(1)) as i64));
        b.set_attr(v, "venue", Value::str(format!("{area}-conf")));
    }
    for i in 1..n {
        let cites = rng.gen_range(1..=8usize).min(i);
        for _ in 0..cites {
            let mut j = rng.gen_range(0..i);
            // Prefer same-area citations: resample once if mismatched.
            if areas[j] != areas[i] && rng.gen_bool(0.6) {
                j = rng.gen_range(0..i);
            }
            b.add_edge(NodeId(i as u32), NodeId(j as u32));
        }
    }
    b.build()
}

/// YouTube-like recommendation network with Fig. 7's attributes:
/// age (A, days), length (L, seconds), category (C), rate (R, 1–5),
/// visits (V).
pub fn youtube(n: usize, seed: u64) -> DataGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, 3 * n);
    let mut cats = Vec::with_capacity(n);
    for _ in 0..n {
        let cat = YOUTUBE_CATEGORIES[rng.gen_range(0..YOUTUBE_CATEGORIES.len())];
        cats.push(cat);
        let v = b.add_node(["video", cat]);
        b.set_attr(v, "C", Value::str(cat));
        b.set_attr(v, "A", Value::int(rng.gen_range(1..1500)));
        b.set_attr(v, "L", Value::int(rng.gen_range(10..3600)));
        b.set_attr(v, "R", Value::int(rng.gen_range(1..=5)));
        b.set_attr(
            v,
            "V",
            Value::int((10f64.powf(rng.gen::<f64>() * 6.0)) as i64),
        );
    }
    // "y is in the related list of x": mostly same category.
    for i in 0..n {
        let related = rng.gen_range(2..=5usize);
        for _ in 0..related {
            let j = if rng.gen_bool(0.7) {
                // Same-category pick: rejection sample a few times.
                let mut j = rng.gen_range(0..n);
                for _ in 0..4 {
                    if cats[j] == cats[i] && j != i {
                        break;
                    }
                    j = rng.gen_range(0..n);
                }
                j
            } else {
                rng.gen_range(0..n)
            };
            if j != i {
                b.add_edge(NodeId(i as u32), NodeId(j as u32));
            }
        }
    }
    b.build()
}

/// Node-condition pool for Amazon queries/views: product group plus a
/// sales-rank ceiling (the attributes the paper names for this dataset).
pub fn amazon_predicate_pool() -> Vec<gpv_pattern::Predicate> {
    use gpv_pattern::{CmpOp, Predicate};
    let mut out = Vec::new();
    for g in AMAZON_GROUPS {
        for t in [100_000i64, 300_000, 600_000] {
            out.push(Predicate::label(g).and(Predicate::cmp("salesrank", CmpOp::Le, t)));
        }
    }
    out
}

/// Node-condition pool for Citation queries/views: venue area plus a year
/// window.
pub fn citation_predicate_pool() -> Vec<gpv_pattern::Predicate> {
    use gpv_pattern::{CmpOp, Predicate};
    let mut out = Vec::new();
    for a in CITATION_AREAS {
        for y in [1995i64, 2005, 2012] {
            out.push(Predicate::label(a).and(Predicate::cmp("year", CmpOp::Ge, y)));
        }
    }
    out
}

/// Node-condition pool for YouTube queries/views, in the style of Fig. 7:
/// category plus rate/visits thresholds.
pub fn youtube_predicate_pool() -> Vec<gpv_pattern::Predicate> {
    use gpv_pattern::{CmpOp, Predicate};
    let mut out = Vec::new();
    for c in YOUTUBE_CATEGORIES {
        out.push(Predicate::cmp("C", CmpOp::Eq, c).and(Predicate::cmp("R", CmpOp::Ge, 4i64)));
        out.push(Predicate::cmp("C", CmpOp::Eq, c).and(Predicate::cmp("V", CmpOp::Ge, 10_000i64)));
    }
    out.push(Predicate::cmp("R", CmpOp::Ge, 5i64).and(Predicate::cmp("V", CmpOp::Ge, 10_000i64)));
    out.push(Predicate::cmp("A", CmpOp::Le, 100i64).and(Predicate::cmp("R", CmpOp::Ge, 4i64)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpv_graph::stats::{label_histogram, stats};

    #[test]
    fn amazon_shape() {
        let g = amazon(2000, 1);
        let s = stats(&g);
        assert_eq!(s.nodes, 2000);
        assert!(s.edges >= 2000, "roughly 2-3 edges per node: {}", s.edges);
        assert!(s.edges <= 7000);
        let h = label_histogram(&g);
        assert!(h.len() >= 5, "most groups present");
        // Attributes present.
        let rank = g.lookup_attr("salesrank").unwrap();
        assert!(g.attr_int(NodeId(0), rank).is_some());
    }

    #[test]
    fn citation_is_dag() {
        let g = citation(1500, 2);
        // Every edge points to a smaller id → acyclic by construction.
        for (u, v) in g.edges() {
            assert!(v.0 < u.0);
        }
        let year = g.lookup_attr("year").unwrap();
        // Years are monotone in id.
        let y0 = g.attr_int(NodeId(0), year).unwrap();
        let yl = g.attr_int(NodeId(1499), year).unwrap();
        assert!(y0 <= yl);
    }

    #[test]
    fn youtube_attributes() {
        let g = youtube(1000, 3);
        let c = g.lookup_attr("C").unwrap();
        let r = g.lookup_attr("R").unwrap();
        let v = g.lookup_attr("V").unwrap();
        for node in g.nodes().take(50) {
            assert!(g.attr(node, c).is_some());
            let rate = g.attr_int(node, r).unwrap();
            assert!((1..=5).contains(&rate));
            assert!(g.attr_int(node, v).unwrap() >= 1);
        }
        // Both the `video` label and the category label are set.
        let video = g.lookup_label("video").unwrap();
        assert!(g.nodes().all(|n| g.has_label(n, video)));
    }

    #[test]
    fn deterministic() {
        let a = youtube(200, 7);
        let b = youtube(200, 7);
        assert_eq!(a.edge_count(), b.edge_count());
        let c = youtube(200, 8);
        assert!(a.edge_count() != c.edge_count() || a.edges().ne(c.edges()));
    }
}
