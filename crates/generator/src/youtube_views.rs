//! The 12 YouTube view definitions of the paper's Fig. 7.
//!
//! Each view is a small pattern over video nodes carrying Boolean search
//! conditions on age (A), length (L), category (C), rate (R) and visits
//! (V). The published figure is partially ambiguous in print; the encodings
//! below keep every legible condition and the published shapes (2–3 nodes,
//! chains and fans), which is what the experiments exercise.

use gpv_core::view::{ViewDef, ViewSet};
use gpv_pattern::{CmpOp, Pattern, PatternBuilder, Predicate};

fn cat(c: &str) -> Predicate {
    Predicate::cmp("C", CmpOp::Eq, c)
}

fn ge(attr: &str, v: i64) -> Predicate {
    Predicate::cmp(attr, CmpOp::Ge, v)
}

fn le(attr: &str, v: i64) -> Predicate {
    Predicate::cmp(attr, CmpOp::Le, v)
}

fn chain2(name: &str, a: Predicate, b: Predicate) -> ViewDef {
    let mut p = PatternBuilder::new();
    let x = p.node(a);
    let y = p.node(b);
    p.edge(x, y);
    ViewDef::new(name, p.build().unwrap())
}

fn chain3(name: &str, a: Predicate, b: Predicate, c: Predicate) -> ViewDef {
    let mut p = PatternBuilder::new();
    let x = p.node(a);
    let y = p.node(b);
    let z = p.node(c);
    p.edge(x, y);
    p.edge(y, z);
    ViewDef::new(name, p.build().unwrap())
}

fn fan3(name: &str, root: Predicate, l: Predicate, r: Predicate) -> ViewDef {
    let mut p = PatternBuilder::new();
    let x = p.node(root);
    let y = p.node(l);
    let z = p.node(r);
    p.edge(x, y);
    p.edge(x, z);
    ViewDef::new(name, p.build().unwrap())
}

/// The Fig. 7 view set `P1..P12`.
pub fn fig7_views() -> ViewSet {
    let views = vec![
        // P1: Music with ≥10K visits recommending a highly rated video.
        chain2("P1", cat("Music").and(ge("V", 10_000)), ge("R", 4)),
        // P2: fresh (A ≤ 100) videos recommending top-rated Sports.
        chain2("P2", le("A", 100), ge("R", 5).and(cat("Sports"))),
        // P3: Sports chain with rating/length constraints.
        chain3(
            "P3",
            cat("Sports").and(ge("R", 4)),
            le("L", 200).and(ge("R", 5)),
            cat("Ent.").and(ge("V", 10_000)),
        ),
        // P4: News hub with ≥4 rating fanning to old and popular videos.
        fan3(
            "P4",
            cat("News").and(ge("R", 4)),
            ge("A", 100).and(ge("V", 10_000)),
            cat("Music"),
        ),
        // P5: Comedy with ≥10K visits to old popular Ent.
        chain3(
            "P5",
            cat("Comedy").and(ge("V", 10_000)),
            ge("A", 100).and(ge("V", 10_000)),
            cat("Ent."),
        ),
        // P6: long highly-rated video to long video.
        chain2("P6", ge("L", 200).and(ge("R", 4)), ge("L", 200)),
        // P7: top-rated Comedy to aged top-rated video.
        chain2(
            "P7",
            ge("R", 5).and(cat("Comedy")),
            ge("A", 200).and(ge("R", 5)),
        ),
        // P8: Sports with ≥10K visits to Sports.
        chain2("P8", cat("Sports").and(ge("V", 10_000)), cat("Sports")),
        // P9: Music to popular Ent.
        chain2("P9", cat("Music"), ge("V", 10_000).and(cat("Ent."))),
        // P10: highly-rated to popular Music.
        chain2("P10", ge("R", 4), ge("V", 10_000).and(cat("Music"))),
        // P11: top-rated Sports fan.
        fan3(
            "P11",
            ge("R", 5).and(cat("Sports")),
            cat("Music"),
            ge("V", 10_000),
        ),
        // P12: popular video chain into Sports.
        chain3("P12", ge("V", 10_000), ge("R", 4), cat("Sports")),
    ];
    ViewSet::new(views)
}

/// Queries over the YouTube schema that are contained in [`fig7_views`]:
/// compositions of the views' node conditions whose edges are covered by
/// the corresponding view edges. Used by the Fig. 8(c) experiment.
pub fn fig7_queries() -> Vec<Pattern> {
    let mut out = Vec::new();

    // Q1 = P1 ∪ P6 shapes glued on the R≥4 node.
    {
        let mut p = PatternBuilder::new();
        let a = p.node(cat("Music").and(ge("V", 10_000)));
        let b = p.node(ge("R", 4));
        let c = p.node(ge("V", 10_000).and(cat("Music")));
        p.edge(a, b);
        p.edge(b, c);
        out.push(p.build().unwrap());
    }
    // Q2 = P12's chain extended with P10's edge at the R≥4 node.
    {
        let mut p = PatternBuilder::new();
        let a = p.node(ge("V", 10_000));
        let b = p.node(ge("R", 4));
        let c = p.node(cat("Sports"));
        let d = p.node(ge("V", 10_000).and(cat("Music")));
        p.edge(a, b);
        p.edge(b, c);
        p.edge(b, d);
        out.push(p.build().unwrap());
    }
    // Q3 = P4's fan plus P1's edge.
    {
        let mut p = PatternBuilder::new();
        let root = p.node(cat("News").and(ge("R", 4)));
        let l = p.node(ge("A", 100).and(ge("V", 10_000)));
        let r = p.node(cat("Music"));
        p.edge(root, l);
        p.edge(root, r);
        out.push(p.build().unwrap());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::youtube;
    use gpv_core::containment::contain;
    use gpv_core::view::materialize;

    #[test]
    fn twelve_views() {
        let vs = fig7_views();
        assert_eq!(vs.card(), 12);
        for v in vs.views() {
            assert!(v.pattern.node_count() >= 2 && v.pattern.node_count() <= 3);
            assert!(v.pattern.is_connected());
        }
    }

    #[test]
    fn views_materialize_on_youtube() {
        let g = youtube(3000, 11);
        let vs = fig7_views();
        let ext = materialize(&vs, &g);
        // At this scale most views should be nonempty.
        let nonempty = ext.extensions.iter().filter(|e| !e.is_empty()).count();
        assert!(nonempty >= 8, "only {nonempty}/12 views matched");
    }

    #[test]
    fn q3_contained_in_views() {
        let qs = fig7_queries();
        let vs = fig7_views();
        // Q3 is built exactly from P4's fan — always contained.
        assert!(contain(&qs[2], &vs).is_some());
        // Q1 glues P1 and P10 edges.
        assert!(contain(&qs[0], &vs).is_some());
    }
}
