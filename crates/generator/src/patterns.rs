//! Random (bounded) pattern generators (paper Section VII).
//!
//! "We implemented a generator for bounded pattern queries controlled by
//! four parameters: the number |Vp| of pattern nodes, the number |Ep| of
//! pattern edges, label fv from Σ, and an upper bound k for fe(e), which
//! draws an edge bound randomly from [1, k]. When k = 1 for all edges,
//! bounded patterns are pattern queries."
//!
//! Patterns are generated connected (random spanning tree + extra edges).
//! DAG and cyclic variants support the Fig. 8(g)/(h) containment
//! experiments.

use gpv_pattern::{BoundedPattern, Pattern, PatternBuilder, PatternNodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Shape constraint for generated patterns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatternShape {
    /// Any connected digraph.
    Any,
    /// Acyclic (`QDAG` in Fig. 8(g)): edges oriented low → high index.
    Dag,
    /// At least one directed cycle (`QCyclic`).
    Cyclic,
}

/// Generates a connected random pattern with `nv` nodes and (about) `ne`
/// edges, labels drawn uniformly from `alphabet`. `ne` is clamped to at
/// least `nv - 1` (spanning tree) and duplicate edges are merged, so the
/// edge count may come out slightly below `ne` for dense requests.
pub fn random_pattern(
    nv: usize,
    ne: usize,
    alphabet: &[&str],
    shape: PatternShape,
    seed: u64,
) -> Pattern {
    assert!(nv >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = PatternBuilder::new();
    let nodes: Vec<PatternNodeId> = (0..nv)
        .map(|_| b.node_labeled(alphabet[rng.gen_range(0..alphabet.len())]))
        .collect();

    let mut edges: Vec<(usize, usize)> = Vec::new();
    // Random spanning tree for connectivity: attach node i to a random
    // earlier node (direction depends on shape).
    for i in 1..nv {
        let j = rng.gen_range(0..i);
        match shape {
            PatternShape::Dag => edges.push((j, i)),
            _ => {
                if rng.gen_bool(0.5) {
                    edges.push((j, i));
                } else {
                    edges.push((i, j));
                }
            }
        }
    }
    // Extra edges up to ne.
    let want = ne.max(nv.saturating_sub(1));
    let mut guard = 0;
    while edges.len() < want && guard < want * 20 {
        guard += 1;
        let a = rng.gen_range(0..nv);
        let c = rng.gen_range(0..nv);
        if a == c {
            continue;
        }
        let e = match shape {
            PatternShape::Dag => (a.min(c), a.max(c)),
            _ => (a, c),
        };
        if !edges.contains(&e) {
            edges.push(e);
        }
    }
    // Cyclic: force a cycle by closing the first tree edge backwards.
    if shape == PatternShape::Cyclic && nv >= 2 {
        let (a, c) = edges[0];
        let back = (c, a);
        if !edges.contains(&back) {
            edges.push(back);
        }
    }
    for (a, c) in edges {
        b.edge(nodes[a], nodes[c]);
    }
    b.build().expect("nonempty pattern")
}

/// Generates a connected random pattern whose node conditions are drawn
/// from a pool of `Predicate`s (label + attribute comparisons), as in the
/// paper's real-life workloads (Fig. 7 style search conditions). Structure
/// generation is identical to [`random_pattern`].
pub fn random_pattern_with_preds(
    nv: usize,
    ne: usize,
    preds: &[gpv_pattern::Predicate],
    shape: PatternShape,
    seed: u64,
) -> Pattern {
    assert!(!preds.is_empty());
    // Reuse random_pattern's structure by regenerating with a dummy alphabet
    // of the right size, then swap predicates deterministically.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5151_5151);
    let skeleton = random_pattern(nv, ne, &["X"], shape, seed);
    let node_preds: Vec<gpv_pattern::Predicate> = (0..nv)
        .map(|_| preds[rng.gen_range(0..preds.len())].clone())
        .collect();
    let edges: Vec<(u32, u32)> = skeleton.edges().iter().map(|&(u, v)| (u.0, v.0)).collect();
    Pattern::from_parts(node_preds, edges).expect("skeleton was valid")
}

/// Bounded analogue of [`random_pattern_with_preds`] with a uniform bound.
pub fn uniform_bounded_pattern_with_preds(
    nv: usize,
    ne: usize,
    preds: &[gpv_pattern::Predicate],
    k: u32,
    shape: PatternShape,
    seed: u64,
) -> BoundedPattern {
    BoundedPattern::with_uniform_bound(random_pattern_with_preds(nv, ne, preds, shape, seed), k)
}

/// Generates a bounded pattern: same structure as [`random_pattern`], with
/// each edge bound drawn uniformly from `[1, max_k]` (the paper's `k`).
pub fn random_bounded_pattern(
    nv: usize,
    ne: usize,
    alphabet: &[&str],
    max_k: u32,
    shape: PatternShape,
    seed: u64,
) -> BoundedPattern {
    assert!(max_k >= 1);
    let plain = random_pattern(nv, ne, alphabet, shape, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let bounds = plain
        .edges()
        .iter()
        .map(|_| gpv_pattern::EdgeBound::Hop(rng.gen_range(1..=max_k)))
        .collect();
    BoundedPattern::new(plain, bounds).expect("bounds aligned")
}

/// Generates a bounded pattern with a *uniform* bound on every edge, as in
/// the Fig. 8(i)–(l) experiments (`fe(e) = 2` or `3` for all `e`).
pub fn uniform_bounded_pattern(
    nv: usize,
    ne: usize,
    alphabet: &[&str],
    k: u32,
    shape: PatternShape,
    seed: u64,
) -> BoundedPattern {
    BoundedPattern::with_uniform_bound(random_pattern(nv, ne, alphabet, shape, seed), k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::DEFAULT_ALPHABET;

    #[test]
    fn connected_and_sized() {
        for seed in 0..20 {
            let p = random_pattern(6, 9, &DEFAULT_ALPHABET, PatternShape::Any, seed);
            assert_eq!(p.node_count(), 6);
            assert!(p.is_connected(), "seed {seed}");
            assert!(p.edge_count() >= 5);
        }
    }

    #[test]
    fn dag_shape() {
        for seed in 0..20 {
            let p = random_pattern(8, 16, &DEFAULT_ALPHABET, PatternShape::Dag, seed);
            assert!(p.is_dag(), "seed {seed}");
            assert!(p.is_connected());
        }
    }

    #[test]
    fn cyclic_shape() {
        for seed in 0..20 {
            let p = random_pattern(8, 16, &DEFAULT_ALPHABET, PatternShape::Cyclic, seed);
            assert!(!p.is_dag(), "seed {seed}");
            assert!(p.is_connected());
        }
    }

    #[test]
    fn deterministic() {
        let a = random_pattern(5, 8, &DEFAULT_ALPHABET, PatternShape::Any, 42);
        let b = random_pattern(5, 8, &DEFAULT_ALPHABET, PatternShape::Any, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn bounded_bounds_in_range() {
        let q = random_bounded_pattern(6, 10, &DEFAULT_ALPHABET, 4, PatternShape::Any, 9);
        for &b in q.bounds() {
            match b {
                gpv_pattern::EdgeBound::Hop(k) => assert!((1..=4).contains(&k)),
                gpv_pattern::EdgeBound::Unbounded => panic!("no * bounds from this generator"),
            }
        }
    }

    #[test]
    fn uniform_bounds() {
        let q = uniform_bounded_pattern(4, 8, &DEFAULT_ALPHABET, 3, PatternShape::Any, 1);
        assert!(q
            .bounds()
            .iter()
            .all(|&b| b == gpv_pattern::EdgeBound::Hop(3)));
    }

    #[test]
    fn k_equals_one_is_plain() {
        let q = random_bounded_pattern(4, 6, &DEFAULT_ALPHABET, 1, PatternShape::Any, 3);
        assert!(q.is_plain());
    }

    #[test]
    fn single_node() {
        let p = random_pattern(1, 0, &DEFAULT_ALPHABET, PatternShape::Any, 0);
        assert_eq!(p.node_count(), 1);
        assert_eq!(p.edge_count(), 0);
    }
}
