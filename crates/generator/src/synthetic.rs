//! Seeded synthetic graph generators (paper Section VII, "Synthetic data").
//!
//! "We designed a generator to produce random graphs, controlled by the
//! number |V| of nodes and the number |E| of edges, with node labels from an
//! alphabet Σ." The scalability experiments use `|E| = 2|V|`; the
//! densification experiments (Fig. 8(f)) follow `|E| = |V|^α` per
//! Leskovec et al.'s densification law.

use gpv_graph::{DataGraph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The default 10-label alphabet used for synthetic data (the paper draws
/// labels "from a set Σ of 10 labels").
pub const DEFAULT_ALPHABET: [&str; 10] =
    ["L0", "L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9"];

/// Generates a random graph with `n` nodes, `m` directed edges (before
/// deduplication of collisions) and one label per node drawn uniformly from
/// `alphabet`. Deterministic in `seed`.
pub fn random_graph(n: usize, m: usize, alphabet: &[&str], seed: u64) -> DataGraph {
    assert!(n > 0, "graph must have nodes");
    assert!(!alphabet.is_empty(), "alphabet must be nonempty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    for _ in 0..n {
        let l = alphabet[rng.gen_range(0..alphabet.len())];
        b.add_node([l]);
    }
    for _ in 0..m {
        let u = rng.gen_range(0..n) as u32;
        let mut v = rng.gen_range(0..n) as u32;
        if u == v {
            // Avoid a bias toward self-loops; real social edges rarely are.
            v = (v + 1) % n as u32;
        }
        b.add_edge(NodeId(u), NodeId(v));
    }
    b.build()
}

/// Generates a graph following the densification law `|E| = |V|^α`
/// (Fig. 8(f): `|V| = 200K`, `α ∈ [1, 1.25]`).
pub fn densification_graph(n: usize, alpha: f64, alphabet: &[&str], seed: u64) -> DataGraph {
    let m = (n as f64).powf(alpha).round() as usize;
    random_graph(n, m, alphabet, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpv_graph::stats::stats;

    #[test]
    fn deterministic() {
        let a = random_graph(100, 300, &DEFAULT_ALPHABET, 7);
        let b = random_graph(100, 300, &DEFAULT_ALPHABET, 7);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
        let c = random_graph(100, 300, &DEFAULT_ALPHABET, 8);
        assert_ne!(
            a.edges().collect::<Vec<_>>(),
            c.edges().collect::<Vec<_>>(),
            "different seeds should differ"
        );
    }

    #[test]
    fn sizes_roughly_requested() {
        let g = random_graph(1000, 2000, &DEFAULT_ALPHABET, 1);
        assert_eq!(g.node_count(), 1000);
        // Collisions shave a few edges off.
        assert!(g.edge_count() > 1900 && g.edge_count() <= 2000);
    }

    #[test]
    fn labels_from_alphabet() {
        let g = random_graph(50, 100, &["X", "Y"], 3);
        for v in g.nodes() {
            let ls = g.labels_of(v);
            assert_eq!(ls.len(), 1);
            let name = g.label_name(ls[0]);
            assert!(name == "X" || name == "Y");
        }
    }

    #[test]
    fn no_self_loops() {
        let g = random_graph(10, 200, &DEFAULT_ALPHABET, 5);
        for (u, v) in g.edges() {
            assert_ne!(u, v);
        }
    }

    #[test]
    fn densification_exponent() {
        let g = densification_graph(1000, 1.2, &DEFAULT_ALPHABET, 2);
        let s = stats(&g);
        // n^1.2 ≈ 3981; collisions allowed.
        assert!(s.edges > 3600 && s.edges <= 3982, "{}", s.edges);
        assert!((s.alpha - 1.2).abs() < 0.05);
    }
}
