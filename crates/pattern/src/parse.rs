//! Text format for (bounded) patterns.
//!
//! Line-oriented, mirroring the graph format of `gpv-graph::io`:
//!
//! ```text
//! # a bounded pattern
//! node pm PM
//! node dba DBA & exp>=5
//! node any *
//! edge pm dba
//! edge dba any 3
//! edge any pm *
//! ```
//!
//! * `node <name> <condition>` — condition is `*` (any), a label, or a
//!   `&`-conjunction of atoms; atoms are labels or comparisons
//!   `attr OP value` with `OP ∈ {=, !=, <, <=, >, >=}` and value an integer
//!   or a (optionally `"`-quoted) string.
//! * `edge <src> <dst> [bound]` — bound is a positive integer or `*`;
//!   omitted means 1 (a plain pattern edge).

use crate::bounded::{BoundedPattern, EdgeBound};
use crate::builder::PatternBuilder;
use crate::pattern::Pattern;
use crate::predicate::{Atom, CmpOp, Predicate};
use gpv_graph::Value;
use std::collections::HashMap;

/// Errors from the pattern parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Unknown record kind.
    UnknownRecord(usize, String),
    /// Malformed record.
    Malformed(usize, String),
    /// Duplicate node name.
    DuplicateNode(usize, String),
    /// Edge references an undeclared node.
    UnknownNode(usize, String),
    /// The final pattern is invalid (e.g. empty).
    Invalid(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnknownRecord(l, s) => write!(f, "line {l}: unknown record `{s}`"),
            ParseError::Malformed(l, s) => write!(f, "line {l}: malformed: {s}"),
            ParseError::DuplicateNode(l, s) => write!(f, "line {l}: duplicate node `{s}`"),
            ParseError::UnknownNode(l, s) => write!(f, "line {l}: unknown node `{s}`"),
            ParseError::Invalid(s) => write!(f, "invalid pattern: {s}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses a single atom: `label`, or `attr OP value`.
fn parse_atom(s: &str, lineno: usize) -> Result<Atom, ParseError> {
    let s = s.trim();
    // Find the operator (two-char ops first).
    for op_str in ["<=", ">=", "!="] {
        if let Some(i) = s.find(op_str) {
            return build_cmp(s, i, op_str, lineno);
        }
    }
    for op_str in ["=", "<", ">"] {
        if let Some(i) = s.find(op_str) {
            return build_cmp(s, i, op_str, lineno);
        }
    }
    if s.is_empty() || s.contains(char::is_whitespace) {
        return Err(ParseError::Malformed(lineno, format!("bad atom `{s}`")));
    }
    Ok(Atom::Label(s.to_string()))
}

fn build_cmp(s: &str, i: usize, op_str: &str, lineno: usize) -> Result<Atom, ParseError> {
    let attr = s[..i].trim();
    let raw = s[i + op_str.len()..].trim();
    if attr.is_empty() || raw.is_empty() {
        return Err(ParseError::Malformed(
            lineno,
            format!("bad comparison `{s}`"),
        ));
    }
    let op = match op_str {
        "=" => CmpOp::Eq,
        "!=" => CmpOp::Ne,
        "<" => CmpOp::Lt,
        "<=" => CmpOp::Le,
        ">" => CmpOp::Gt,
        ">=" => CmpOp::Ge,
        _ => unreachable!("operator list above"),
    };
    let value = if let Ok(i) = raw.parse::<i64>() {
        Value::Int(i)
    } else {
        Value::Str(raw.trim_matches('"').to_string())
    };
    Ok(Atom::Cmp {
        attr: attr.to_string(),
        op,
        value,
    })
}

/// Parses a node condition: `*` or a `&`-conjunction of atoms.
pub fn parse_predicate(s: &str) -> Result<Predicate, ParseError> {
    parse_predicate_at(s, 0)
}

fn parse_predicate_at(s: &str, lineno: usize) -> Result<Predicate, ParseError> {
    let s = s.trim();
    if s == "*" {
        return Ok(Predicate::any());
    }
    let mut p = Predicate::any();
    for part in s.split('&') {
        p.push(parse_atom(part, lineno)?);
    }
    Ok(p)
}

/// Parses the text format into a [`BoundedPattern`].
pub fn parse_bounded_pattern(text: &str) -> Result<BoundedPattern, ParseError> {
    let mut b = PatternBuilder::new();
    let mut names: HashMap<String, crate::pattern::PatternNodeId> = HashMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tok = line.split_whitespace();
        match tok.next().unwrap_or_default() {
            "node" => {
                let name = tok
                    .next()
                    .ok_or_else(|| ParseError::Malformed(lineno, raw.into()))?
                    .to_string();
                if names.contains_key(&name) {
                    return Err(ParseError::DuplicateNode(lineno, name));
                }
                let rest: String = tok.collect::<Vec<_>>().join(" ");
                let pred = if rest.is_empty() {
                    Predicate::any()
                } else {
                    parse_predicate_at(&rest, lineno)?
                };
                let id = b.node(pred);
                names.insert(name, id);
            }
            "edge" => {
                let src = tok
                    .next()
                    .ok_or_else(|| ParseError::Malformed(lineno, raw.into()))?;
                let dst = tok
                    .next()
                    .ok_or_else(|| ParseError::Malformed(lineno, raw.into()))?;
                let u = *names
                    .get(src)
                    .ok_or_else(|| ParseError::UnknownNode(lineno, src.into()))?;
                let v = *names
                    .get(dst)
                    .ok_or_else(|| ParseError::UnknownNode(lineno, dst.into()))?;
                match tok.next() {
                    None => b.edge(u, v),
                    Some("*") => b.edge_unbounded(u, v),
                    Some(k) => {
                        let k: u32 = k
                            .parse()
                            .map_err(|_| ParseError::Malformed(lineno, raw.into()))?;
                        if k == 0 {
                            return Err(ParseError::Malformed(lineno, "bound must be ≥ 1".into()));
                        }
                        b.edge_bounded(u, v, k);
                    }
                }
            }
            other => return Err(ParseError::UnknownRecord(lineno, other.into())),
        }
    }
    b.build_bounded()
        .map_err(|e| ParseError::Invalid(e.to_string()))
}

/// Parses the text format into a plain [`Pattern`]; rejects non-unit bounds.
pub fn parse_pattern(text: &str) -> Result<Pattern, ParseError> {
    let bp = parse_bounded_pattern(text)?;
    if !bp.is_plain() {
        return Err(ParseError::Invalid(
            "pattern has non-unit edge bounds; use parse_bounded_pattern".into(),
        ));
    }
    Ok(bp.pattern().clone())
}

/// Serializes a bounded pattern to the text format (round-trips through
/// [`parse_bounded_pattern`] up to node naming).
pub fn write_bounded_pattern(p: &BoundedPattern) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let q = p.pattern();
    for u in q.nodes() {
        let pred = q.pred(u);
        if pred.is_any() {
            let _ = writeln!(out, "node u{} *", u.0);
        } else {
            let cond = pred
                .atoms()
                .iter()
                .map(|a| match a {
                    Atom::Label(l) => l.clone(),
                    Atom::Cmp { attr, op, value } => match value {
                        Value::Int(i) => format!("{attr}{}{i}", op.symbol()),
                        Value::Str(s) => format!("{attr}{}\"{s}\"", op.symbol()),
                    },
                })
                .collect::<Vec<_>>()
                .join(" & ");
            let _ = writeln!(out, "node u{} {}", u.0, cond);
        }
    }
    for (ei, &(u, v)) in q.edges().iter().enumerate() {
        match p.bound(crate::pattern::PatternEdgeId(ei as u32)) {
            EdgeBound::Hop(1) => {
                let _ = writeln!(out, "edge u{} u{}", u.0, v.0);
            }
            EdgeBound::Hop(k) => {
                let _ = writeln!(out, "edge u{} u{} {}", u.0, v.0, k);
            }
            EdgeBound::Unbounded => {
                let _ = writeln!(out, "edge u{} u{} *", u.0, v.0);
            }
        }
    }
    out
}

/// Serializes a plain pattern.
pub fn write_pattern(p: &Pattern) -> String {
    write_bounded_pattern(&BoundedPattern::from_pattern(p.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternNodeId;

    #[test]
    fn parse_plain() {
        let p = parse_pattern(
            "# team\n\
             node pm PM\n\
             node dba DBA\n\
             edge pm dba\n",
        )
        .unwrap();
        assert_eq!(p.node_count(), 2);
        assert_eq!(p.edge_count(), 1);
        assert_eq!(p.pred(PatternNodeId(0)), &Predicate::label("PM"));
    }

    #[test]
    fn parse_conditions() {
        let p = parse_pattern(
            "node v video & R>=4 & C=\"Music\"\n\
             node w *\n\
             edge v w\n",
        )
        .unwrap();
        let pred = p.pred(PatternNodeId(0));
        assert_eq!(pred.atoms().len(), 3);
        assert!(pred.implies(&Predicate::cmp("R", CmpOp::Ge, 4i64)));
        assert!(pred.implies(&Predicate::cmp("C", CmpOp::Eq, "Music")));
        assert!(p.pred(PatternNodeId(1)).is_any());
    }

    #[test]
    fn parse_bounded() {
        let p = parse_bounded_pattern(
            "node a A\n\
             node b B\n\
             node c C\n\
             edge a b 3\n\
             edge b c *\n\
             edge c a\n",
        )
        .unwrap();
        let q = p.pattern();
        let e = |u, v| q.edge_id(PatternNodeId(u), PatternNodeId(v)).unwrap();
        assert_eq!(p.bound(e(0, 1)), EdgeBound::Hop(3));
        assert_eq!(p.bound(e(1, 2)), EdgeBound::Unbounded);
        assert_eq!(p.bound(e(2, 0)), EdgeBound::Hop(1));
    }

    #[test]
    fn plain_rejects_bounds() {
        let r = parse_pattern("node a A\nnode b B\nedge a b 2\n");
        assert!(matches!(r, Err(ParseError::Invalid(_))));
    }

    #[test]
    fn operators() {
        for (txt, op) in [
            ("x=1", CmpOp::Eq),
            ("x!=1", CmpOp::Ne),
            ("x<1", CmpOp::Lt),
            ("x<=1", CmpOp::Le),
            ("x>1", CmpOp::Gt),
            ("x>=1", CmpOp::Ge),
        ] {
            let p = parse_predicate(txt).unwrap();
            assert_eq!(p, Predicate::cmp("x", op, 1i64), "{txt}");
        }
    }

    #[test]
    fn string_values() {
        let p = parse_predicate("c=Music").unwrap();
        assert_eq!(p, Predicate::cmp("c", CmpOp::Eq, "Music"));
        let q = parse_predicate("c=\"Hello\"").unwrap();
        assert_eq!(q, Predicate::cmp("c", CmpOp::Eq, "Hello"));
    }

    #[test]
    fn errors() {
        assert!(matches!(
            parse_bounded_pattern("blah x\n"),
            Err(ParseError::UnknownRecord(1, _))
        ));
        assert!(matches!(
            parse_bounded_pattern("node a A\nnode a B\n"),
            Err(ParseError::DuplicateNode(2, _))
        ));
        assert!(matches!(
            parse_bounded_pattern("node a A\nedge a z\n"),
            Err(ParseError::UnknownNode(2, _))
        ));
        assert!(matches!(
            parse_bounded_pattern("node a A\nedge a a 0\n"),
            Err(ParseError::Malformed(2, _))
        ));
        assert!(matches!(
            parse_bounded_pattern(""),
            Err(ParseError::Invalid(_))
        ));
    }

    #[test]
    fn roundtrip_plain() {
        let text = "node u0 PM\nnode u1 DBA & exp>=5\nedge u0 u1\n";
        let p = parse_pattern(text).unwrap();
        let out = write_pattern(&p);
        let p2 = parse_pattern(&out).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn roundtrip_bounded() {
        let text = "node u0 A\nnode u1 B & c=\"X Y\"\nedge u0 u1 4\nedge u1 u0 *\n";
        let p = parse_bounded_pattern(text).unwrap();
        let out = write_bounded_pattern(&p);
        let p2 = parse_bounded_pattern(&out).unwrap();
        assert_eq!(p, p2);
    }
}
