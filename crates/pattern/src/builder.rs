//! Fluent construction of (bounded) patterns.

use crate::bounded::{BoundedPattern, EdgeBound};
use crate::pattern::{Pattern, PatternError, PatternNodeId};
use crate::predicate::Predicate;

/// Builds [`Pattern`]s and [`BoundedPattern`]s.
///
/// ```
/// use gpv_pattern::{PatternBuilder, Predicate, CmpOp};
///
/// let mut b = PatternBuilder::new();
/// let pm = b.node_labeled("PM");
/// let dba = b.node(Predicate::label("DBA").and(Predicate::cmp("exp", CmpOp::Ge, 5i64)));
/// b.edge(pm, dba);
/// let q = b.build().unwrap();
/// assert_eq!(q.node_count(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PatternBuilder {
    preds: Vec<Predicate>,
    edges: Vec<(u32, u32)>,
    bounds: Vec<EdgeBound>,
}

impl PatternBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with an arbitrary predicate.
    pub fn node(&mut self, pred: Predicate) -> PatternNodeId {
        let id = PatternNodeId(self.preds.len() as u32);
        self.preds.push(pred);
        id
    }

    /// Adds a node with a single-label condition (the paper's `fv(u)`).
    pub fn node_labeled(&mut self, label: &str) -> PatternNodeId {
        self.node(Predicate::label(label))
    }

    /// Adds a wildcard node (matches any data node).
    pub fn node_any(&mut self) -> PatternNodeId {
        self.node(Predicate::any())
    }

    /// Adds an edge with bound 1 (a plain pattern edge).
    pub fn edge(&mut self, u: PatternNodeId, v: PatternNodeId) {
        self.edges.push((u.0, v.0));
        self.bounds.push(EdgeBound::Hop(1));
    }

    /// Adds an edge with hop bound `k` (`fe(e) = k`).
    pub fn edge_bounded(&mut self, u: PatternNodeId, v: PatternNodeId, k: u32) {
        assert!(k >= 1, "hop bound must be positive");
        self.edges.push((u.0, v.0));
        self.bounds.push(EdgeBound::Hop(k));
    }

    /// Adds an unbounded edge (`fe(e) = *`).
    pub fn edge_unbounded(&mut self, u: PatternNodeId, v: PatternNodeId) {
        self.edges.push((u.0, v.0));
        self.bounds.push(EdgeBound::Unbounded);
    }

    /// Number of nodes so far.
    pub fn node_count(&self) -> usize {
        self.preds.len()
    }

    /// Finishes a plain [`Pattern`]; edge bounds other than 1 are rejected
    /// (use [`build_bounded`](Self::build_bounded)).
    pub fn build(self) -> Result<Pattern, PatternError> {
        assert!(
            self.bounds.iter().all(|&b| b == EdgeBound::Hop(1)),
            "pattern has non-unit bounds; call build_bounded()"
        );
        Pattern::from_parts(self.preds, self.edges)
    }

    /// Finishes a [`BoundedPattern`].
    ///
    /// Note: [`Pattern::from_parts`] deduplicates edges; bounds are carried
    /// through that mapping, and for duplicate edges the *loosest* bound
    /// wins (the duplicates describe the same edge; keeping the loosest is
    /// the only choice consistent with every duplicate individually).
    pub fn build_bounded(self) -> Result<BoundedPattern, PatternError> {
        // Pair each edge with its bound, sort like from_parts does, and fold
        // duplicates by taking the loosest bound.
        let mut pairs: Vec<((u32, u32), EdgeBound)> =
            self.edges.iter().copied().zip(self.bounds).collect();
        pairs.sort_by_key(|&(e, _)| e);
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(pairs.len());
        let mut bounds: Vec<EdgeBound> = Vec::with_capacity(pairs.len());
        for (e, b) in pairs {
            if edges.last() == Some(&e) {
                let last = bounds.last_mut().expect("parallel arrays");
                if !b.within(*last) {
                    *last = b;
                }
            } else {
                edges.push(e);
                bounds.push(b);
            }
        }
        let pattern = Pattern::from_parts(self.preds, edges)?;
        BoundedPattern::new(pattern, bounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;

    #[test]
    fn build_plain() {
        let mut b = PatternBuilder::new();
        let x = b.node_labeled("A");
        let y = b.node_any();
        b.edge(x, y);
        let q = b.build().unwrap();
        assert_eq!(q.node_count(), 2);
        assert!(q.pred(y).is_any());
    }

    #[test]
    #[should_panic(expected = "non-unit bounds")]
    fn build_plain_rejects_bounds() {
        let mut b = PatternBuilder::new();
        let x = b.node_labeled("A");
        let y = b.node_labeled("B");
        b.edge_bounded(x, y, 3);
        let _ = b.build();
    }

    #[test]
    fn build_bounded_keeps_bounds_aligned() {
        let mut b = PatternBuilder::new();
        let x = b.node_labeled("A");
        let y = b.node_labeled("B");
        let z = b.node_labeled("C");
        // Insert out of sorted order to exercise the sort-carry.
        b.edge_bounded(y, z, 5);
        b.edge_bounded(x, y, 2);
        b.edge_unbounded(x, z);
        let q = b.build_bounded().unwrap();
        let exy = q.pattern().edge_id(x, y).unwrap();
        let eyz = q.pattern().edge_id(y, z).unwrap();
        let exz = q.pattern().edge_id(x, z).unwrap();
        assert_eq!(q.bound(exy), EdgeBound::Hop(2));
        assert_eq!(q.bound(eyz), EdgeBound::Hop(5));
        assert_eq!(q.bound(exz), EdgeBound::Unbounded);
    }

    #[test]
    fn duplicate_edges_take_loosest_bound() {
        let mut b = PatternBuilder::new();
        let x = b.node_labeled("A");
        let y = b.node_labeled("B");
        b.edge_bounded(x, y, 2);
        b.edge_bounded(x, y, 4);
        b.edge_bounded(x, y, 3);
        let q = b.build_bounded().unwrap();
        assert_eq!(q.pattern().edge_count(), 1);
        let e = q.pattern().edge_id(x, y).unwrap();
        assert_eq!(q.bound(e), EdgeBound::Hop(4));
    }

    #[test]
    fn duplicate_with_star_wins() {
        let mut b = PatternBuilder::new();
        let x = b.node_labeled("A");
        let y = b.node_labeled("B");
        b.edge_bounded(x, y, 2);
        b.edge_unbounded(x, y);
        let q = b.build_bounded().unwrap();
        let e = q.pattern().edge_id(x, y).unwrap();
        assert_eq!(q.bound(e), EdgeBound::Unbounded);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_rejected() {
        let mut b = PatternBuilder::new();
        let x = b.node_labeled("A");
        let y = b.node_labeled("B");
        b.edge_bounded(x, y, 0);
    }

    #[test]
    fn predicate_nodes() {
        let mut b = PatternBuilder::new();
        let v = b.node(
            Predicate::cmp("category", CmpOp::Eq, "Music").and(Predicate::cmp(
                "visits",
                CmpOp::Ge,
                10_000i64,
            )),
        );
        let q = {
            let w = b.node_any();
            b.edge(v, w);
            b.build().unwrap()
        };
        assert_eq!(q.pred(v).atoms().len(), 2);
    }
}
