//! Bounded pattern queries `Qb = (Vp, Ep, fv, fe)` (paper Section VI).
//!
//! A bounded pattern extends a plain pattern with a function `fe` mapping
//! each edge to a hop bound: a positive integer `k` ("a nonempty path of
//! length ≤ k") or `*` ("any nonempty path"). Plain patterns are the special
//! case `fe(e) = 1` everywhere.
//!
//! For bounded containment analysis (Section VI-B), `Qb` is treated as a
//! *weighted* graph whose edge weights are the bounds; [`BoundedPattern`]
//! therefore also provides weighted shortest distances and reachability.

use crate::pattern::{Pattern, PatternEdgeId, PatternError, PatternNodeId};
use serde::{Deserialize, Serialize};

/// The bound `fe(e)` on a bounded-pattern edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeBound {
    /// A nonempty path of at most `k` hops (`k ≥ 1`).
    Hop(u32),
    /// `*`: a nonempty path of any length.
    Unbounded,
}

impl EdgeBound {
    /// Whether a path of hop-length `d ≥ 1` satisfies this bound.
    #[inline]
    pub fn admits(self, d: u32) -> bool {
        match self {
            EdgeBound::Hop(k) => d <= k,
            EdgeBound::Unbounded => true,
        }
    }

    /// Whether every path admitted by `self` is admitted by `other`
    /// (bound subsumption: `self ≤ other`).
    #[inline]
    pub fn within(self, other: EdgeBound) -> bool {
        match (self, other) {
            (_, EdgeBound::Unbounded) => true,
            (EdgeBound::Unbounded, EdgeBound::Hop(_)) => false,
            (EdgeBound::Hop(a), EdgeBound::Hop(b)) => a <= b,
        }
    }

    /// The numeric bound, `None` for `*`.
    #[inline]
    pub fn hops(self) -> Option<u32> {
        match self {
            EdgeBound::Hop(k) => Some(k),
            EdgeBound::Unbounded => None,
        }
    }
}

impl std::fmt::Display for EdgeBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeBound::Hop(k) => write!(f, "{k}"),
            EdgeBound::Unbounded => write!(f, "*"),
        }
    }
}

/// A weighted distance inside a bounded pattern: finite hop total, infinite
/// (a path exists but uses a `*` edge or no path exists distinguishes via
/// [`BoundedPattern::reaches`]).
pub type WeightedDist = Option<u64>;

/// A bounded pattern query.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BoundedPattern {
    pattern: Pattern,
    bounds: Vec<EdgeBound>,
}

impl BoundedPattern {
    /// Wraps a pattern with per-edge bounds (in [`PatternEdgeId`] order).
    pub fn new(pattern: Pattern, bounds: Vec<EdgeBound>) -> Result<Self, PatternError> {
        assert_eq!(
            bounds.len(),
            pattern.edge_count(),
            "one bound per pattern edge"
        );
        Ok(BoundedPattern { pattern, bounds })
    }

    /// Lifts a plain pattern: every edge gets bound 1 (the paper's
    /// correspondence between `Qs` and `Qb`).
    pub fn from_pattern(pattern: Pattern) -> Self {
        let bounds = vec![EdgeBound::Hop(1); pattern.edge_count()];
        BoundedPattern { pattern, bounds }
    }

    /// Lifts a plain pattern with a uniform bound `k` on every edge, as used
    /// throughout the paper's experiments (e.g. `fe(e) = 2` on Amazon).
    pub fn with_uniform_bound(pattern: Pattern, k: u32) -> Self {
        let bounds = vec![EdgeBound::Hop(k); pattern.edge_count()];
        BoundedPattern { pattern, bounds }
    }

    /// The underlying pattern `(Vp, Ep, fv)`.
    #[inline]
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// `fe(e)`.
    #[inline]
    pub fn bound(&self, e: PatternEdgeId) -> EdgeBound {
        self.bounds[e.index()]
    }

    /// All bounds in edge-id order.
    #[inline]
    pub fn bounds(&self) -> &[EdgeBound] {
        &self.bounds
    }

    /// The paper's `|Qb|` (nodes + edges).
    #[inline]
    pub fn size(&self) -> usize {
        self.pattern.size()
    }

    /// Whether every bound is `Hop(1)`, i.e. the query is a plain pattern.
    pub fn is_plain(&self) -> bool {
        self.bounds.iter().all(|&b| b == EdgeBound::Hop(1))
    }

    /// Weighted shortest distance from `u` to `v` over *bounded* edges only
    /// (edge weight = its hop bound), for nonempty paths. `*` edges are
    /// excluded (they contribute unbounded weight). Used by bounded view
    /// matches: "treat Qb as a weighted data graph in which each edge e has
    /// weight fe(e)".
    ///
    /// `u == v` requires a cycle. Dijkstra over the (small) pattern.
    pub fn weighted_distance(&self, u: PatternNodeId, v: PatternNodeId) -> WeightedDist {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = self.pattern.node_count();
        let mut dist: Vec<u64> = vec![u64::MAX; n];
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        // Nonempty-path semantics: relax u's out-edges without finalizing u.
        for &(w, e) in self.pattern.out_edges(u) {
            if let EdgeBound::Hop(k) = self.bounds[e.index()] {
                let d = k as u64;
                if d < dist[w.index()] {
                    dist[w.index()] = d;
                    heap.push(Reverse((d, w.0)));
                }
            }
        }
        while let Some(Reverse((d, x))) = heap.pop() {
            if x == v.0 {
                return Some(d);
            }
            if d > dist[x as usize] {
                continue;
            }
            for &(w, e) in self.pattern.out_edges(PatternNodeId(x)) {
                if let EdgeBound::Hop(k) = self.bounds[e.index()] {
                    let nd = d + k as u64;
                    if nd < dist[w.index()] {
                        dist[w.index()] = nd;
                        heap.push(Reverse((nd, w.0)));
                    }
                }
            }
        }
        if dist[v.index()] != u64::MAX {
            Some(dist[v.index()])
        } else {
            None
        }
    }

    /// Whether `v` is reachable from `u` by a nonempty path over *all* edges
    /// (including `*` edges).
    pub fn reaches(&self, u: PatternNodeId, v: PatternNodeId) -> bool {
        let n = self.pattern.node_count();
        let mut seen = vec![false; n];
        let mut stack: Vec<PatternNodeId> =
            self.pattern.out_edges(u).iter().map(|&(w, _)| w).collect();
        while let Some(x) = stack.pop() {
            if x == v {
                return true;
            }
            if std::mem::replace(&mut seen[x.index()], true) {
                continue;
            }
            stack.extend(self.pattern.out_edges(x).iter().map(|&(w, _)| w));
        }
        false
    }
}

impl From<Pattern> for BoundedPattern {
    fn from(p: Pattern) -> Self {
        BoundedPattern::from_pattern(p)
    }
}

impl std::fmt::Display for BoundedPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "bounded pattern ({} nodes, {} edges)",
            self.pattern.node_count(),
            self.pattern.edge_count()
        )?;
        for u in self.pattern.nodes() {
            writeln!(f, "  {u}: {}", self.pattern.pred(u))?;
        }
        for (i, &(u, v)) in self.pattern.edges().iter().enumerate() {
            writeln!(f, "  {u} -[{}]-> {v}", self.bounds[i])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PatternBuilder;

    fn chain_with_bounds() -> BoundedPattern {
        // A -[2]-> B -[3]-> C, plus A -[7]-> C and C -[*]-> A.
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let c = b.node_labeled("B");
        let d = b.node_labeled("C");
        b.edge_bounded(a, c, 2);
        b.edge_bounded(c, d, 3);
        b.edge_bounded(a, d, 7);
        b.edge_unbounded(d, a);
        b.build_bounded().unwrap()
    }

    #[test]
    fn bound_admits() {
        assert!(EdgeBound::Hop(3).admits(1));
        assert!(EdgeBound::Hop(3).admits(3));
        assert!(!EdgeBound::Hop(3).admits(4));
        assert!(EdgeBound::Unbounded.admits(1_000_000));
    }

    #[test]
    fn bound_within() {
        assert!(EdgeBound::Hop(2).within(EdgeBound::Hop(3)));
        assert!(EdgeBound::Hop(3).within(EdgeBound::Hop(3)));
        assert!(!EdgeBound::Hop(4).within(EdgeBound::Hop(3)));
        assert!(EdgeBound::Hop(9).within(EdgeBound::Unbounded));
        assert!(EdgeBound::Unbounded.within(EdgeBound::Unbounded));
        assert!(!EdgeBound::Unbounded.within(EdgeBound::Hop(100)));
    }

    #[test]
    fn weighted_distance_prefers_shorter_sum() {
        let q = chain_with_bounds();
        let (a, c) = (PatternNodeId(0), PatternNodeId(2));
        // A->B->C sums to 5, beating the direct 7-weight edge.
        assert_eq!(q.weighted_distance(a, c), Some(5));
    }

    #[test]
    fn weighted_distance_excludes_star_edges() {
        let q = chain_with_bounds();
        let (c, a) = (PatternNodeId(2), PatternNodeId(0));
        // Only route C -> A is the * edge, which carries no finite weight.
        assert_eq!(q.weighted_distance(c, a), None);
        assert!(q.reaches(c, a));
    }

    #[test]
    fn nonempty_path_semantics() {
        let q = chain_with_bounds();
        let a = PatternNodeId(0);
        // A reaches itself via A->...->C->(*)->A, so reaches() is true, but
        // no all-bounded cycle exists.
        assert!(q.reaches(a, a));
        assert_eq!(q.weighted_distance(a, a), None);
    }

    #[test]
    fn bounded_cycle_self_distance() {
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let c = b.node_labeled("B");
        b.edge_bounded(a, c, 2);
        b.edge_bounded(c, a, 3);
        let q = b.build_bounded().unwrap();
        assert_eq!(q.weighted_distance(a, a), Some(5));
    }

    #[test]
    fn from_pattern_all_ones() {
        let q = chain_with_bounds();
        let plain = BoundedPattern::from_pattern(q.pattern().clone());
        assert!(plain.is_plain());
        assert!(!q.is_plain());
    }

    #[test]
    fn uniform_bound() {
        let q = chain_with_bounds();
        let u = BoundedPattern::with_uniform_bound(q.pattern().clone(), 4);
        assert!(u.bounds().iter().all(|&b| b == EdgeBound::Hop(4)));
    }

    #[test]
    fn display_shows_bounds() {
        let s = format!("{}", chain_with_bounds());
        assert!(s.contains("-[2]->"));
        assert!(s.contains("-[*]->"));
    }

    #[test]
    fn unreachable_distance() {
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let c = b.node_labeled("B");
        b.edge_bounded(a, c, 1);
        let q = b.build_bounded().unwrap();
        assert_eq!(q.weighted_distance(c, a), None);
        assert!(!q.reaches(c, a));
    }
}
