//! # gpv-pattern — graph pattern queries
//!
//! Pattern queries `Qs = (Vp, Ep, fv)` and bounded pattern queries
//! `Qb = (Vp, Ep, fv, fe)` from *Answering Graph Pattern Queries Using Views*
//! (Fan, Wang, Wu — ICDE 2014), Sections II-A and VI.
//!
//! * [`Predicate`] — node search conditions: single labels (`fv(u)`) or
//!   Boolean conjunctions of attribute comparisons (paper Fig. 7), with
//!   satisfaction, implication and equivalence;
//! * [`Pattern`] — the directed pattern graph, with SCC condensation and the
//!   paper's rank function for the bottom-up `MatchJoin` optimization;
//! * [`BoundedPattern`] / [`EdgeBound`] — hop bounds `fe(e) ∈ {k, *}` plus
//!   the weighted-distance view of `Qb` used by bounded containment;
//! * [`PatternBuilder`] — fluent construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounded;
pub mod builder;
pub mod parse;
pub mod pattern;
pub mod predicate;

pub use bounded::{BoundedPattern, EdgeBound};
pub use builder::PatternBuilder;
pub use parse::{
    parse_bounded_pattern, parse_pattern, parse_predicate, write_bounded_pattern, write_pattern,
};
pub use pattern::{Pattern, PatternEdgeId, PatternError, PatternNodeId};
pub use predicate::{Atom, CmpOp, Predicate, ResolvedPredicate};
