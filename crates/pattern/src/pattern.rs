//! Graph pattern queries `Qs = (Vp, Ep, fv)` (paper Section II-A).

use crate::predicate::Predicate;
use gpv_graph::scc::{tarjan_scc, Condensation};
use serde::{Deserialize, Serialize};

/// A pattern-node identifier: dense index in `0..node_count`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PatternNodeId(pub u32);

impl PatternNodeId {
    /// The index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PatternNodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// A pattern-edge identifier: dense index into [`Pattern::edges`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PatternEdgeId(pub u32);

impl PatternEdgeId {
    /// The index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Errors from [`PatternBuilder::build`](crate::PatternBuilder::build).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PatternError {
    /// The pattern has no nodes.
    Empty,
    /// An edge endpoint references a node id out of range.
    BadEdge(u32, u32),
}

impl std::fmt::Display for PatternError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatternError::Empty => write!(f, "pattern has no nodes"),
            PatternError::BadEdge(u, v) => write!(f, "edge ({u},{v}) references missing node"),
        }
    }
}

impl std::error::Error for PatternError {}

/// A graph pattern query `Qs = (Vp, Ep, fv)`: a directed graph whose nodes
/// carry search-condition [`Predicate`]s.
///
/// Patterns are small (the paper evaluates up to 10 nodes / 20 edges), so the
/// representation favours simplicity: adjacency is `Vec<Vec<_>>` rather than
/// CSR. Edges are deduplicated and stored in sorted order; self-loops are
/// allowed (a node collaborating with itself is a 1-cycle).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Pattern {
    preds: Vec<Predicate>,
    edges: Vec<(PatternNodeId, PatternNodeId)>,
    out_adj: Vec<Vec<(PatternNodeId, PatternEdgeId)>>,
    in_adj: Vec<Vec<(PatternNodeId, PatternEdgeId)>>,
}

impl Pattern {
    /// Builds a pattern from parallel arrays. Prefer
    /// [`PatternBuilder`](crate::PatternBuilder).
    pub fn from_parts(
        preds: Vec<Predicate>,
        mut edge_list: Vec<(u32, u32)>,
    ) -> Result<Self, PatternError> {
        if preds.is_empty() {
            return Err(PatternError::Empty);
        }
        let n = preds.len() as u32;
        edge_list.sort_unstable();
        edge_list.dedup();
        for &(u, v) in &edge_list {
            if u >= n || v >= n {
                return Err(PatternError::BadEdge(u, v));
            }
        }
        let edges: Vec<(PatternNodeId, PatternNodeId)> = edge_list
            .iter()
            .map(|&(u, v)| (PatternNodeId(u), PatternNodeId(v)))
            .collect();
        let mut out_adj = vec![Vec::new(); preds.len()];
        let mut in_adj = vec![Vec::new(); preds.len()];
        for (i, &(u, v)) in edges.iter().enumerate() {
            out_adj[u.index()].push((v, PatternEdgeId(i as u32)));
            in_adj[v.index()].push((u, PatternEdgeId(i as u32)));
        }
        Ok(Pattern {
            preds,
            edges,
            out_adj,
            in_adj,
        })
    }

    /// Number of pattern nodes `|Vp|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.preds.len()
    }

    /// Number of pattern edges `|Ep|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The paper's `|Qs|`: nodes plus edges.
    #[inline]
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// Iterates node ids.
    pub fn nodes(&self) -> impl Iterator<Item = PatternNodeId> + '_ {
        (0..self.node_count() as u32).map(PatternNodeId)
    }

    /// All edges in sorted order, indexable by [`PatternEdgeId`].
    #[inline]
    pub fn edges(&self) -> &[(PatternNodeId, PatternNodeId)] {
        &self.edges
    }

    /// The endpoints of edge `e`.
    #[inline]
    pub fn edge(&self, e: PatternEdgeId) -> (PatternNodeId, PatternNodeId) {
        self.edges[e.index()]
    }

    /// Out-edges of `u` as `(target, edge id)`.
    #[inline]
    pub fn out_edges(&self, u: PatternNodeId) -> &[(PatternNodeId, PatternEdgeId)] {
        &self.out_adj[u.index()]
    }

    /// In-edges of `u` as `(source, edge id)`.
    #[inline]
    pub fn in_edges(&self, u: PatternNodeId) -> &[(PatternNodeId, PatternEdgeId)] {
        &self.in_adj[u.index()]
    }

    /// The search condition of node `u`.
    #[inline]
    pub fn pred(&self, u: PatternNodeId) -> &Predicate {
        &self.preds[u.index()]
    }

    /// All predicates, indexable by node id.
    #[inline]
    pub fn preds(&self) -> &[Predicate] {
        &self.preds
    }

    /// Looks up the edge id of `(u, v)`, if present.
    pub fn edge_id(&self, u: PatternNodeId, v: PatternNodeId) -> Option<PatternEdgeId> {
        self.edges
            .binary_search(&(u, v))
            .ok()
            .map(|i| PatternEdgeId(i as u32))
    }

    /// Whether `u` has a self-loop.
    pub fn has_self_loop(&self, u: PatternNodeId) -> bool {
        self.edge_id(u, u).is_some()
    }

    /// Whether the pattern is acyclic (a DAG pattern in the paper's
    /// terminology; self-loops count as cycles).
    pub fn is_dag(&self) -> bool {
        let cond = self.condensation();
        cond.scc.comp_count == self.node_count() && self.nodes().all(|u| !self.has_self_loop(u))
    }

    /// Whether the pattern is weakly connected (the paper assumes
    /// connectivity w.l.o.g.; the algorithms here do not require it).
    pub fn is_connected(&self) -> bool {
        if self.node_count() == 0 {
            return true;
        }
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![PatternNodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            let next = self
                .out_edges(u)
                .iter()
                .map(|&(v, _)| v)
                .chain(self.in_edges(u).iter().map(|&(v, _)| v));
            for v in next {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.node_count()
    }

    /// SCC condensation plus the paper's rank function (Section III), used by
    /// the bottom-up `MatchJoin` strategy.
    pub fn condensation(&self) -> Condensation {
        let n = self.node_count();
        let succ = |u: u32| {
            self.out_adj[u as usize]
                .iter()
                .map(|&(v, _)| v.0)
                .collect::<Vec<_>>()
        };
        let scc = tarjan_scc(n, succ);
        Condensation::build(n, succ, scc)
    }

    /// Per-edge ranks `r(e)` in edge-id order: `r((u', u)) = r(u)`.
    pub fn edge_ranks(&self) -> Vec<u32> {
        let cond = self.condensation();
        self.edges
            .iter()
            .map(|&(_, dst)| cond.rank(dst.0))
            .collect()
    }
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "pattern ({} nodes, {} edges)",
            self.node_count(),
            self.edge_count()
        )?;
        for u in self.nodes() {
            writeln!(f, "  {u}: {}", self.pred(u))?;
        }
        for &(u, v) in &self.edges {
            writeln!(f, "  {u} -> {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PatternBuilder;

    /// The paper's Fig. 1(c) pattern: PM -> DBA1 -> PRG1 -> DBA2 -> PRG2 with
    /// PM -> PRG2 and the DBA/PRG collaboration cycle.
    pub(crate) fn fig1c() -> Pattern {
        let mut b = PatternBuilder::new();
        let pm = b.node_labeled("PM");
        let dba1 = b.node_labeled("DBA");
        let prg1 = b.node_labeled("PRG");
        let dba2 = b.node_labeled("DBA");
        let prg2 = b.node_labeled("PRG");
        b.edge(pm, dba1);
        b.edge(pm, prg2);
        b.edge(dba1, prg1);
        b.edge(prg1, dba2);
        b.edge(dba2, prg2);
        b.edge(prg2, dba1);
        b.build().unwrap()
    }

    #[test]
    fn sizes() {
        let q = fig1c();
        assert_eq!(q.node_count(), 5);
        assert_eq!(q.edge_count(), 6);
        assert_eq!(q.size(), 11);
    }

    #[test]
    fn adjacency() {
        let q = fig1c();
        let pm = PatternNodeId(0);
        assert_eq!(q.out_edges(pm).len(), 2);
        assert_eq!(q.in_edges(pm).len(), 0);
        let dba1 = PatternNodeId(1);
        assert_eq!(q.in_edges(dba1).len(), 2); // from PM and PRG2
    }

    #[test]
    fn edge_lookup() {
        let q = fig1c();
        let e = q.edge_id(PatternNodeId(0), PatternNodeId(1)).unwrap();
        assert_eq!(q.edge(e), (PatternNodeId(0), PatternNodeId(1)));
        assert_eq!(q.edge_id(PatternNodeId(1), PatternNodeId(0)), None);
    }

    #[test]
    fn cyclic_not_dag() {
        let q = fig1c();
        assert!(!q.is_dag());
        assert!(q.is_connected());
    }

    #[test]
    fn dag_pattern() {
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let c = b.node_labeled("B");
        b.edge(a, c);
        let q = b.build().unwrap();
        assert!(q.is_dag());
    }

    #[test]
    fn self_loop_is_cycle() {
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        b.edge(a, a);
        let q = b.build().unwrap();
        assert!(q.has_self_loop(a));
        assert!(!q.is_dag());
    }

    #[test]
    fn disconnected_detected() {
        let mut b = PatternBuilder::new();
        b.node_labeled("A");
        b.node_labeled("B");
        let q = b.build().unwrap();
        assert!(!q.is_connected());
    }

    #[test]
    fn ranks_follow_paper() {
        // Fig. 1(c): the {DBA1, PRG1, DBA2, PRG2} cycle is one SCC with no
        // outgoing condensation edges (rank 0); PM points into it (rank 1).
        let q = fig1c();
        let cond = q.condensation();
        assert_eq!(cond.scc.comp_count, 2);
        for u in 1..5 {
            assert_eq!(cond.rank(u), 0, "cycle member u{u}");
        }
        assert_eq!(cond.rank(0), 1, "PM");
        let ranks = q.edge_ranks();
        // Edges from PM target rank-0 nodes => rank 0; every edge here
        // targets a cycle member, so all ranks are 0.
        assert!(ranks.iter().all(|&r| r == 0));
    }

    #[test]
    fn dedup_edges() {
        let p = Pattern::from_parts(
            vec![Predicate::label("A"), Predicate::label("B")],
            vec![(0, 1), (0, 1)],
        )
        .unwrap();
        assert_eq!(p.edge_count(), 1);
    }

    #[test]
    fn errors() {
        assert_eq!(
            Pattern::from_parts(vec![], vec![]).unwrap_err(),
            PatternError::Empty
        );
        assert_eq!(
            Pattern::from_parts(vec![Predicate::any()], vec![(0, 3)]).unwrap_err(),
            PatternError::BadEdge(0, 3)
        );
    }

    #[test]
    fn display_contains_structure() {
        let s = format!("{}", fig1c());
        assert!(s.contains("u0 -> u1"));
        assert!(s.contains("PM"));
    }
}
