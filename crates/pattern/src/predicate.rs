//! Search-condition predicates on pattern nodes.
//!
//! The paper's base model attaches a single label `fv(u)` to each pattern
//! node, and remarks that `fv` "can be readily extended to specify search
//! conditions in terms of Boolean predicates" — its experiments (Fig. 7) use
//! conditions like `C = "Music" && V >= 10000`. We implement predicates as
//! conjunctions of atomic comparisons over labels and typed attributes.
//!
//! Three relations matter:
//!
//! * **satisfaction** — does data-graph node `v` satisfy the predicate
//!   (`fv(u) ∈ L(v)` generalized)? Used by `Match`/`BMatch` and view
//!   materialization.
//! * **implication** — `p ⇒ q`: every node satisfying `p` satisfies `q`.
//!   Syntactic, sound, and complete for single-attribute interval reasoning
//!   (it does not combine *multiple* atoms of `p` to derive one atom of `q`,
//!   e.g. `x ≥ 5 ∧ x ≤ 5 ⇒ x = 5` is not derived; such predicates do not
//!   arise from the builders).
//! * **equivalence** — mutual implication. View matches use equivalence for
//!   node conditions (see DESIGN.md §S3): with the paper's single-label
//!   model, `fv(x) ∈ L(u)` where `L(u) = {fv(u)}` *is* label equality, and
//!   anything weaker would make `MatchJoin` unsound because the join never
//!   re-checks node conditions against `G`.

use gpv_graph::{DataGraph, NodeId, Value};
use serde::{Deserialize, Serialize};

/// Comparison operator of an atomic predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates `lhs op rhs` over integers.
    #[inline]
    pub fn eval_int(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// Display form (`=`, `!=`, ...).
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// An atomic condition.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Atom {
    /// `label ∈ L(v)` — the paper's base condition `fv(u)`.
    Label(String),
    /// `v.attr op value` — attribute comparison; absent attributes fail.
    Cmp {
        /// Attribute name (e.g. `"visits"`).
        attr: String,
        /// Comparison operator.
        op: CmpOp,
        /// Literal to compare against.
        value: Value,
    },
}

impl Atom {
    /// Sound implication test between single atoms: does every node
    /// satisfying `self` satisfy `other`?
    pub fn implies(&self, other: &Atom) -> bool {
        match (self, other) {
            (Atom::Label(a), Atom::Label(b)) => a == b,
            (
                Atom::Cmp {
                    attr: a1,
                    op: o1,
                    value: v1,
                },
                Atom::Cmp {
                    attr: a2,
                    op: o2,
                    value: v2,
                },
            ) if a1 == a2 => match (v1, v2) {
                (Value::Int(x), Value::Int(y)) => int_implies(*o1, *x, *o2, *y),
                (Value::Str(x), Value::Str(y)) => str_implies(*o1, x, *o2, y),
                // Mixed-type comparisons never align.
                _ => false,
            },
            _ => false,
        }
    }
}

/// Does `attr o1 x` imply `attr o2 y` over integers?
fn int_implies(o1: CmpOp, x: i64, o2: CmpOp, y: i64) -> bool {
    use CmpOp::*;
    match o1 {
        // attr = x: the witness set is {x}; check x against the target atom.
        Eq => o2.eval_int(x, y),
        // attr != x implies only attr != y with y = x.
        Ne => o2 == Ne && x == y,
        // attr >= x: witness set [x, ∞).
        Ge => match o2 {
            Ge => x >= y,
            Gt => x > y,
            Ne => y < x,
            _ => false,
        },
        // attr > x: witness set [x+1, ∞) — use saturating to dodge overflow.
        Gt => match o2 {
            Ge => x.saturating_add(1) >= y,
            Gt => x >= y,
            Ne => y <= x,
            _ => false,
        },
        // attr <= x: witness set (-∞, x].
        Le => match o2 {
            Le => x <= y,
            Lt => x < y,
            Ne => y > x,
            _ => false,
        },
        // attr < x: witness set (-∞, x-1].
        Lt => match o2 {
            Le => x.saturating_sub(1) <= y,
            Lt => x <= y,
            Ne => y >= x,
            _ => false,
        },
    }
}

/// Does `attr o1 x` imply `attr o2 y` over strings? Only equality logic.
fn str_implies(o1: CmpOp, x: &str, o2: CmpOp, y: &str) -> bool {
    use CmpOp::*;
    match (o1, o2) {
        (Eq, Eq) => x == y,
        (Eq, Ne) => x != y,
        (Ne, Ne) => x == y,
        _ => false,
    }
}

/// A conjunction of [`Atom`]s. An empty predicate is `true` (matches every
/// node); the paper's plain pattern node with label `l` is
/// `Predicate::label(l)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Predicate {
    atoms: Vec<Atom>,
}

impl Predicate {
    /// The always-true predicate.
    pub fn any() -> Self {
        Predicate::default()
    }

    /// Single-label predicate — the paper's `fv(u)`.
    pub fn label(l: impl Into<String>) -> Self {
        Predicate {
            atoms: vec![Atom::Label(l.into())],
        }
    }

    /// Single-comparison predicate.
    pub fn cmp(attr: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Self {
        Predicate {
            atoms: vec![Atom::Cmp {
                attr: attr.into(),
                op,
                value: value.into(),
            }],
        }
    }

    /// Conjunction: `self ∧ other`.
    pub fn and(mut self, other: Predicate) -> Self {
        self.atoms.extend(other.atoms);
        self.normalize();
        self
    }

    /// Adds an atom in place.
    pub fn push(&mut self, atom: Atom) {
        self.atoms.push(atom);
        self.normalize();
    }

    /// The atoms of the conjunction.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Whether this is the trivial (always-true) predicate.
    pub fn is_any(&self) -> bool {
        self.atoms.is_empty()
    }

    fn normalize(&mut self) {
        // Deduplicate syntactically identical atoms; order is irrelevant to
        // semantics, so sort by debug form for a canonical layout.
        self.atoms
            .sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        self.atoms.dedup();
    }

    /// Sound implication: `self ⇒ other` if every atom of `other` is implied
    /// by some atom of `self` (atom-wise; see module docs for completeness
    /// caveats).
    pub fn implies(&self, other: &Predicate) -> bool {
        other
            .atoms
            .iter()
            .all(|b| self.atoms.iter().any(|a| a.implies(b)))
    }

    /// Semantic equivalence via mutual implication.
    pub fn equivalent(&self, other: &Predicate) -> bool {
        self.implies(other) && other.implies(self)
    }

    /// Resolves the predicate against a graph's interners for fast repeated
    /// evaluation (hot path of candidate-set initialization).
    pub fn resolve(&self, g: &DataGraph) -> ResolvedPredicate {
        let atoms = self
            .atoms
            .iter()
            .map(|a| match a {
                Atom::Label(l) => match g.lookup_label(l) {
                    Some(id) => ResolvedAtom::Label(id),
                    None => ResolvedAtom::Never,
                },
                Atom::Cmp { attr, op, value } => {
                    let Some(aid) = g.lookup_attr(attr) else {
                        return ResolvedAtom::Never;
                    };
                    match value {
                        Value::Int(i) => ResolvedAtom::CmpInt(aid, *op, *i),
                        Value::Str(s) => match (g.lookup_value(s), op) {
                            (Some(sym), CmpOp::Eq) => ResolvedAtom::StrEq(aid, sym),
                            (Some(sym), CmpOp::Ne) => ResolvedAtom::StrNe(aid, sym),
                            // The literal never occurs in the graph:
                            // = can never hold; != holds whenever the
                            // attribute is a present string.
                            (None, CmpOp::Eq) => ResolvedAtom::Never,
                            (None, CmpOp::Ne) => ResolvedAtom::StrPresent(aid),
                            // Ordered comparisons on strings are unsupported
                            // and never hold.
                            _ => ResolvedAtom::Never,
                        },
                    }
                }
            })
            .collect();
        ResolvedPredicate { atoms }
    }

    /// One-off satisfaction check (resolves first; prefer
    /// [`resolve`](Self::resolve) + [`ResolvedPredicate::satisfied_by`] in
    /// loops).
    pub fn satisfied_by(&self, g: &DataGraph, v: NodeId) -> bool {
        self.resolve(g).satisfied_by(g, v)
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "true");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " && ")?;
            }
            match a {
                Atom::Label(l) => write!(f, "{l}")?,
                Atom::Cmp { attr, op, value } => match value {
                    Value::Int(x) => write!(f, "{attr}{}{x}", op.symbol())?,
                    Value::Str(s) => write!(f, "{attr}{}\"{s}\"", op.symbol())?,
                },
            }
        }
        Ok(())
    }
}

/// A predicate pre-resolved against one graph's interners.
#[derive(Clone, Debug)]
pub struct ResolvedPredicate {
    atoms: Vec<ResolvedAtom>,
}

#[derive(Clone, Copy, Debug)]
enum ResolvedAtom {
    Label(gpv_graph::LabelId),
    CmpInt(gpv_graph::AttrId, CmpOp, i64),
    StrEq(gpv_graph::AttrId, gpv_graph::Sym),
    StrNe(gpv_graph::AttrId, gpv_graph::Sym),
    /// `attr != <literal not in graph>`: true iff the attribute exists and is
    /// a string.
    StrPresent(gpv_graph::AttrId),
    /// Unsatisfiable in this graph.
    Never,
}

impl ResolvedPredicate {
    /// Whether node `v` of the resolution graph satisfies all atoms.
    #[inline]
    pub fn satisfied_by(&self, g: &DataGraph, v: NodeId) -> bool {
        self.atoms.iter().all(|a| match *a {
            ResolvedAtom::Label(l) => g.has_label(v, l),
            ResolvedAtom::CmpInt(aid, op, rhs) => {
                g.attr_int(v, aid).is_some_and(|x| op.eval_int(x, rhs))
            }
            ResolvedAtom::StrEq(aid, sym) => g.attr_str_eq(v, aid, sym) == Some(true),
            ResolvedAtom::StrNe(aid, sym) => g.attr_str_eq(v, aid, sym) == Some(false),
            ResolvedAtom::StrPresent(aid) => {
                g.attr_str_eq(v, aid, gpv_graph::Sym(u32::MAX)).is_some()
            }
            ResolvedAtom::Never => false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpv_graph::GraphBuilder;

    #[test]
    fn label_satisfaction() {
        let mut b = GraphBuilder::new();
        let v = b.add_node(["PM"]);
        let w = b.add_node(["DBA"]);
        let g = b.build();
        let p = Predicate::label("PM");
        assert!(p.satisfied_by(&g, v));
        assert!(!p.satisfied_by(&g, w));
    }

    #[test]
    fn unknown_label_never_matches() {
        let mut b = GraphBuilder::new();
        let v = b.add_node(["PM"]);
        let g = b.build();
        assert!(!Predicate::label("CEO").satisfied_by(&g, v));
    }

    #[test]
    fn int_cmp_satisfaction() {
        let mut b = GraphBuilder::new();
        let v = b.add_node(["video"]);
        b.set_attr(v, "visits", Value::int(12_000));
        let g = b.build();
        assert!(Predicate::cmp("visits", CmpOp::Ge, 10_000i64).satisfied_by(&g, v));
        assert!(!Predicate::cmp("visits", CmpOp::Lt, 10_000i64).satisfied_by(&g, v));
        // Missing attribute fails.
        assert!(!Predicate::cmp("rate", CmpOp::Ge, 4i64).satisfied_by(&g, v));
    }

    #[test]
    fn str_cmp_satisfaction() {
        let mut b = GraphBuilder::new();
        let v = b.add_node(["video"]);
        b.set_attr(v, "category", Value::str("Music"));
        let g = b.build();
        assert!(Predicate::cmp("category", CmpOp::Eq, "Music").satisfied_by(&g, v));
        assert!(!Predicate::cmp("category", CmpOp::Eq, "Sports").satisfied_by(&g, v));
        assert!(Predicate::cmp("category", CmpOp::Ne, "Sports").satisfied_by(&g, v));
        assert!(!Predicate::cmp("category", CmpOp::Ne, "Music").satisfied_by(&g, v));
        // Ne against a literal absent from the whole graph: attribute present.
        assert!(Predicate::cmp("category", CmpOp::Ne, "Nonexistent").satisfied_by(&g, v));
    }

    #[test]
    fn conjunction() {
        let mut b = GraphBuilder::new();
        let v = b.add_node(["video"]);
        b.set_attr(v, "category", Value::str("Music"));
        b.set_attr(v, "visits", Value::int(12_000));
        let g = b.build();
        let p = Predicate::cmp("category", CmpOp::Eq, "Music").and(Predicate::cmp(
            "visits",
            CmpOp::Ge,
            10_000i64,
        ));
        assert!(p.satisfied_by(&g, v));
        let q = p
            .clone()
            .and(Predicate::cmp("visits", CmpOp::Ge, 20_000i64));
        assert!(!q.satisfied_by(&g, v));
    }

    #[test]
    fn implication_labels() {
        let pm = Predicate::label("PM");
        assert!(pm.implies(&pm));
        assert!(!pm.implies(&Predicate::label("DBA")));
        assert!(pm.implies(&Predicate::any()));
        assert!(!Predicate::any().implies(&pm));
    }

    #[test]
    fn implication_int_intervals() {
        let ge20 = Predicate::cmp("v", CmpOp::Ge, 20i64);
        let ge10 = Predicate::cmp("v", CmpOp::Ge, 10i64);
        let gt9 = Predicate::cmp("v", CmpOp::Gt, 9i64);
        let gt10 = Predicate::cmp("v", CmpOp::Gt, 10i64);
        let le5 = Predicate::cmp("v", CmpOp::Le, 5i64);
        let lt6 = Predicate::cmp("v", CmpOp::Lt, 6i64);
        let eq7 = Predicate::cmp("v", CmpOp::Eq, 7i64);
        let ne0 = Predicate::cmp("v", CmpOp::Ne, 0i64);

        assert!(ge20.implies(&ge10));
        assert!(!ge10.implies(&ge20));
        assert!(ge10.implies(&gt9));
        assert!(!ge10.implies(&gt10));
        assert!(gt9.implies(&ge10), "x > 9 over ints is x >= 10");
        assert!(lt6.implies(&le5), "x < 6 over ints is x <= 5");
        assert!(le5.implies(&lt6));
        assert!(!eq7.implies(&ge10));
        assert!(eq7.implies(&Predicate::cmp("v", CmpOp::Ge, 7i64)));
        assert!(eq7.implies(&Predicate::cmp("v", CmpOp::Le, 7i64)));
        assert!(eq7.implies(&ne0));
        assert!(ge10.implies(&ne0));
        assert!(!ge10.implies(&Predicate::cmp("v", CmpOp::Ne, 15i64)));
        // Different attributes never imply.
        assert!(!ge20.implies(&Predicate::cmp("w", CmpOp::Ge, 10i64)));
    }

    #[test]
    fn implication_strings() {
        let music = Predicate::cmp("c", CmpOp::Eq, "Music");
        let not_sports = Predicate::cmp("c", CmpOp::Ne, "Sports");
        assert!(music.implies(&music));
        assert!(music.implies(&not_sports));
        assert!(!music.implies(&Predicate::cmp("c", CmpOp::Eq, "Sports")));
        assert!(not_sports.implies(&not_sports));
        assert!(!not_sports.implies(&music));
    }

    #[test]
    fn equivalence() {
        let a = Predicate::label("PM").and(Predicate::cmp("v", CmpOp::Ge, 10i64));
        let b = Predicate::cmp("v", CmpOp::Ge, 10i64).and(Predicate::label("PM"));
        assert!(a.equivalent(&b), "order does not matter");
        // Gt 9 and Ge 10 are semantically equal over ints.
        let c = Predicate::label("PM").and(Predicate::cmp("v", CmpOp::Gt, 9i64));
        assert!(a.equivalent(&c));
        assert!(!a.equivalent(&Predicate::label("PM")));
    }

    #[test]
    fn implication_is_preorder() {
        let preds = [
            Predicate::any(),
            Predicate::label("A"),
            Predicate::label("A").and(Predicate::cmp("x", CmpOp::Ge, 5i64)),
            Predicate::cmp("x", CmpOp::Ge, 5i64),
            Predicate::cmp("x", CmpOp::Ge, 10i64),
        ];
        // Reflexive.
        for p in &preds {
            assert!(p.implies(p));
        }
        // Transitive on this sample.
        for a in &preds {
            for b in &preds {
                for c in &preds {
                    if a.implies(b) && b.implies(c) {
                        assert!(a.implies(c), "{a} => {b} => {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn display() {
        let p = Predicate::label("PM").and(Predicate::cmp("age", CmpOp::Le, 100i64));
        let s = format!("{p}");
        assert!(s.contains("PM") && s.contains("age<=100"), "{s}");
        assert_eq!(format!("{}", Predicate::any()), "true");
        let q = Predicate::cmp("c", CmpOp::Eq, "Music");
        assert_eq!(format!("{q}"), "c=\"Music\"");
    }

    #[test]
    fn dedup_atoms() {
        let p = Predicate::label("A").and(Predicate::label("A"));
        assert_eq!(p.atoms().len(), 1);
    }
}
