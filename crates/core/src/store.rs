//! Sharded, concurrently-writable view storage.
//!
//! [`crate::storage::ViewCache`] is a monolithic snapshot: one blob of view
//! definitions plus extensions, cloned and replaced wholesale. That is fine
//! for a single-threaded CLI run but not for a serving process where many
//! threads read views while others register or retire them. [`ViewStore`]
//! is the concurrent representation: views live in `N` independent shards,
//! each behind its own [`RwLock`], chosen by a hash of the view's stable id.
//!
//! Concurrency contract (MVCC):
//!
//! * **Writes** (insert / remove / [`ViewStore::apply_delta`]) serialize on
//!   one writer mutex, mutate the owning shard(s), and then *publish* a
//!   freshly assembled [`StoreSnapshot`] behind an `Arc` swap;
//! * **Reads never block on writers**: [`ViewStore::snapshot`] clones the
//!   published `Arc` — in-flight readers keep serving whatever snapshot
//!   they hold while a writer prepares the next one, and a half-applied
//!   delta is never observable;
//! * **The query hot path holds no locks at all**: execution works off a
//!   snapshot — a consistent, immutable set of `Arc`-shared views. The
//!   serving layer ([`crate::service::ViewService`]) rebuilds its
//!   [`QueryEngine`](crate::engine::QueryEngine) only when
//!   [`ViewStore::version`] moves, so steady-state query traffic is
//!   entirely lock-free.
//!
//! The store is keyed by *stable ids* (monotonic `u64`s handed out at
//! registration) rather than the positional indices of
//! [`ViewSet`]: positions shift when views are
//! retired, ids never do. Snapshots order views by id, so planning and
//! execution are deterministic regardless of shard count or interleaving.
//!
//! ## Epochs
//!
//! Every stored view carries an **epoch**: the store version at which its
//! extension last changed. A version bump no longer means "everything you
//! cached is stale" — [`ViewStore::apply_delta`] routes an [`EdgeDelta`]
//! through the [`ViewFootprintIndex`] detector and the warm
//! [`IncrementalView`] maintainers,
//! re-freezes only the views whose result actually changed, and leaves
//! every other view's `Arc` (and epoch) untouched. Cache layers key on the
//! epochs of the views a plan reads (plus [`StoreSnapshot::graph_epoch`]
//! for plans that read `G` itself), so a write to view A does not
//! invalidate answers that only read view B.

use crate::compact::CompactView;
use crate::delta::{EdgeDelta, ViewFootprintIndex};
use crate::maintenance::IncrementalView;
use crate::shard::{decode_shard, encode_shard, ShardError, StoreMeta, SHARD_VERSION};
use crate::storage::{graph_fingerprint, ViewCache};
use crate::view::{ViewDef, ViewExtensions, ViewSet};
use gpv_graph::stats::GraphStats;
use gpv_graph::{DataGraph, NodeId};
use gpv_matching::result::MatchResult;
use gpv_matching::simulation::match_pattern;
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One materialized view as stored: its stable id, definition and cached
/// extension, shared by `Arc` between the shards and live snapshots.
#[derive(Debug)]
pub struct StoredView {
    /// Stable registration id (never reused within a store).
    pub id: u64,
    /// The view definition.
    pub def: ViewDef,
    /// The materialized extension `V(G)` as a frozen columnar arena region,
    /// `Arc`-shared into every snapshot (and through it into every
    /// [`QueryEngine`](crate::engine::QueryEngine) built from one) —
    /// rebuilding an engine never copies the pairs, and a store mutation
    /// re-freezes only the touched view's region.
    pub ext: Arc<CompactView>,
    /// The store version at which `ext` last changed — the view's MVCC
    /// epoch. Cache keys derived from the epochs of the views a plan reads
    /// stay valid across mutations that touch other views.
    pub epoch: u64,
}

/// Errors from store mutation.
#[derive(Debug)]
pub enum StoreError {
    /// A view was registered (or a delta applied) against a different graph
    /// than the one the store currently materializes.
    GraphMismatch {
        /// Fingerprint the store was materialized against.
        expected: u64,
        /// Fingerprint of the graph supplied now.
        actual: u64,
    },
    /// An [`EdgeDelta`] referenced a node id the graph does not have.
    /// Deltas mutate edges only — they can never grow the node set.
    NodeOutOfRange {
        /// The offending endpoint.
        node: NodeId,
        /// The graph's node count.
        node_count: usize,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::GraphMismatch { expected, actual } => write!(
                f,
                "view store was materialized for graph {expected:#x}, not {actual:#x}"
            ),
            StoreError::NodeOutOfRange { node, node_count } => write!(
                f,
                "edge delta references node {node} but the graph has {node_count} nodes"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// What [`ViewStore::apply_delta`] did: the post-delta graph the caller
/// should adopt, plus which views the detector routed through incremental
/// maintenance and which of those actually changed.
#[derive(Debug)]
pub struct DeltaReport {
    /// The post-delta graph (node data `Arc`-free but cheap: interners and
    /// label/attr columns cloned, edge CSRs rebuilt). The caller serves
    /// subsequent graph-reading queries against this.
    pub graph: DataGraph,
    /// Store version after the delta (also the new
    /// [`StoreSnapshot::graph_epoch`]).
    pub version: u64,
    /// Ids the footprint detector flagged as possibly affected (sorted).
    pub affected: Vec<u64>,
    /// The subset of `affected` whose re-frozen extension differed — only
    /// these views got a new arena region and epoch.
    pub changed: Vec<u64>,
    /// Views the detector proved untouched: their `Arc`s and epochs (and
    /// every cached answer reading only them) survived verbatim.
    pub unaffected: usize,
}

/// Occupancy of one shard — how many views it holds and how many
/// materialized pairs they carry (the serving-layer stats surface this so
/// skew is visible).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardOccupancy {
    /// Shard index.
    pub shard: usize,
    /// Views resident in this shard.
    pub views: usize,
    /// Total materialized match pairs across those views.
    pub pairs: u64,
}

#[derive(Debug, Default)]
struct Shard {
    views: Vec<Arc<StoredView>>,
}

/// One row of [`ViewStore::eviction_advice`]: a resident view no workload
/// query needs, with the bytes evicting it would free.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvictionAdvice {
    /// Stable id of the candidate view.
    pub id: u64,
    /// Its name.
    pub name: String,
    /// Materialized pairs it holds (`|Vi(G)|`).
    pub pairs: u64,
    /// Resident arena bytes freed by evicting it.
    pub resident_bytes: usize,
}

/// A sharded, concurrently-writable registry of materialized views.
///
/// See the [module docs](self) for the locking contract. Build one with
/// [`ViewStore::materialize`] (or [`ViewStore::from_cache`] for a loaded
/// [`ViewCache`]), then hand it to a
/// [`ViewService`](crate::service::ViewService) — or use
/// [`ViewStore::snapshot`] directly:
///
/// ```
/// use gpv_core::store::ViewStore;
/// use gpv_core::view::{ViewDef, ViewSet};
/// use gpv_graph::GraphBuilder;
/// use gpv_pattern::PatternBuilder;
///
/// let mut b = GraphBuilder::new();
/// let a = b.add_node(["A"]);
/// let c = b.add_node(["B"]);
/// b.add_edge(a, c);
/// let g = b.build();
///
/// let mut p = PatternBuilder::new();
/// let u = p.node_labeled("A");
/// let v = p.node_labeled("B");
/// p.edge(u, v);
/// let q = p.build().unwrap();
///
/// let store = ViewStore::for_graph(&g, 4);
/// let id = store.insert(ViewDef::new("v", q), &g).unwrap();
/// assert_eq!(store.len(), 1);
/// let snap = store.snapshot();
/// assert_eq!(snap.ids(), vec![id]);
/// assert_eq!(snap.extensions().size(), 1); // one cached match pair
/// ```
#[derive(Debug)]
pub struct ViewStore {
    shards: Vec<RwLock<Shard>>,
    next_id: AtomicU64,
    /// Bumped on every successful mutation; snapshot consumers use it to
    /// detect staleness without locking any shard.
    version: AtomicU64,
    /// Fingerprint of the graph the store currently materializes. Atomic
    /// because [`Self::apply_delta`] moves it to the post-delta graph.
    graph_fingerprint: AtomicU64,
    /// Version of the last applied edge delta (0 = the graph has never
    /// changed). Mirrored into every snapshot as
    /// [`StoreSnapshot::graph_epoch`].
    graph_epoch: AtomicU64,
    graph_stats: Option<GraphStats>,
    /// The published MVCC snapshot: always fully assembled and internally
    /// consistent. Readers clone the `Arc`; only the writer path (under
    /// [`Self::writer`]) replaces it.
    published: RwLock<Arc<StoreSnapshot>>,
    /// Serializes all mutations and owns the warm incremental maintainers
    /// (view id → [`IncrementalView`]). Holding this across shard edits and
    /// the publish step is what makes half-applied deltas unobservable.
    writer: Mutex<WriterState>,
}

#[derive(Debug, Default)]
struct WriterState {
    /// Warm maintainers, promoted lazily the first time a delta affects a
    /// view. Invariant: every warm maintainer's adjacency mirrors the
    /// store's *current* graph — unaffected views get adjacency-only
    /// patches on every delta.
    warm: HashMap<u64, IncrementalView>,
}

/// FNV-1a over a view id: decorrelates consecutive ids so round-robin
/// registration still spreads across shards.
fn shard_hash(id: u64) -> u64 {
    crate::fnv::fnv1a(&id.to_le_bytes())
}

impl ViewStore {
    /// An empty store for graph `g` with `shards` shards (minimum 1).
    pub fn for_graph(g: &DataGraph, shards: usize) -> Self {
        Self::with_fingerprint(
            graph_fingerprint(g),
            Some(gpv_graph::stats::stats(g)),
            shards,
        )
    }

    fn with_fingerprint(fp: u64, stats: Option<GraphStats>, shards: usize) -> Self {
        let n = shards.max(1);
        let empty = Arc::new(StoreSnapshot {
            version: 0,
            fingerprint: view_set_fingerprint(&[]),
            graph_fingerprint: fp,
            graph_epoch: 0,
            graph_stats: stats.clone(),
            views: Vec::new(),
            epochs: Vec::new(),
            view_set: Arc::new(ViewSet::new(Vec::new())),
            extensions: Arc::new(ViewExtensions {
                extensions: Vec::new(),
            }),
        });
        ViewStore {
            shards: (0..n).map(|_| RwLock::new(Shard::default())).collect(),
            next_id: AtomicU64::new(0),
            version: AtomicU64::new(0),
            graph_fingerprint: AtomicU64::new(fp),
            graph_epoch: AtomicU64::new(0),
            graph_stats: stats,
            published: RwLock::new(empty),
            writer: Mutex::new(WriterState::default()),
        }
    }

    /// Materializes `views` over `g` into a fresh store. (No per-view
    /// fingerprint checks — the store is built for `g` by construction;
    /// the public [`Self::insert`] path keeps the check.)
    pub fn materialize(views: ViewSet, g: &DataGraph, shards: usize) -> Self {
        let store = Self::for_graph(g, shards);
        for (_, def) in views.iter() {
            let ext = match_pattern(&def.pattern, g);
            store.insert_raw(def.clone(), Arc::new(CompactView::freeze(&ext)));
        }
        store.publish();
        store
    }

    /// Shards a monolithic [`ViewCache`] (ids are assigned in cache order,
    /// so [`Self::to_cache`] round-trips). The cache's extensions are
    /// `Arc`-shared into the store, not copied.
    pub fn from_cache(cache: ViewCache, shards: usize) -> Self {
        let store =
            Self::with_fingerprint(cache.graph_fingerprint, cache.graph_stats.clone(), shards);
        for (def, ext) in cache
            .views
            .views()
            .iter()
            .cloned()
            .zip(cache.extensions.extensions)
        {
            store.insert_raw(def, ext);
        }
        store.publish();
        store
    }

    /// Collapses the store back into a monolithic, durable [`ViewCache`]
    /// (views in id order). The extensions stay `Arc`-shared with the
    /// store; only the definitions are cloned.
    pub fn to_cache(&self) -> ViewCache {
        let snap = self.snapshot();
        ViewCache {
            graph_fingerprint: self.graph_fingerprint(),
            graph_stats: self.graph_stats.clone(),
            views: (*snap.view_set()).clone(),
            extensions: (*snap.extensions()).clone(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total views across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").views.len())
            .sum()
    }

    /// Whether the store holds no views.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fingerprint of the graph this store currently materializes against
    /// (moves when [`Self::apply_delta`] mutates the edge set).
    pub fn graph_fingerprint(&self) -> u64 {
        self.graph_fingerprint.load(Ordering::Acquire)
    }

    /// Version of the last applied edge delta (0 if the graph never
    /// changed). Plans that read `G` fold this into their cache keys.
    pub fn graph_epoch(&self) -> u64 {
        self.graph_epoch.load(Ordering::Acquire)
    }

    /// Statistics of that graph, captured at construction.
    pub fn graph_stats(&self) -> Option<&GraphStats> {
        self.graph_stats.as_ref()
    }

    /// The store's mutation counter: bumped on every insert/remove, stable
    /// across reads. Snapshot consumers compare it to decide whether a
    /// cached engine is still current.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    fn shard_of(&self, id: u64) -> usize {
        (shard_hash(id) % self.shards.len() as u64) as usize
    }

    /// Materializes `def` over `g` and registers it, returning its stable
    /// id. The materialization work runs before any lock is taken.
    pub fn insert(&self, def: ViewDef, g: &DataGraph) -> Result<u64, StoreError> {
        let actual = graph_fingerprint(g);
        let expected = self.graph_fingerprint();
        if actual != expected {
            return Err(StoreError::GraphMismatch { expected, actual });
        }
        let ext = match_pattern(&def.pattern, g);
        Ok(self.insert_materialized(def, ext))
    }

    /// Registers an already-materialized extension (e.g. from a loaded
    /// cache), freezing it into its columnar arena region. The caller
    /// asserts `ext = def(G)` for this store's graph.
    pub fn insert_materialized(&self, def: ViewDef, ext: MatchResult) -> u64 {
        self.insert_shared(def, Arc::new(CompactView::freeze(&ext)))
    }

    /// [`Self::insert_materialized`] for a region that is already frozen
    /// and shared — registration keeps the `Arc`, so no pairs are copied.
    pub fn insert_shared(&self, def: ViewDef, ext: Arc<CompactView>) -> u64 {
        let _writer = self.writer.lock().expect("writer lock poisoned");
        let id = self.insert_raw(def, ext);
        self.publish();
        id
    }

    /// Shard insertion without publication: the bulk-load path
    /// (`materialize`, `from_cache`, `load_from_dir`) registers every view
    /// first and publishes one snapshot at the end, keeping construction
    /// O(n) instead of O(n²). The new view's epoch is the post-insert
    /// version.
    fn insert_raw(&self, def: ViewDef, ext: Arc<CompactView>) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let epoch = self.version.fetch_add(1, Ordering::Release) + 1;
        let stored = Arc::new(StoredView {
            id,
            def,
            ext,
            epoch,
        });
        let shard = self.shard_of(id);
        self.shards[shard]
            .write()
            .expect("shard lock poisoned")
            .views
            .push(stored);
        id
    }

    /// Registers a view under an explicit stable id — the shard loader's
    /// path, which must reproduce the saved store's id → shard routing
    /// exactly. Does not advance `next_id`; the caller restores the
    /// watermark from the metadata.
    fn insert_with_id(&self, id: u64, def: ViewDef, ext: Arc<CompactView>) {
        let epoch = self.version.fetch_add(1, Ordering::Release) + 1;
        let stored = Arc::new(StoredView {
            id,
            def,
            ext,
            epoch,
        });
        let shard = self.shard_of(id);
        self.shards[shard]
            .write()
            .expect("shard lock poisoned")
            .views
            .push(stored);
    }

    /// Persists the store to `dir` as `meta.json` plus one flat
    /// `shard-NNNN.bin` per shard (see [`crate::shard`] for the byte
    /// layout). The write is deterministic — views in id order, names
    /// interned in first-appearance order — so save → load → save
    /// reproduces byte-identical files (pinned by tests).
    pub fn save_to_dir(&self, dir: impl AsRef<Path>) -> Result<(), ShardError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let snap = self.snapshot();
        let fp = self.graph_fingerprint();
        for (i, _) in self.shards.iter().enumerate() {
            let mine: Vec<(u64, &ViewDef, &CompactView)> = snap
                .views()
                .iter()
                .filter(|v| self.shard_of(v.id) == i)
                .map(|v| (v.id, &v.def, &*v.ext))
                .collect();
            let bytes = encode_shard(&mine, fp);
            std::fs::write(dir.join(format!("shard-{i:04}.bin")), bytes)?;
        }
        let meta = StoreMeta {
            format_version: SHARD_VERSION,
            shard_count: self.shards.len() as u32,
            graph_fingerprint: fp,
            next_id: self.next_id.load(Ordering::Relaxed),
            graph_stats: self.graph_stats.clone(),
        };
        std::fs::write(dir.join("meta.json"), serde_json::to_string(&meta)?)?;
        Ok(())
    }

    /// Loads a store saved by [`Self::save_to_dir`]: reads `meta.json`,
    /// then decodes every shard file (validating magic, version, checksum
    /// and structure — a corrupt file is a clean error, never a panic) into
    /// a store with the saved shard count and stable ids.
    pub fn load_from_dir(dir: impl AsRef<Path>) -> Result<Self, ShardError> {
        let dir = dir.as_ref();
        let meta_raw = std::fs::read_to_string(dir.join("meta.json"))?;
        let meta: StoreMeta = serde_json::from_str(&meta_raw)?;
        if meta.format_version != SHARD_VERSION {
            return Err(ShardError::BadVersion(meta.format_version));
        }
        let store = Self::with_fingerprint(
            meta.graph_fingerprint,
            meta.graph_stats.clone(),
            meta.shard_count as usize,
        );
        let mut max_id: Option<u64> = None;
        for i in 0..meta.shard_count as usize {
            let bytes = std::fs::read(dir.join(format!("shard-{i:04}.bin")))?;
            let contents = decode_shard(&bytes)?;
            if contents.graph_fingerprint != meta.graph_fingerprint {
                return Err(ShardError::GraphMismatch {
                    expected: meta.graph_fingerprint,
                    actual: contents.graph_fingerprint,
                });
            }
            for (id, def, ext) in contents.views {
                max_id = Some(max_id.map_or(id, |m| m.max(id)));
                store.insert_with_id(id, def, Arc::new(ext));
            }
        }
        // Never hand out an id at or below a loaded one, even if the saved
        // watermark is inconsistent.
        let floor = max_id.map_or(0, |m| m + 1);
        store
            .next_id
            .store(meta.next_id.max(floor), Ordering::Relaxed);
        store.publish();
        Ok(store)
    }

    /// Eviction advice: the resident views whose ids are *not* in
    /// `needed_ids` (e.g. the views a workload advisor selected), ranked by
    /// resident arena bytes descending — evicting from the top frees the
    /// most memory while keeping every view the workload reads.
    pub fn eviction_advice(&self, needed_ids: &[u64]) -> Vec<EvictionAdvice> {
        let needed: std::collections::HashSet<u64> = needed_ids.iter().copied().collect();
        let mut advice: Vec<EvictionAdvice> = self
            .snapshot()
            .views()
            .iter()
            .filter(|v| !needed.contains(&v.id))
            .map(|v| EvictionAdvice {
                id: v.id,
                name: v.def.name.clone(),
                pairs: v.ext.size() as u64,
                resident_bytes: v.ext.resident_bytes(),
            })
            .collect();
        advice.sort_by(|a, b| {
            b.resident_bytes
                .cmp(&a.resident_bytes)
                .then(a.id.cmp(&b.id))
        });
        advice
    }

    /// Retires the view with stable id `id`; returns it if it was present.
    pub fn remove(&self, id: u64) -> Option<Arc<StoredView>> {
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        let shard = self.shard_of(id);
        let removed = {
            let mut guard = self.shards[shard].write().expect("shard lock poisoned");
            let pos = guard.views.iter().position(|v| v.id == id)?;
            guard.views.remove(pos)
        };
        writer.warm.remove(&id);
        self.version.fetch_add(1, Ordering::Release);
        self.publish();
        Some(removed)
    }

    /// The view with stable id `id`, if resident.
    pub fn get(&self, id: u64) -> Option<Arc<StoredView>> {
        self.shards[self.shard_of(id)]
            .read()
            .expect("shard lock poisoned")
            .views
            .iter()
            .find(|v| v.id == id)
            .cloned()
    }

    /// Per-shard occupancy (views and materialized pairs per shard).
    pub fn occupancy(&self) -> Vec<ShardOccupancy> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let guard = s.read().expect("shard lock poisoned");
                ShardOccupancy {
                    shard: i,
                    views: guard.views.len(),
                    pairs: guard.views.iter().map(|v| v.ext.size() as u64).sum(),
                }
            })
            .collect()
    }

    /// The current published MVCC snapshot: `Arc` handles to every resident
    /// view, ordered by stable id. This is a pointer clone — no shard lock
    /// is touched, and a writer mid-mutation never tears what readers see
    /// (the next snapshot appears only when its publish completes).
    pub fn snapshot(&self) -> Arc<StoreSnapshot> {
        self.published
            .read()
            .expect("published snapshot lock poisoned")
            .clone()
    }

    /// Assembles and publishes a fresh snapshot from the shards. Called at
    /// the end of every mutation (under [`Self::writer`] for concurrent
    /// paths; bulk constructors call it once after loading).
    fn publish(&self) {
        let version = self.version();
        let mut views: Vec<Arc<StoredView>> = Vec::with_capacity(self.len());
        for s in &self.shards {
            views.extend(s.read().expect("shard lock poisoned").views.iter().cloned());
        }
        views.sort_by_key(|v| v.id);
        let fingerprint = view_set_fingerprint(&views);
        // Assembled once per publish (i.e. once per store version) and then
        // shared by `Arc` into every engine built from it: the positional
        // view set clones the (small) definitions, the extensions clone one
        // `Arc` per view — never the materialized pairs. A rebuild after a
        // mutation therefore costs O(card(V)), not O(|V(G)|).
        let view_set = Arc::new(ViewSet::new(views.iter().map(|v| v.def.clone()).collect()));
        let extensions = Arc::new(ViewExtensions {
            extensions: views.iter().map(|v| v.ext.clone()).collect(),
        });
        let epochs = views.iter().map(|v| v.epoch).collect();
        let snap = Arc::new(StoreSnapshot {
            version,
            fingerprint,
            graph_fingerprint: self.graph_fingerprint(),
            graph_epoch: self.graph_epoch(),
            graph_stats: self.graph_stats.clone(),
            views,
            epochs,
            view_set,
            extensions,
        });
        *self
            .published
            .write()
            .expect("published snapshot lock poisoned") = snap;
    }

    /// Applies an edge-delta batch to the store's graph and incrementally
    /// maintains every affected view — the serving path never pays a full
    /// rebuild.
    ///
    /// `current` must be the store's present graph (fingerprint-checked).
    /// The pipeline, all under the writer mutex:
    ///
    /// 1. validate delta endpoints against the node set;
    /// 2. detect affected views via the [`ViewFootprintIndex`];
    /// 3. patch the adjacency mirror of every *unaffected* warm maintainer
    ///    (their results provably cannot change — see [`crate::delta`]);
    /// 4. route each affected view through its warm [`IncrementalView`]
    ///    (promoting a cold one directly from the post-delta graph),
    ///    re-freezing only extensions whose content actually changed and
    ///    stamping those with the new version as their epoch;
    /// 5. bump the version, move the graph fingerprint and
    ///    [`graph_epoch`](Self::graph_epoch), and publish one new snapshot.
    ///
    /// In-flight readers keep serving the previous snapshot throughout.
    pub fn apply_delta(
        &self,
        delta: &EdgeDelta,
        current: &DataGraph,
    ) -> Result<DeltaReport, StoreError> {
        let actual = graph_fingerprint(current);
        let expected = self.graph_fingerprint();
        if actual != expected {
            return Err(StoreError::GraphMismatch { expected, actual });
        }
        delta.validate(current)?;

        let mut writer = self.writer.lock().expect("writer lock poisoned");
        let next = delta.apply_to(current);

        // Current membership, id-ordered (shards only read under the writer
        // mutex, so this is a consistent view).
        let mut resident: Vec<Arc<StoredView>> = Vec::with_capacity(self.len());
        for s in &self.shards {
            resident.extend(s.read().expect("shard lock poisoned").views.iter().cloned());
        }
        resident.sort_by_key(|v| v.id);
        let resident_ids: HashSet<u64> = resident.iter().map(|v| v.id).collect();
        writer.warm.retain(|id, _| resident_ids.contains(id));

        let index = ViewFootprintIndex::build(resident.iter().map(|v| (v.id, &v.def)), current);
        let affected = index.affected(delta, current);
        let affected_set: HashSet<u64> = affected.iter().copied().collect();

        // Unaffected warm maintainers still track the evolving edge set —
        // adjacency-only, no candidate/support work.
        for (id, m) in writer.warm.iter_mut() {
            if !affected_set.contains(id) {
                m.patch_adjacency(&delta.deletes, &delta.inserts);
            }
        }

        let new_version = self.version.load(Ordering::Acquire) + 1;
        let mut changed = Vec::new();
        for v in resident.iter().filter(|v| affected_set.contains(&v.id)) {
            // Cold maintainers are promoted straight from the stored
            // (pre-delta) extension — the relation is already known, so no
            // refinement fixpoint runs even on the first delta.
            let m = writer.warm.entry(v.id).or_insert_with(|| {
                IncrementalView::from_result(v.def.pattern.clone(), current, &v.ext.thaw())
            });
            m.apply_batch(&delta.deletes, &delta.inserts);
            if !m.take_dirty() {
                // The maintainer proved its extension unchanged: skip the
                // result extraction and re-freeze outright.
                continue;
            }
            let ext = CompactView::freeze(&m.result());
            if ext.content_eq(&v.ext) {
                continue; // identical result: keep the old arena Arc + epoch
            }
            let shard = self.shard_of(v.id);
            let mut guard = self.shards[shard].write().expect("shard lock poisoned");
            let pos = guard
                .views
                .iter()
                .position(|s| s.id == v.id)
                .expect("resident view present in its shard");
            guard.views[pos] = Arc::new(StoredView {
                id: v.id,
                def: v.def.clone(),
                ext: Arc::new(ext),
                epoch: new_version,
            });
            drop(guard);
            changed.push(v.id);
        }

        self.graph_fingerprint
            .store(graph_fingerprint(&next), Ordering::Release);
        self.graph_epoch.store(new_version, Ordering::Release);
        self.version.store(new_version, Ordering::Release);
        self.publish();
        let unaffected = resident.len() - affected.len();
        Ok(DeltaReport {
            graph: next,
            version: new_version,
            affected,
            changed,
            unaffected,
        })
    }
}

/// Fingerprint of a snapshot's view membership: FNV-1a over each view's
/// stable id and definition. Two snapshots with the same fingerprint plan
/// identically (same graph presumed), which is what makes it a sound plan
/// cache key component.
fn view_set_fingerprint(views: &[Arc<StoredView>]) -> u64 {
    let mut h = crate::fnv::Fnv1a::new();
    for v in views {
        h.write(&v.id.to_le_bytes());
        h.write(v.def.name.as_bytes());
        h.write(
            serde_json::to_string(&v.def.pattern)
                .expect("patterns serialize")
                .as_bytes(),
        );
    }
    h.finish()
}

/// An immutable, lock-free view of the store at one version: what the
/// serving layer plans and executes against.
#[derive(Clone, Debug)]
pub struct StoreSnapshot {
    /// Store version this snapshot was taken at.
    pub version: u64,
    /// Fingerprint of the view membership (plan-cache key component).
    pub fingerprint: u64,
    /// Fingerprint of the underlying graph *as of this snapshot* — moves
    /// when a delta is applied.
    pub graph_fingerprint: u64,
    /// Version of the last applied edge delta (0 = graph never mutated).
    /// Cache keys for plans that read `G` fold this in, so a delta
    /// invalidates exactly the graph-reading answers.
    pub graph_epoch: u64,
    /// Graph statistics captured at store construction.
    pub graph_stats: Option<GraphStats>,
    views: Vec<Arc<StoredView>>,
    /// Position-aligned with `views`: `epochs[i]` is view `i`'s epoch.
    epochs: Vec<u64>,
    view_set: Arc<ViewSet>,
    extensions: Arc<ViewExtensions>,
}

impl StoreSnapshot {
    /// The snapshot's views in stable-id order.
    pub fn views(&self) -> &[Arc<StoredView>] {
        &self.views
    }

    /// Per-view epochs, position-aligned with [`views`](Self::views) (and
    /// therefore with the positional indices a
    /// [`QueryPlan`](crate::plan::QueryPlan) uses): `epochs()[i]` is the
    /// store version at which view `i`'s extension last changed.
    pub fn epochs(&self) -> &[u64] {
        &self.epochs
    }

    /// The maximum epoch across all views and the graph epoch — the
    /// coarsest still-exact staleness stamp (used e.g. to key the negative
    /// `NeedsGraph` refusal cache, whose decisions depend on every view).
    pub fn max_epoch(&self) -> u64 {
        self.epochs
            .iter()
            .copied()
            .chain(std::iter::once(self.graph_epoch))
            .max()
            .unwrap_or(0)
    }

    /// Stable ids in snapshot order: `ids()[i]` is the store id of the view
    /// a [`QueryPlan`](crate::plan::QueryPlan) calls view `i`.
    pub fn ids(&self) -> Vec<u64> {
        self.views.iter().map(|v| v.id).collect()
    }

    /// The positional [`ViewSet`] the planner consumes, assembled once at
    /// snapshot time and shared by `Arc` (cloning the handle is O(1)).
    pub fn view_set(&self) -> Arc<ViewSet> {
        self.view_set.clone()
    }

    /// The positional [`ViewExtensions`] the executor reads, assembled once
    /// at snapshot time. The handle — and every per-view extension inside
    /// it — is `Arc`-shared with the store, so this never copies pairs
    /// (the old deep-copy per engine rebuild is gone; `tests/service.rs`
    /// pins it with `Arc::ptr_eq`).
    pub fn extensions(&self) -> Arc<ViewExtensions> {
        self.extensions.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpv_graph::GraphBuilder;
    use gpv_pattern::PatternBuilder;

    fn single(x: &str, y: &str) -> gpv_pattern::Pattern {
        let mut b = PatternBuilder::new();
        let u = b.node_labeled(x);
        let v = b.node_labeled(y);
        b.edge(u, v);
        b.build().unwrap()
    }

    fn graph() -> DataGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node(["A"]);
        let x = b.add_node(["B"]);
        let c = b.add_node(["C"]);
        b.add_edge(a, x);
        b.add_edge(x, c);
        b.build()
    }

    fn two_views() -> ViewSet {
        ViewSet::new(vec![
            ViewDef::new("vab", single("A", "B")),
            ViewDef::new("vbc", single("B", "C")),
        ])
    }

    #[test]
    fn snapshot_deterministic_across_shard_counts() {
        let g = graph();
        for shards in [1, 2, 4, 16] {
            let store = ViewStore::materialize(two_views(), &g, shards);
            assert_eq!(store.shard_count(), shards);
            assert_eq!(store.len(), 2);
            let snap = store.snapshot();
            assert_eq!(snap.ids(), vec![0, 1]);
            assert_eq!(snap.view_set().get(0).name, "vab");
            assert_eq!(snap.view_set().get(1).name, "vbc");
            assert_eq!(snap.extensions().extensions.len(), 2);
        }
    }

    #[test]
    fn fingerprint_tracks_membership_not_sharding() {
        let g = graph();
        let a = ViewStore::materialize(two_views(), &g, 2);
        let b = ViewStore::materialize(two_views(), &g, 8);
        assert_eq!(a.snapshot().fingerprint, b.snapshot().fingerprint);
        a.insert(ViewDef::new("extra", single("A", "B")), &g)
            .unwrap();
        assert_ne!(a.snapshot().fingerprint, b.snapshot().fingerprint);
    }

    #[test]
    fn insert_remove_bump_version_and_route_by_id() {
        let g = graph();
        let store = ViewStore::materialize(two_views(), &g, 4);
        let v0 = store.version();
        let id = store
            .insert(ViewDef::new("vxx", single("A", "C")), &g)
            .unwrap();
        assert!(store.version() > v0);
        assert_eq!(store.get(id).unwrap().def.name, "vxx");
        let removed = store.remove(id).unwrap();
        assert_eq!(removed.def.name, "vxx");
        assert!(store.get(id).is_none());
        assert!(store.remove(id).is_none());
        assert_eq!(store.len(), 2);
    }

    /// Shard-count edge case: `shards == 0` must clamp to 1 everywhere a
    /// store is constructed — otherwise `shard_of`'s `% self.shards.len()`
    /// panics with a division by zero on the first insert or lookup.
    #[test]
    fn zero_shards_clamps_to_one() {
        let g = graph();
        let store = ViewStore::materialize(two_views(), &g, 0);
        assert_eq!(store.shard_count(), 1);
        assert_eq!(store.len(), 2);
        let id = store
            .insert(ViewDef::new("vxx", single("A", "C")), &g)
            .unwrap();
        assert!(store.get(id).is_some());
        assert_eq!(store.snapshot().ids().len(), 3);

        let from_cache = ViewStore::from_cache(ViewCache::build(two_views(), &g), 0);
        assert_eq!(from_cache.shard_count(), 1);
        assert_eq!(from_cache.len(), 2);

        let empty = ViewStore::for_graph(&g, 0);
        assert_eq!(empty.shard_count(), 1);
        assert!(empty.is_empty());
    }

    #[test]
    fn insert_rejects_other_graph() {
        let g = graph();
        let store = ViewStore::for_graph(&g, 2);
        let mut b = GraphBuilder::new();
        let x = b.add_node(["X"]);
        let y = b.add_node(["Y"]);
        b.add_edge(x, y);
        let other = b.build();
        assert!(matches!(
            store.insert(ViewDef::new("v", single("X", "Y")), &other),
            Err(StoreError::GraphMismatch { .. })
        ));
    }

    #[test]
    fn cache_roundtrip() {
        let g = graph();
        let cache = ViewCache::build(two_views(), &g);
        let store = ViewStore::from_cache(cache.clone(), 4);
        let back = store.to_cache();
        assert_eq!(back.graph_fingerprint, cache.graph_fingerprint);
        assert_eq!(back.views, cache.views);
        assert_eq!(back.extensions, cache.extensions);
    }

    #[test]
    fn occupancy_sums_to_store_contents() {
        let g = graph();
        let store = ViewStore::materialize(two_views(), &g, 4);
        let occ = store.occupancy();
        assert_eq!(occ.len(), 4);
        assert_eq!(occ.iter().map(|o| o.views).sum::<usize>(), 2);
        let total_pairs: u64 = occ.iter().map(|o| o.pairs).sum();
        assert_eq!(total_pairs, store.snapshot().extensions().size() as u64);
    }

    fn temp_store_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gpv-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_roundtrip_is_byte_identical() {
        let g = graph();
        let store = ViewStore::materialize(two_views(), &g, 4);
        let dir = temp_store_dir("roundtrip");
        store.save_to_dir(&dir).unwrap();

        let loaded = ViewStore::load_from_dir(&dir).unwrap();
        assert_eq!(loaded.shard_count(), store.shard_count());
        let (a, b) = (store.snapshot(), loaded.snapshot());
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.ids(), b.ids());
        assert_eq!(a.view_set().views(), b.view_set().views());
        assert_eq!(a.extensions().extensions, b.extensions().extensions);

        // Save → load → save is byte-identical file by file: encode order
        // is ascending-id and name interning is first-appearance, so the
        // format is deterministic, not merely value-preserving.
        let dir2 = temp_store_dir("roundtrip2");
        loaded.save_to_dir(&dir2).unwrap();
        for i in 0..store.shard_count() {
            let name = format!("shard-{i:04}.bin");
            assert_eq!(
                std::fs::read(dir.join(&name)).unwrap(),
                std::fs::read(dir2.join(&name)).unwrap(),
                "{name} differs across save → load → save"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn reload_preserves_id_watermark() {
        let g = graph();
        let store = ViewStore::materialize(two_views(), &g, 2);
        let id = store
            .insert(ViewDef::new("vxx", single("A", "C")), &g)
            .unwrap();
        store.remove(id).unwrap();
        let dir = temp_store_dir("watermark");
        store.save_to_dir(&dir).unwrap();

        let loaded = ViewStore::load_from_dir(&dir).unwrap();
        let fresh = loaded
            .insert(ViewDef::new("vyy", single("A", "B")), &g)
            .unwrap();
        assert!(
            fresh > id,
            "reload reused id {id} (fresh insert got {fresh})"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_shards_from_another_graph() {
        let g = graph();
        let mut b = GraphBuilder::new();
        let x = b.add_node(["X"]);
        let y = b.add_node(["Y"]);
        b.add_edge(x, y);
        let other = b.build();

        let dir_a = temp_store_dir("mix-a");
        let dir_b = temp_store_dir("mix-b");
        ViewStore::materialize(two_views(), &g, 2)
            .save_to_dir(&dir_a)
            .unwrap();
        ViewStore::materialize(
            ViewSet::new(vec![ViewDef::new("vxy", single("X", "Y"))]),
            &other,
            2,
        )
        .save_to_dir(&dir_b)
        .unwrap();

        // Shard files from one graph under the other's meta.json: the
        // per-shard fingerprint check must refuse to mix them.
        std::fs::copy(dir_b.join("meta.json"), dir_a.join("meta.json")).unwrap();
        assert!(matches!(
            ViewStore::load_from_dir(&dir_a),
            Err(ShardError::GraphMismatch { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn load_reports_truncated_shard_cleanly() {
        let g = graph();
        let dir = temp_store_dir("trunc");
        ViewStore::materialize(two_views(), &g, 1)
            .save_to_dir(&dir)
            .unwrap();
        let path = dir.join("shard-0000.bin");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(ViewStore::load_from_dir(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_advice_ranks_unneeded_views_by_bytes() {
        let g = graph();
        let store = ViewStore::materialize(two_views(), &g, 2);
        let ids = store.snapshot().ids();

        // The workload needs the first view: advice lists only the second.
        let advice = store.eviction_advice(&ids[..1]);
        assert_eq!(advice.len(), 1);
        assert_eq!(advice[0].id, ids[1]);

        // A workload needing nothing lists everything, biggest first.
        let all = store.eviction_advice(&[]);
        assert_eq!(all.len(), 2);
        assert!(all[0].resident_bytes >= all[1].resident_bytes);
    }

    #[test]
    fn concurrent_inserts_land_once() {
        let g = graph();
        let store = ViewStore::for_graph(&g, 8);
        std::thread::scope(|s| {
            for t in 0..4 {
                let store = &store;
                let g = &g;
                s.spawn(move || {
                    for i in 0..8 {
                        store
                            .insert(ViewDef::new(format!("v{t}-{i}"), single("A", "B")), g)
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(store.len(), 32);
        let snap = store.snapshot();
        let ids = snap.ids();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted, "ids unique and snapshot id-ordered");
    }

    use crate::delta::EdgeDelta;
    use gpv_graph::NodeId;

    #[test]
    fn apply_delta_maintains_only_affected_views() {
        // Graph: A -> B -> C plus two D nodes with an edge between them.
        let mut b = GraphBuilder::new();
        let a = b.add_node(["A"]);
        let x = b.add_node(["B"]);
        let c = b.add_node(["C"]);
        let d1 = b.add_node(["D"]);
        let d2 = b.add_node(["D"]);
        b.add_edge(a, x);
        b.add_edge(x, c);
        b.add_edge(d1, d2);
        let g = b.build();
        let views = ViewSet::new(vec![
            ViewDef::new("vab", single("A", "B")),
            ViewDef::new("vdd", single("D", "D")),
        ]);
        let store = ViewStore::materialize(views, &g, 2);
        let before = store.snapshot();

        // Delete the D -> D edge: only vdd is affected.
        let delta = EdgeDelta::new(vec![], vec![(d1, d2)]);
        let report = store.apply_delta(&delta, &g).unwrap();
        assert_eq!(report.affected, vec![1]);
        assert_eq!(report.changed, vec![1]);
        assert_eq!(report.unaffected, 1);
        assert!(!report.graph.has_edge(d1, d2));

        let after = store.snapshot();
        // The untouched view's arena region survived verbatim (same Arc),
        // and its epoch did not move; the maintained view re-froze.
        assert!(Arc::ptr_eq(&before.views()[0].ext, &after.views()[0].ext));
        assert_eq!(before.epochs()[0], after.epochs()[0]);
        assert!(after.epochs()[1] > before.epochs()[1]);
        assert_eq!(after.epochs()[1], report.version);
        assert_eq!(after.graph_epoch, report.version);
        assert!(after.views()[1].ext.is_empty(), "vdd lost its only match");

        // The extension now equals a from-scratch materialization, and the
        // store accepts the post-delta graph for further mutation.
        let oracle = CompactView::freeze(&gpv_matching::simulation::match_pattern(
            &single("D", "D"),
            &report.graph,
        ));
        assert!(after.views()[1].ext.content_eq(&oracle));
        assert_eq!(store.graph_fingerprint(), graph_fingerprint(&report.graph));
        store
            .insert(ViewDef::new("vbc", single("B", "C")), &report.graph)
            .unwrap();
    }

    #[test]
    fn apply_delta_insert_revives_view_and_reuses_warm_maintainer() {
        let g = graph();
        let store = ViewStore::materialize(two_views(), &g, 2);
        // Delete A -> B, then re-insert it: vab goes empty and comes back.
        let d1 = EdgeDelta::new(vec![], vec![(NodeId(0), NodeId(1))]);
        let r1 = store.apply_delta(&d1, &g).unwrap();
        assert!(store.snapshot().views()[0].ext.is_empty());
        let d2 = EdgeDelta::new(vec![(NodeId(0), NodeId(1))], vec![]);
        let r2 = store.apply_delta(&d2, &r1.graph).unwrap();
        assert_eq!(r2.changed, vec![0]);
        let snap = store.snapshot();
        let oracle = CompactView::freeze(&gpv_matching::simulation::match_pattern(
            &single("A", "B"),
            &r2.graph,
        ));
        assert!(snap.views()[0].ext.content_eq(&oracle));
        assert_eq!(
            store.graph_fingerprint(),
            graph_fingerprint(&g),
            "round trip"
        );
    }

    #[test]
    fn apply_delta_no_op_keeps_every_epoch() {
        let g = graph();
        let store = ViewStore::materialize(two_views(), &g, 2);
        let before = store.snapshot();
        // Deleting a non-existent edge between labeled endpoints: affected
        // views re-check but nothing changes — every Arc and epoch survives.
        let delta = EdgeDelta::new(vec![], vec![(NodeId(0), NodeId(2))]);
        let report = store.apply_delta(&delta, &g).unwrap();
        assert!(report.changed.is_empty());
        let after = store.snapshot();
        for i in 0..2 {
            assert!(Arc::ptr_eq(&before.views()[i].ext, &after.views()[i].ext));
            assert_eq!(before.epochs()[i], after.epochs()[i]);
        }
        // The graph epoch still moves: G's edge set is only textually the
        // same because the delete missed, but the version must reflect that
        // a delta was processed.
        assert_eq!(after.graph_epoch, report.version);
    }

    #[test]
    fn apply_delta_rejects_bad_nodes_and_wrong_graph() {
        let g = graph();
        let store = ViewStore::materialize(two_views(), &g, 2);
        let v_before = store.version();
        let bad = EdgeDelta::new(vec![(NodeId(0), NodeId(42))], vec![]);
        assert!(matches!(
            store.apply_delta(&bad, &g),
            Err(StoreError::NodeOutOfRange {
                node: NodeId(42),
                node_count: 3
            })
        ));
        assert_eq!(store.version(), v_before, "failed delta mutates nothing");

        let mut b = GraphBuilder::new();
        let x = b.add_node(["X"]);
        let y = b.add_node(["Y"]);
        b.add_edge(x, y);
        let other = b.build();
        let ok = EdgeDelta::new(vec![(NodeId(0), NodeId(1))], vec![]);
        assert!(matches!(
            store.apply_delta(&ok, &other),
            Err(StoreError::GraphMismatch { .. })
        ));
    }

    #[test]
    fn snapshot_is_published_not_torn() {
        // snapshot() must be a pointer clone of the last published state:
        // two calls with no intervening mutation return the same Arc.
        let g = graph();
        let store = ViewStore::materialize(two_views(), &g, 4);
        let a = store.snapshot();
        let b = store.snapshot();
        assert!(Arc::ptr_eq(&a, &b));
        store
            .insert(ViewDef::new("vac", single("A", "C")), &g)
            .unwrap();
        let c = store.snapshot();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.ids().len(), 3);
        // The old snapshot keeps serving its own consistent world.
        assert_eq!(a.ids().len(), 2);
    }
}
