//! Bounded view definitions and extensions, including the paper's auxiliary
//! distance index `I(V)` (Section VI-A).
//!
//! For bounded views the extension stores, for every match `(v, v')` of a
//! view edge, the shortest witnessing distance `d` — "for each match (v, v')
//! in V(G) of some edge in V, I(V) includes a pair ⟨(v, v'), d⟩". The size
//! of `I(V)` is bounded by `|V(G)|`, and `BMatchJoin` queries it in `O(1)`.

use crate::compact::CompactBoundedView;
use gpv_graph::DataGraph;
use gpv_matching::bounded::bmatch_pattern;
use gpv_pattern::BoundedPattern;
use serde::{Deserialize, Serialize};

/// A named bounded view definition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BoundedViewDef {
    /// Human-readable name.
    pub name: String,
    /// The defining bounded pattern query.
    pub pattern: BoundedPattern,
}

impl BoundedViewDef {
    /// Creates a named bounded view.
    pub fn new(name: impl Into<String>, pattern: BoundedPattern) -> Self {
        BoundedViewDef {
            name: name.into(),
            pattern,
        }
    }
}

/// A set of bounded view definitions.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct BoundedViewSet {
    views: Vec<BoundedViewDef>,
}

impl BoundedViewSet {
    /// Creates a bounded view set.
    pub fn new(views: Vec<BoundedViewDef>) -> Self {
        BoundedViewSet { views }
    }

    /// `card(V)`.
    pub fn card(&self) -> usize {
        self.views.len()
    }

    /// `|V|`: total size of the definitions.
    pub fn size(&self) -> usize {
        self.views.iter().map(|v| v.pattern.size()).sum()
    }

    /// The definitions in order.
    pub fn views(&self) -> &[BoundedViewDef] {
        &self.views
    }

    /// The `i`-th view.
    pub fn get(&self, i: usize) -> &BoundedViewDef {
        &self.views[i]
    }

    /// Restricts to a subset by index.
    pub fn subset(&self, indices: &[usize]) -> BoundedViewSet {
        BoundedViewSet {
            views: indices.iter().map(|&i| self.views[i].clone()).collect(),
        }
    }

    /// Iterates `(index, view)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &BoundedViewDef)> {
        self.views.iter().enumerate()
    }
}

/// Materialized bounded extensions: each `Vi(G)` carries per-pair shortest
/// distances — the extension and the index `I(V)` in one structure. Since
/// the columnar-arena refactor this is the flat
/// [`CompactBoundedExtensions`](crate::compact::CompactBoundedExtensions);
/// the JSON wire shape is unchanged.
pub type BoundedViewExtensions = crate::compact::CompactBoundedExtensions;

/// Materializes bounded views with the `BMatch` engine, recording shortest
/// distances (building `I(V)` as a side effect), frozen into columnar
/// arena regions.
pub fn bmaterialize(views: &BoundedViewSet, g: &DataGraph) -> BoundedViewExtensions {
    BoundedViewExtensions {
        extensions: views
            .views()
            .iter()
            .map(|v| CompactBoundedView::freeze(&bmatch_pattern(&v.pattern, g)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpv_graph::{GraphBuilder, NodeId};
    use gpv_pattern::{PatternBuilder, PatternEdgeId};

    fn chain_graph() -> DataGraph {
        // A -> m -> B, A -> B (direct)
        let mut b = GraphBuilder::new();
        let a = b.add_node(["A"]);
        let m = b.add_node(["M"]);
        let z = b.add_node(["B"]);
        b.add_edge(a, m);
        b.add_edge(m, z);
        b.add_edge(a, z);
        b.build()
    }

    fn view_a2b(k: u32) -> BoundedViewDef {
        let mut b = PatternBuilder::new();
        let x = b.node_labeled("A");
        let y = b.node_labeled("B");
        b.edge_bounded(x, y, k);
        BoundedViewDef::new(format!("V_A{k}B"), b.build_bounded().unwrap())
    }

    #[test]
    fn set_accessors() {
        let vs = BoundedViewSet::new(vec![view_a2b(2), view_a2b(3)]);
        assert_eq!(vs.card(), 2);
        assert_eq!(vs.size(), 6);
        assert_eq!(vs.subset(&[1]).get(0).name, "V_A3B");
    }

    #[test]
    fn materialize_records_shortest_distance() {
        let g = chain_graph();
        let vs = BoundedViewSet::new(vec![view_a2b(2)]);
        let ext = bmaterialize(&vs, &g);
        // A reaches B directly (d=1) — shortest wins over the 2-hop path.
        assert_eq!(
            ext.edge_set(0, PatternEdgeId(0)),
            &[(NodeId(0), NodeId(2), 1)]
        );
        assert_eq!(ext.size(), 1);
    }

    #[test]
    fn empty_extension() {
        let g = chain_graph();
        let mut b = PatternBuilder::new();
        let x = b.node_labeled("B");
        let y = b.node_labeled("A");
        b.edge_bounded(x, y, 3);
        let vs = BoundedViewSet::new(vec![BoundedViewDef::new("VBA", b.build_bounded().unwrap())]);
        let ext = bmaterialize(&vs, &g);
        assert_eq!(ext.size(), 0);
        assert_eq!(ext.edge_set(0, PatternEdgeId(0)), &[]);
    }
}
