//! On-disk shard format for the columnar view store.
//!
//! A [`ViewStore`](crate::store::ViewStore) persists as one directory:
//! `meta.json` (the [`StoreMeta`] header: format version, shard count,
//! graph fingerprint and stats, id watermark) plus one flat binary file per
//! shard, `shard-NNNN.bin`, holding that shard's views with their frozen
//! [`CompactView`] columns written verbatim:
//!
//! ```text
//! offset  size  field
//! 0       8     magic "GPVSHARD"
//! 8       4     format version (u32 LE, currently 1)
//! 12      8     FNV-1a checksum over everything after this field (u64 LE)
//! 20      ...   payload:
//!   8           graph fingerprint (u64 LE)
//!   4           view count (u32 LE)
//!   ...         interned name table: count (u32 LE), then per name
//!               byte length (u32 LE) + UTF-8 bytes
//!   ...         per view, in ascending id order:
//!     8         stable id (u64 LE)
//!     4         name index into the table (u32 LE)
//!     4 + n     pattern JSON byte length (u32 LE) + bytes
//!     4         np = node-set count (u32 LE)
//!     4         ne = edge-set count (u32 LE)
//!     4(np+1)   node offsets (u32 LE each)
//!     4·nn      node ids, nn = last node offset (u32 LE each)
//!     4(ne+1)   edge offsets (u32 LE each)
//!     8·nр      pairs, np = last edge offset (2 × u32 LE each)
//! ```
//!
//! Everything is little-endian and position-independent: [`decode_shard`]
//! reads from any caller-provided `&[u8]` — a freshly read `Vec<u8>` or an
//! `mmap`ed region — with bounds-checked cursor reads and no `unsafe`, so a
//! truncated, bit-flipped or crafted file yields a clean [`ShardError`],
//! never a panic or undefined behavior. Encoding is deterministic (views
//! sorted by id, names interned in first-appearance order), so
//! save → load → save reproduces byte-identical files.

use crate::compact::CompactView;
use crate::view::ViewDef;
use gpv_graph::stats::GraphStats;
use gpv_graph::NodeId;
use serde::{Deserialize, Serialize};

/// Magic bytes opening every shard file.
pub const SHARD_MAGIC: [u8; 8] = *b"GPVSHARD";

/// Current shard format version. Bump on any layout change; readers reject
/// versions they do not understand instead of guessing.
pub const SHARD_VERSION: u32 = 1;

/// `meta.json` — the directory-level header tying the shard files together.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StoreMeta {
    /// Shard format version (must equal [`SHARD_VERSION`]).
    pub format_version: u32,
    /// Number of `shard-NNNN.bin` files (and of in-memory shards on load,
    /// so id → shard routing reproduces exactly).
    pub shard_count: u32,
    /// Fingerprint of the graph the extensions were materialized against.
    pub graph_fingerprint: u64,
    /// Next stable id the store would hand out (ids are never reused).
    pub next_id: u64,
    /// Statistics of that graph, for costing fallback plans after a load.
    pub graph_stats: Option<GraphStats>,
}

/// Errors from shard encode/decode and store save/load.
#[derive(Debug)]
pub enum ShardError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// `meta.json` (de)serialization failure.
    Json(serde_json::Error),
    /// The file does not open with [`SHARD_MAGIC`].
    BadMagic,
    /// The file's format version is not one this reader understands.
    BadVersion(u32),
    /// The payload checksum does not match the header.
    BadChecksum {
        /// Checksum recorded in the file header.
        expected: u64,
        /// Checksum of the payload as read.
        actual: u64,
    },
    /// The file ends before a field it promises.
    Truncated {
        /// Bytes the next field needs.
        needed: usize,
        /// Bytes remaining.
        available: usize,
    },
    /// Structurally invalid contents (bad offsets, non-canonical sets,
    /// invalid UTF-8 or pattern JSON, trailing bytes).
    Malformed(String),
    /// A shard was written for a different graph than `meta.json` claims,
    /// or the loaded store is handed a different graph than it was saved
    /// for.
    GraphMismatch {
        /// Fingerprint expected.
        expected: u64,
        /// Fingerprint found.
        actual: u64,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "shard i/o: {e}"),
            ShardError::Json(e) => write!(f, "store meta json: {e}"),
            ShardError::BadMagic => write!(f, "not a gpv shard file (bad magic)"),
            ShardError::BadVersion(v) => {
                write!(f, "unsupported shard format version {v} (reader speaks {SHARD_VERSION})")
            }
            ShardError::BadChecksum { expected, actual } => write!(
                f,
                "shard checksum mismatch: header says {expected:#018x}, payload hashes to {actual:#018x}"
            ),
            ShardError::Truncated { needed, available } => write!(
                f,
                "shard file truncated: next field needs {needed} bytes, {available} remain"
            ),
            ShardError::Malformed(what) => write!(f, "malformed shard: {what}"),
            ShardError::GraphMismatch { expected, actual } => write!(
                f,
                "store was saved for graph {expected:#x}, not {actual:#x}"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e)
    }
}

impl From<serde_json::Error> for ShardError {
    fn from(e: serde_json::Error) -> Self {
        ShardError::Json(e)
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Encodes one shard's views (which the caller supplies in ascending id
/// order — encoding is deterministic) into the flat file format.
pub fn encode_shard(views: &[(u64, &ViewDef, &CompactView)], graph_fingerprint: u64) -> Vec<u8> {
    // Interned name table, first-appearance order.
    let mut names: Vec<&str> = Vec::new();
    let mut name_idx: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
    for (_, def, _) in views {
        let name = def.name.as_str();
        if !name_idx.contains_key(name) {
            name_idx.insert(name, names.len() as u32);
            names.push(name);
        }
    }

    let mut payload = Vec::new();
    put_u64(&mut payload, graph_fingerprint);
    put_u32(&mut payload, views.len() as u32);
    put_u32(&mut payload, names.len() as u32);
    for name in &names {
        put_u32(&mut payload, name.len() as u32);
        payload.extend_from_slice(name.as_bytes());
    }
    for (id, def, ext) in views {
        put_u64(&mut payload, *id);
        put_u32(&mut payload, name_idx[def.name.as_str()]);
        let pat = serde_json::to_string(&def.pattern).expect("patterns serialize");
        put_u32(&mut payload, pat.len() as u32);
        payload.extend_from_slice(pat.as_bytes());
        let (edge_offsets, pairs, node_offsets, nodes) = ext.columns();
        put_u32(&mut payload, (node_offsets.len() - 1) as u32);
        put_u32(&mut payload, (edge_offsets.len() - 1) as u32);
        for &o in node_offsets {
            put_u32(&mut payload, o);
        }
        for &n in nodes {
            put_u32(&mut payload, n.0);
        }
        for &o in edge_offsets {
            put_u32(&mut payload, o);
        }
        for &(a, b) in pairs {
            put_u32(&mut payload, a.0);
            put_u32(&mut payload, b.0);
        }
    }

    let mut out = Vec::with_capacity(20 + payload.len());
    out.extend_from_slice(&SHARD_MAGIC);
    put_u32(&mut out, SHARD_VERSION);
    put_u64(&mut out, crate::fnv::fnv1a(&payload));
    out.extend_from_slice(&payload);
    out
}

/// A decoded shard file: the graph it belongs to and its views with their
/// stable ids.
#[derive(Debug)]
pub struct ShardContents {
    /// Fingerprint of the graph the extensions were materialized against.
    pub graph_fingerprint: u64,
    /// `(stable id, definition, frozen extension)` per view, in file order.
    pub views: Vec<(u64, ViewDef, CompactView)>,
}

/// Bounds-checked little-endian reader over a caller-provided buffer —
/// works identically on an owned `Vec<u8>` and an `mmap`ed region.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ShardError> {
        let available = self.bytes.len() - self.pos;
        if n > available {
            return Err(ShardError::Truncated {
                needed: n,
                available,
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, ShardError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, ShardError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// A `count`-element u32 column. `count` was itself read from the file,
    /// so cap it against the bytes actually remaining before allocating.
    fn u32s(&mut self, count: usize) -> Result<Vec<u32>, ShardError> {
        let raw = self.take(
            count
                .checked_mul(4)
                .ok_or(ShardError::Malformed("column length overflows".into()))?,
        )?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }
}

/// Decodes one shard file from a caller-provided buffer, validating magic,
/// version, checksum and every structural invariant. Never panics on
/// arbitrary input.
pub fn decode_shard(bytes: &[u8]) -> Result<ShardContents, ShardError> {
    let mut c = Cursor { bytes, pos: 0 };
    if c.take(8)? != SHARD_MAGIC {
        return Err(ShardError::BadMagic);
    }
    let version = c.u32()?;
    if version != SHARD_VERSION {
        return Err(ShardError::BadVersion(version));
    }
    let expected = c.u64()?;
    let actual = crate::fnv::fnv1a(&bytes[c.pos..]);
    if actual != expected {
        return Err(ShardError::BadChecksum { expected, actual });
    }

    let graph_fingerprint = c.u64()?;
    let view_count = c.u32()? as usize;
    let name_count = c.u32()? as usize;
    let mut names: Vec<String> = Vec::new();
    for _ in 0..name_count {
        let len = c.u32()? as usize;
        let raw = c.take(len)?;
        names.push(
            std::str::from_utf8(raw)
                .map_err(|_| ShardError::Malformed("view name not UTF-8".into()))?
                .to_string(),
        );
    }

    let mut views = Vec::new();
    let mut last_id: Option<u64> = None;
    for _ in 0..view_count {
        let id = c.u64()?;
        if last_id.is_some_and(|prev| prev >= id) {
            return Err(ShardError::Malformed(
                "view ids not strictly ascending".into(),
            ));
        }
        last_id = Some(id);
        let ni = c.u32()? as usize;
        let name = names
            .get(ni)
            .ok_or_else(|| ShardError::Malformed(format!("name index {ni} out of table")))?
            .clone();
        let pat_len = c.u32()? as usize;
        let pat_raw = c.take(pat_len)?;
        let pat_str = std::str::from_utf8(pat_raw)
            .map_err(|_| ShardError::Malformed("pattern json not UTF-8".into()))?;
        let pattern = serde_json::from_str(pat_str)
            .map_err(|e| ShardError::Malformed(format!("pattern json: {e}")))?;
        let np = c.u32()? as usize;
        let ne = c.u32()? as usize;
        let node_offsets = c.u32s(np + 1)?;
        let nn = *node_offsets.last().expect("np + 1 >= 1") as usize;
        let nodes: Vec<NodeId> = c.u32s(nn)?.into_iter().map(NodeId).collect();
        let edge_offsets = c.u32s(ne + 1)?;
        let pair_count = *edge_offsets.last().expect("ne + 1 >= 1") as usize;
        let raw_pairs = c.u32s(
            pair_count
                .checked_mul(2)
                .ok_or(ShardError::Malformed("pair count overflows".into()))?,
        )?;
        let pairs: Vec<(NodeId, NodeId)> = raw_pairs
            .chunks_exact(2)
            .map(|p| (NodeId(p[0]), NodeId(p[1])))
            .collect();
        let ext = CompactView::from_columns(edge_offsets, pairs, node_offsets, nodes)
            .map_err(ShardError::Malformed)?;
        views.push((id, ViewDef::new(name, pattern), ext));
    }
    if c.pos != bytes.len() {
        return Err(ShardError::Malformed(format!(
            "{} trailing bytes after last view",
            bytes.len() - c.pos
        )));
    }
    Ok(ShardContents {
        graph_fingerprint,
        views,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpv_matching::result::MatchResult;
    use gpv_pattern::PatternBuilder;

    fn view(name: &str, x: &str, y: &str) -> ViewDef {
        let mut b = PatternBuilder::new();
        let u = b.node_labeled(x);
        let v = b.node_labeled(y);
        b.edge(u, v);
        ViewDef::new(name, b.build().unwrap())
    }

    fn ext(pairs: Vec<(u32, u32)>) -> CompactView {
        let (vs, ws): (Vec<_>, Vec<_>) = pairs.iter().copied().unzip();
        CompactView::freeze(&MatchResult {
            node_matches: vec![
                vs.into_iter().map(NodeId).collect(),
                ws.into_iter().map(NodeId).collect(),
            ],
            edge_matches: vec![pairs
                .into_iter()
                .map(|(a, b)| (NodeId(a), NodeId(b)))
                .collect()],
        })
    }

    fn sample() -> Vec<(u64, ViewDef, CompactView)> {
        vec![
            (0, view("vab", "A", "B"), ext(vec![(0, 1), (2, 3)])),
            (3, view("vbc", "B", "C"), ext(vec![(1, 4)])),
            (7, view("vab", "A", "B"), CompactView::empty()),
        ]
    }

    fn encode_sample() -> Vec<u8> {
        let vs = sample();
        let refs: Vec<(u64, &ViewDef, &CompactView)> =
            vs.iter().map(|(id, d, e)| (*id, d, e)).collect();
        encode_shard(&refs, 0xfeed)
    }

    #[test]
    fn roundtrip_is_exact_and_deterministic() {
        let bytes = encode_shard(
            &sample()
                .iter()
                .map(|(id, d, e)| (*id, d, e))
                .collect::<Vec<_>>(),
            0xfeed,
        );
        assert_eq!(&bytes[..8], b"GPVSHARD");
        let decoded = decode_shard(&bytes).unwrap();
        assert_eq!(decoded.graph_fingerprint, 0xfeed);
        let orig = sample();
        assert_eq!(decoded.views.len(), orig.len());
        for ((id, def, ext), (oid, odef, oext)) in decoded.views.iter().zip(&orig) {
            assert_eq!(id, oid);
            assert_eq!(def, odef);
            assert_eq!(ext, oext);
        }
        // Re-encoding the decode reproduces the bytes exactly.
        let refs: Vec<(u64, &ViewDef, &CompactView)> =
            decoded.views.iter().map(|(id, d, e)| (*id, d, e)).collect();
        assert_eq!(encode_shard(&refs, decoded.graph_fingerprint), bytes);
    }

    #[test]
    fn empty_shard_roundtrips() {
        let bytes = encode_shard(&[], 9);
        let decoded = decode_shard(&bytes).unwrap();
        assert_eq!(decoded.graph_fingerprint, 9);
        assert!(decoded.views.is_empty());
    }

    #[test]
    fn truncation_at_every_prefix_is_a_clean_error() {
        let bytes = encode_sample();
        for n in 0..bytes.len() {
            let err = decode_shard(&bytes[..n]).expect_err("prefix must not decode");
            assert!(
                matches!(
                    err,
                    ShardError::Truncated { .. }
                        | ShardError::BadMagic
                        | ShardError::BadChecksum { .. }
                ),
                "prefix {n}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut bytes = encode_sample();
        bytes[0] ^= 0xff;
        assert!(matches!(decode_shard(&bytes), Err(ShardError::BadMagic)));

        let mut bytes = encode_sample();
        bytes[8] = 99; // version field
        assert!(matches!(
            decode_shard(&bytes),
            Err(ShardError::BadVersion(99))
        ));
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let clean = encode_sample();
        // Flip one bit in a spread of payload positions (offsets, ids,
        // name bytes, pairs): every flip must be caught by the checksum.
        for pos in (20..clean.len()).step_by(7) {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x10;
            assert!(
                matches!(decode_shard(&bytes), Err(ShardError::BadChecksum { .. })),
                "flip at {pos} slipped past the checksum"
            );
        }
    }

    #[test]
    fn forged_checksum_still_hits_structural_validation() {
        // An attacker fixing up the checksum after corrupting offsets must
        // land on Malformed/Truncated, never a panic.
        let clean = encode_sample();
        for pos in (20..clean.len()).step_by(3) {
            let mut bytes = clean.clone();
            bytes[pos] = bytes[pos].wrapping_add(1);
            let sum = crate::fnv::fnv1a(&bytes[20..]);
            bytes[12..20].copy_from_slice(&sum.to_le_bytes());
            // Any outcome is fine except a panic — including a lucky decode
            // whose columns still validate; the checksum test above covers
            // integrity, this one covers memory safety of the parser.
            let _ = decode_shard(&bytes);
        }
    }
}
