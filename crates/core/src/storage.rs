//! Persistence for view caches.
//!
//! The paper's method presumes views are "defined, materialized and cached";
//! this module makes the cache durable: a [`ViewCache`] bundles the view
//! definitions with their extensions (and, for bounded views, the distance
//! index baked into the extensions) and round-trips through JSON. A cache
//! records the fingerprint of the graph it was materialized against so stale
//! caches are detected on load.

use crate::bview::{BoundedViewExtensions, BoundedViewSet};
use crate::view::{ViewExtensions, ViewSet};
use gpv_graph::DataGraph;
use serde::{Deserialize, Serialize};

/// A cheap structural fingerprint of a graph: node/edge counts plus a
/// FNV-1a hash over the edge list. Not cryptographic — just enough to catch
/// "this cache belongs to a different graph".
pub fn graph_fingerprint(g: &DataGraph) -> u64 {
    let mut h = crate::fnv::Fnv1a::new();
    h.write_u64_coarse(g.node_count() as u64);
    h.write_u64_coarse(g.edge_count() as u64);
    for (u, v) in g.edges() {
        h.write_u64_coarse(((u.0 as u64) << 32) | v.0 as u64);
    }
    h.finish()
}

/// A durable plain-view cache.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ViewCache {
    /// Fingerprint of the graph the extensions were computed on.
    pub graph_fingerprint: u64,
    /// Statistics of that graph, captured at materialization time so a
    /// revived [`QueryEngine`](crate::engine::QueryEngine) can still cost
    /// hybrid/direct fallback plans without re-scanning `G`.
    pub graph_stats: Option<gpv_graph::stats::GraphStats>,
    /// The view definitions.
    pub views: ViewSet,
    /// Their materialized extensions.
    pub extensions: ViewExtensions,
}

/// A durable bounded-view cache (extensions carry `I(V)` distances).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BoundedViewCache {
    /// Fingerprint of the graph the extensions were computed on.
    pub graph_fingerprint: u64,
    /// The bounded view definitions.
    pub views: BoundedViewSet,
    /// Their materialized extensions with distances.
    pub extensions: BoundedViewExtensions,
}

/// Errors from cache load/save.
#[derive(Debug)]
pub enum CacheError {
    /// I/O failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// The cache was materialized against a different graph.
    StaleCache {
        /// Fingerprint stored in the cache file.
        expected: u64,
        /// Fingerprint of the graph supplied at load time.
        actual: u64,
    },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Io(e) => write!(f, "cache i/o: {e}"),
            CacheError::Json(e) => write!(f, "cache json: {e}"),
            CacheError::StaleCache { expected, actual } => write!(
                f,
                "stale view cache: materialized for graph {expected:#x}, loaded against {actual:#x}"
            ),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<std::io::Error> for CacheError {
    fn from(e: std::io::Error) -> Self {
        CacheError::Io(e)
    }
}

impl From<serde_json::Error> for CacheError {
    fn from(e: serde_json::Error) -> Self {
        CacheError::Json(e)
    }
}

impl ViewCache {
    /// Materializes `views` on `g` and bundles the result.
    pub fn build(views: ViewSet, g: &DataGraph) -> Self {
        let extensions = crate::view::materialize(&views, g);
        ViewCache {
            graph_fingerprint: graph_fingerprint(g),
            graph_stats: Some(gpv_graph::stats::stats(g)),
            views,
            extensions,
        }
    }

    /// Saves to a JSON file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), CacheError> {
        let f = std::fs::File::create(path)?;
        serde_json::to_writer(std::io::BufWriter::new(f), self)?;
        Ok(())
    }

    /// Loads from a JSON file, verifying the cache belongs to `g`.
    pub fn load(path: impl AsRef<std::path::Path>, g: &DataGraph) -> Result<Self, CacheError> {
        let f = std::fs::File::open(path)?;
        let cache: ViewCache = serde_json::from_reader(std::io::BufReader::new(f))?;
        let actual = graph_fingerprint(g);
        if cache.graph_fingerprint != actual {
            return Err(CacheError::StaleCache {
                expected: cache.graph_fingerprint,
                actual,
            });
        }
        Ok(cache)
    }

    /// Shards this monolithic cache into a concurrently-writable
    /// [`ViewStore`](crate::store::ViewStore) — the durable-file →
    /// serving-process handoff (`ViewStore::to_cache` goes back).
    pub fn into_store(self, shards: usize) -> crate::store::ViewStore {
        crate::store::ViewStore::from_cache(self, shards)
    }
}

impl BoundedViewCache {
    /// Materializes bounded `views` on `g` and bundles the result.
    pub fn build(views: BoundedViewSet, g: &DataGraph) -> Self {
        let extensions = crate::bview::bmaterialize(&views, g);
        BoundedViewCache {
            graph_fingerprint: graph_fingerprint(g),
            views,
            extensions,
        }
    }

    /// Saves to a JSON file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), CacheError> {
        let f = std::fs::File::create(path)?;
        serde_json::to_writer(std::io::BufWriter::new(f), self)?;
        Ok(())
    }

    /// Loads from a JSON file, verifying the cache belongs to `g`.
    pub fn load(path: impl AsRef<std::path::Path>, g: &DataGraph) -> Result<Self, CacheError> {
        let f = std::fs::File::open(path)?;
        let cache: BoundedViewCache = serde_json::from_reader(std::io::BufReader::new(f))?;
        let actual = graph_fingerprint(g);
        if cache.graph_fingerprint != actual {
            return Err(CacheError::StaleCache {
                expected: cache.graph_fingerprint,
                actual,
            });
        }
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::contain;
    use crate::matchjoin::match_join;
    use crate::view::ViewDef;
    use gpv_graph::GraphBuilder;
    use gpv_matching::simulation::match_pattern;
    use gpv_pattern::PatternBuilder;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("gpv-storage-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{name}", std::process::id()))
    }

    fn setup() -> (gpv_graph::DataGraph, ViewSet, gpv_pattern::Pattern) {
        let mut b = GraphBuilder::new();
        let a = b.add_node(["A"]);
        let c = b.add_node(["B"]);
        let d = b.add_node(["C"]);
        b.add_edge(a, c);
        b.add_edge(c, d);
        let g = b.build();

        let mk = |x: &str, y: &str| {
            let mut p = PatternBuilder::new();
            let u = p.node_labeled(x);
            let v = p.node_labeled(y);
            p.edge(u, v);
            p.build().unwrap()
        };
        let views = ViewSet::new(vec![
            ViewDef::new("vab", mk("A", "B")),
            ViewDef::new("vbc", mk("B", "C")),
        ]);
        let mut p = PatternBuilder::new();
        let u = p.node_labeled("A");
        let v = p.node_labeled("B");
        let w = p.node_labeled("C");
        p.edge(u, v);
        p.edge(v, w);
        (g, views, p.build().unwrap())
    }

    #[test]
    fn roundtrip_and_answer_from_loaded_cache() {
        let (g, views, q) = setup();
        let cache = ViewCache::build(views, &g);
        let path = tmp("plain.json");
        cache.save(&path).unwrap();

        let loaded = ViewCache::load(&path, &g).unwrap();
        assert_eq!(loaded.extensions, cache.extensions);
        let plan = contain(&q, &loaded.views).unwrap();
        let r = match_join(&q, &plan, &loaded.extensions).unwrap();
        assert_eq!(r, match_pattern(&q, &g));
    }

    #[test]
    fn stale_cache_rejected() {
        let (g, views, _) = setup();
        let cache = ViewCache::build(views, &g);
        let path = tmp("stale.json");
        cache.save(&path).unwrap();

        // A different graph (one extra edge).
        let mut b = GraphBuilder::new();
        let a = b.add_node(["A"]);
        let c = b.add_node(["B"]);
        let d = b.add_node(["C"]);
        b.add_edge(a, c);
        b.add_edge(c, d);
        b.add_edge(a, d);
        let g2 = b.build();
        assert!(matches!(
            ViewCache::load(&path, &g2),
            Err(CacheError::StaleCache { .. })
        ));
    }

    #[test]
    fn bounded_cache_roundtrip() {
        use crate::bcontainment::bcontain;
        use crate::bmatchjoin::bmatch_join;
        use crate::bview::BoundedViewDef;
        use gpv_matching::bounded::bmatch_pattern;
        let (g, _, _) = setup();
        let mut p = PatternBuilder::new();
        let u = p.node_labeled("A");
        let v = p.node_labeled("C");
        p.edge_bounded(u, v, 2);
        let qb = p.build_bounded().unwrap();
        let views = BoundedViewSet::new(vec![BoundedViewDef::new("v", qb.clone())]);
        let cache = BoundedViewCache::build(views, &g);
        let path = tmp("bounded.json");
        cache.save(&path).unwrap();

        let loaded = BoundedViewCache::load(&path, &g).unwrap();
        let plan = bcontain(&qb, &loaded.views).unwrap();
        let r = bmatch_join(&qb, &plan, &loaded.extensions).unwrap();
        assert_eq!(r, bmatch_pattern(&qb, &g));
    }

    #[test]
    fn fingerprint_sensitive_to_edges() {
        let (g, _, _) = setup();
        let fp1 = graph_fingerprint(&g);
        let mut b = GraphBuilder::new();
        let a = b.add_node(["A"]);
        let c = b.add_node(["B"]);
        let d = b.add_node(["C"]);
        b.add_edge(a, c);
        b.add_edge(d, c); // reversed second edge
        let g2 = b.build();
        assert_ne!(fp1, graph_fingerprint(&g2));
        assert_eq!(fp1, graph_fingerprint(&g));
    }
}
