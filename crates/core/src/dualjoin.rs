//! Answering **dual-simulation** pattern queries using views (the paper's
//! §VIII extension: "our techniques can be readily extended to revisions of
//! simulation such as dual and strong simulation \[28\], retaining the same
//! complexity").
//!
//! Everything mirrors the plain pipeline with backward edge-preservation
//! added at each level:
//!
//! * view matches come from [`simulate_pattern_dual`] — a view covers a
//!   query edge only when it dual-simulates into the query;
//! * extensions are materialized with `dual_match_pattern`;
//! * `dual_match_join` runs the fixpoint with *two* support counters per
//!   edge (forward witnesses for the source, backward witnesses for the
//!   target).
//!
//! Dual simulations compose exactly like plain ones, so the single-witness
//! merge narrowing and the Theorem-1-style equivalence
//! `DualMatchJoin(V(G)) == DualMatch(G)` both carry over (property-tested
//! in `tests/`).

use crate::containment::{ContainmentPlan, ViewEdgeRef};
use crate::matchjoin::JoinError;
use crate::view::{ViewExtensions, ViewSet};
use gpv_graph::{BitSet, NodeId};
use gpv_matching::dual::dual_match_pattern;
use gpv_matching::pattern_sim::simulate_pattern_dual;
use gpv_matching::result::MatchResult;
use gpv_pattern::{Pattern, PatternEdgeId};
use std::collections::HashMap;

/// `Dcontain`: decides whether `Qs` is contained in `V` under dual
/// simulation, returning the witnessing λ.
pub fn dual_contain(q: &Pattern, views: &ViewSet) -> Option<ContainmentPlan> {
    let ne = q.edge_count();
    let mut lambda: Vec<Vec<ViewEdgeRef>> = vec![Vec::new(); ne];
    let mut covered = vec![false; ne];
    for (vi, vdef) in views.iter() {
        let Some(sim) = simulate_pattern_dual(&vdef.pattern, q) else {
            continue;
        };
        for (vei, qedges) in sim.edge_matches.iter().enumerate() {
            for &qe in qedges {
                covered[qe.index()] = true;
                lambda[qe.index()].push(ViewEdgeRef {
                    view: vi,
                    edge: PatternEdgeId(vei as u32),
                });
            }
        }
    }
    if covered.iter().all(|&c| c) {
        let mut used: Vec<usize> = lambda
            .iter()
            .flat_map(|v| v.iter().map(|r| r.view))
            .collect();
        used.sort_unstable();
        used.dedup();
        Some(ContainmentPlan {
            lambda,
            used_views: used,
        })
    } else {
        None
    }
}

/// Materializes views with the dual-simulation engine, freezing each result
/// into its columnar arena region.
pub fn dual_materialize(views: &ViewSet, g: &gpv_graph::DataGraph) -> ViewExtensions {
    ViewExtensions {
        extensions: views
            .views()
            .iter()
            .map(|v| {
                std::sync::Arc::new(crate::compact::CompactView::freeze(&dual_match_pattern(
                    &v.pattern, g,
                )))
            })
            .collect(),
    }
}

/// `DualMatchJoin`: computes the dual-simulation result of `q` from dual
/// view extensions, without accessing `G`.
pub fn dual_match_join(
    q: &Pattern,
    plan: &ContainmentPlan,
    ext: &ViewExtensions,
) -> Result<MatchResult, JoinError> {
    if q.edge_count() == 0 {
        return Err(JoinError::NoEdges);
    }
    if plan.lambda.len() != q.edge_count() {
        return Err(JoinError::PlanMismatch);
    }
    // Single-witness merge (dual simulations compose).
    let mut merged: Vec<Vec<(NodeId, NodeId)>> = Vec::with_capacity(q.edge_count());
    for entries in &plan.lambda {
        for r in entries {
            if r.view >= ext.extensions.len() {
                return Err(JoinError::ViewOutOfRange(r.view));
            }
        }
        let best = entries
            .iter()
            .min_by_key(|r| ext.edge_set(r.view, r.edge).len())
            .ok_or(JoinError::PlanMismatch)?;
        merged.push(ext.edge_set(best.view, best.edge).to_vec());
    }
    Ok(dual_fixpoint(q, merged))
}

/// Two-directional support-counter fixpoint over merged candidate sets.
fn dual_fixpoint(q: &Pattern, merged: Vec<Vec<(NodeId, NodeId)>>) -> MatchResult {
    let np = q.node_count();
    let ne = q.edge_count();

    // Compact node ids.
    let mut index: HashMap<NodeId, u32> = HashMap::new();
    for set in &merged {
        for &(s, t) in set {
            let next = index.len() as u32;
            index.entry(s).or_insert(next);
            let next = index.len() as u32;
            index.entry(t).or_insert(next);
        }
    }
    let m = index.len();
    let mut rev_index = vec![NodeId(0); m];
    for (&node, &i) in &index {
        rev_index[i as usize] = node;
    }

    let mut pairs: Vec<Vec<(u32, u32)>> = Vec::with_capacity(ne);
    let mut srcs_of: Vec<BitSet> = Vec::with_capacity(ne);
    let mut tgts_of: Vec<BitSet> = Vec::with_capacity(ne);
    for set in &merged {
        let mut ps = Vec::with_capacity(set.len());
        let mut sb = BitSet::new(m);
        let mut tb = BitSet::new(m);
        for &(s, t) in set {
            let (cs, ct) = (index[&s], index[&t]);
            ps.push((cs, ct));
            sb.insert(cs as usize);
            tb.insert(ct as usize);
        }
        pairs.push(ps);
        srcs_of.push(sb);
        tgts_of.push(tb);
    }

    // Dual candidates: sources of every out-edge AND targets of every
    // in-edge.
    let mut cand: Vec<BitSet> = Vec::with_capacity(np);
    for u in q.nodes() {
        let mut set: Option<BitSet> = None;
        for &(_, e) in q.out_edges(u) {
            match &mut set {
                None => set = Some(srcs_of[e.index()].clone()),
                Some(s) => s.intersect_with(&srcs_of[e.index()]),
            }
        }
        for &(_, e) in q.in_edges(u) {
            match &mut set {
                None => set = Some(tgts_of[e.index()].clone()),
                Some(s) => s.intersect_with(&tgts_of[e.index()]),
            }
        }
        let set = set.unwrap_or_else(|| BitSet::new(m));
        if set.is_empty() {
            return MatchResult::empty();
        }
        cand.push(set);
    }

    // Per-edge CSR both ways.
    let build_csr = |ps: &[(u32, u32)], by_src: bool| -> (Vec<u32>, Vec<u32>) {
        let mut off = vec![0u32; m + 1];
        for &(s, t) in ps {
            let k = if by_src { s } else { t };
            off[k as usize + 1] += 1;
        }
        for i in 0..m {
            off[i + 1] += off[i];
        }
        let mut cur = off.clone();
        let mut data = vec![0u32; ps.len()];
        for &(s, t) in ps {
            let (k, v) = if by_src { (s, t) } else { (t, s) };
            data[cur[k as usize] as usize] = v;
            cur[k as usize] += 1;
        }
        (off, data)
    };
    let fwd: Vec<(Vec<u32>, Vec<u32>)> = pairs.iter().map(|ps| build_csr(ps, true)).collect();
    let rev: Vec<(Vec<u32>, Vec<u32>)> = pairs.iter().map(|ps| build_csr(ps, false)).collect();

    // Forward support (source side) and backward support (target side).
    let mut sup_f: Vec<Vec<u32>> = vec![vec![0; m]; ne];
    let mut sup_b: Vec<Vec<u32>> = vec![vec![0; m]; ne];
    let mut worklist: Vec<(u32, u32)> = Vec::new(); // (pattern node, compact node)
    let mut scheduled: Vec<BitSet> = vec![BitSet::new(m); np];

    for u in q.nodes() {
        for &(t, e) in q.out_edges(u) {
            let (fo, ft) = &fwd[e.index()];
            let ct = &cand[t.index()];
            for v in cand[u.index()].iter() {
                let (a, b) = (fo[v] as usize, fo[v + 1] as usize);
                let cnt = ft[a..b]
                    .iter()
                    .filter(|&&t2| ct.contains(t2 as usize))
                    .count() as u32;
                sup_f[e.index()][v] = cnt;
                if cnt == 0 && scheduled[u.index()].insert(v) {
                    worklist.push((u.0, v as u32));
                }
            }
        }
        for &(s, e) in q.in_edges(u) {
            let (ro, rs) = &rev[e.index()];
            let cs = &cand[s.index()];
            for v in cand[u.index()].iter() {
                let (a, b) = (ro[v] as usize, ro[v + 1] as usize);
                let cnt = rs[a..b]
                    .iter()
                    .filter(|&&s2| cs.contains(s2 as usize))
                    .count() as u32;
                sup_b[e.index()][v] = cnt;
                if cnt == 0 && scheduled[u.index()].insert(v) {
                    worklist.push((u.0, v as u32));
                }
            }
        }
    }

    let mut head = 0;
    while head < worklist.len() {
        let (u, v) = worklist[head];
        head += 1;
        let u = gpv_pattern::PatternNodeId(u);
        if !cand[u.index()].remove(v as usize) {
            continue;
        }
        if cand[u.index()].is_empty() {
            return MatchResult::empty();
        }
        // Forward propagation to predecessors.
        for &(u0, e0) in q.in_edges(u) {
            let (ro, rs) = &rev[e0.index()];
            let (a, b) = (ro[v as usize] as usize, ro[v as usize + 1] as usize);
            for &w in &rs[a..b] {
                if cand[u0.index()].contains(w as usize)
                    && !scheduled[u0.index()].contains(w as usize)
                {
                    let s = &mut sup_f[e0.index()][w as usize];
                    *s = s.saturating_sub(1);
                    if *s == 0 {
                        scheduled[u0.index()].insert(w as usize);
                        worklist.push((u0.0, w));
                    }
                }
            }
        }
        // Backward propagation to successors.
        for &(t2, e2) in q.out_edges(u) {
            let (fo, ft) = &fwd[e2.index()];
            let (a, b) = (fo[v as usize] as usize, fo[v as usize + 1] as usize);
            for &w in &ft[a..b] {
                if cand[t2.index()].contains(w as usize)
                    && !scheduled[t2.index()].contains(w as usize)
                {
                    let s = &mut sup_b[e2.index()][w as usize];
                    *s = s.saturating_sub(1);
                    if *s == 0 {
                        scheduled[t2.index()].insert(w as usize);
                        worklist.push((t2.0, w));
                    }
                }
            }
        }
    }

    // Final sets.
    let mut out = Vec::with_capacity(ne);
    let mut node_sets: Vec<std::collections::HashSet<NodeId>> =
        vec![std::collections::HashSet::new(); np];
    for (ei, ps) in pairs.into_iter().enumerate() {
        let (u, t) = q.edge(PatternEdgeId(ei as u32));
        let filtered: Vec<(NodeId, NodeId)> = ps
            .into_iter()
            .filter(|&(s, w)| {
                cand[u.index()].contains(s as usize) && cand[t.index()].contains(w as usize)
            })
            .map(|(s, w)| {
                let (a, b) = (rev_index[s as usize], rev_index[w as usize]);
                node_sets[u.index()].insert(a);
                node_sets[t.index()].insert(b);
                (a, b)
            })
            .collect();
        if filtered.is_empty() {
            return MatchResult::empty();
        }
        out.push(filtered);
    }
    if node_sets.iter().any(std::collections::HashSet::is_empty) {
        return MatchResult::empty();
    }
    MatchResult::new(
        q,
        node_sets
            .into_iter()
            .map(|s| s.into_iter().collect())
            .collect(),
        out,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::ViewDef;
    use gpv_graph::GraphBuilder;
    use gpv_pattern::PatternBuilder;

    /// G where dual prunes more than plain: A1 -> B1 (B1 lacks a C pred),
    /// A2 -> B2, C1 -> B2.
    fn setup() -> (gpv_graph::DataGraph, Pattern, ViewSet) {
        let mut b = GraphBuilder::new();
        let a1 = b.add_node(["A"]);
        let b1 = b.add_node(["B"]);
        let a2 = b.add_node(["A"]);
        let b2 = b.add_node(["B"]);
        let c1 = b.add_node(["C"]);
        b.add_edge(a1, b1);
        b.add_edge(a2, b2);
        b.add_edge(c1, b2);
        let g = b.build();

        let mut pb = PatternBuilder::new();
        let ua = pb.node_labeled("A");
        let ub = pb.node_labeled("B");
        let uc = pb.node_labeled("C");
        pb.edge(ua, ub);
        pb.edge(uc, ub);
        let q = pb.build().unwrap();

        // Views: the exact two edges.
        let mut v1 = PatternBuilder::new();
        let x = v1.node_labeled("A");
        let y = v1.node_labeled("B");
        v1.edge(x, y);
        let mut v2 = PatternBuilder::new();
        let x = v2.node_labeled("C");
        let y = v2.node_labeled("B");
        v2.edge(x, y);
        let views = ViewSet::new(vec![
            ViewDef::new("VA", v1.build().unwrap()),
            ViewDef::new("VC", v2.build().unwrap()),
        ]);
        (g, q, views)
    }

    #[test]
    fn dual_join_equals_dual_match() {
        let (g, q, views) = setup();
        let plan = dual_contain(&q, &views).expect("contained under dual sim");
        let ext = dual_materialize(&views, &g);
        let joined = dual_match_join(&q, &plan, &ext).unwrap();
        let direct = dual_match_pattern(&q, &g);
        assert_eq!(joined, direct);
        assert!(!direct.is_empty());
        // B1 must be gone from the (A,B) matches: only (A2,B2) remains.
        assert_eq!(direct.edge_matches[0], vec![(NodeId(2), NodeId(3))]);
    }

    #[test]
    fn dual_contain_stricter_than_plain() {
        use crate::containment::contain;
        // View with an in-edge requirement that the query lacks.
        let mut vb = PatternBuilder::new();
        let a = vb.node_labeled("A");
        let bb = vb.node_labeled("B");
        let c = vb.node_labeled("C");
        vb.edge(a, bb);
        vb.edge(c, bb);
        let v = vb.build().unwrap();

        let mut qb = PatternBuilder::new();
        let a = qb.node_labeled("A");
        let bb = qb.node_labeled("B");
        qb.edge(a, bb);
        let q = qb.build().unwrap();

        let views = ViewSet::new(vec![ViewDef::new("V", v)]);
        assert!(
            contain(&q, &views).is_none(),
            "plain also fails (C unmatched)"
        );
        assert!(dual_contain(&q, &views).is_none());
    }

    #[test]
    fn empty_when_views_empty() {
        let (_, q, views) = setup();
        let mut b = GraphBuilder::new();
        let x = b.add_node(["X"]);
        let y = b.add_node(["Y"]);
        b.add_edge(x, y);
        let g = b.build();
        let plan = dual_contain(&q, &views).unwrap();
        let ext = dual_materialize(&views, &g);
        let r = dual_match_join(&q, &plan, &ext).unwrap();
        assert!(r.is_empty());
        assert!(dual_match_pattern(&q, &g).is_empty());
    }
}
