//! # gpv-core — answering graph pattern queries using views
//!
//! The primary contribution of *Answering Graph Pattern Queries Using Views*
//! (Fan, Wang, Wu — ICDE 2014):
//!
//! * [`view`] — view definitions `V`, view sets, materialized extensions
//!   `V(G)` (§II-B);
//! * [`containment`] — pattern containment `Qs ⊑ V`, the `contain`
//!   algorithm and the mapping `λ` (Theorem 1, Prop. 7, Theorem 3), plus
//!   classical query containment (Cor. 4);
//! * [`mod@minimal`] — the quadratic `minimal` algorithm (Fig. 5, Theorem 5);
//! * [`mod@minimum`] — the greedy `O(log |Ep|)`-approximate `minimum` algorithm
//!   for the NP-complete MMCP (Theorem 6);
//! * [`matchjoin`] — `MatchJoin` (Fig. 2) with the naive fixpoint and the
//!   rank-based bottom-up optimization (Lemma 2);
//! * [`bview`] / [`bcontainment`] / [`bmatchjoin`] — the bounded-pattern
//!   counterparts `Bcontain` / `Bminimal` / `Bminimum` / `BMatchJoin` with
//!   the distance index `I(V)` (§VI);
//! * [`maintenance`] — incremental maintenance of materialized views
//!   (extension following the paper's pointer to \[15\]).
//!
//! ## The contract (Theorem 1 / Theorem 8)
//!
//! `Qs` can be answered using `V` **iff** `Qs ⊑ V`; when it is,
//! `match_join(q, contain(q, v).unwrap(), materialize(v, g))` equals
//! `match_pattern(q, g)` for *every* graph `g`, at cost
//! `O(|Qs||V(G)| + |V(G)|²)` — no access to `g`.
//!
//! ## The serving layers
//!
//! On top of the algorithms sit the scale-out layers grown beyond the
//! paper: [`engine`] (the planner: Analyze → Select → Execute over an
//! explicit [`plan`] IR costed by [`cost`]), [`store`] (the sharded,
//! concurrently-writable [`ViewStore`]), and [`service`] (the concurrent
//! [`ViewService`] batch facade with plan caching and service stats).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fnv;

pub mod bcontainment;
pub mod bmatchjoin;
pub mod bview;
pub mod compact;
pub mod containment;
pub mod cost;
pub mod delta;
pub mod differential;
pub mod dualjoin;
pub mod engine;
pub mod lint;
pub mod maintenance;
pub mod matchjoin;
pub mod minimal;
pub mod minimize;
pub mod minimum;
pub mod parallel;
pub mod partial;
pub mod plan;
pub mod selection;
pub mod service;
pub mod shard;
pub mod storage;
pub mod store;
pub mod verify;
pub mod view;

pub use bcontainment::{bcontain, bminimal, bminimum, bounded_query_contained, bounded_view_match};
pub use bmatchjoin::{bmatch_join, bmatch_join_threaded, bmatch_join_with};
pub use bview::{bmaterialize, BoundedViewDef, BoundedViewExtensions, BoundedViewSet};
pub use compact::{CompactBoundedExtensions, CompactBoundedView, CompactExtensions, CompactView};
pub use containment::{contain, query_contained, view_match, ContainmentPlan, ViewEdgeRef};
pub use cost::{CostEstimate, CostLog, CostModel, CostSample, SharedCostLog};
pub use delta::{EdgeDelta, ViewFootprint, ViewFootprintIndex};
pub use differential::{
    check_bounded, check_plain, BoundedOracle, DifferentialCase, DifferentialReport, Divergence,
    PlainOracle,
};
pub use dualjoin::{dual_contain, dual_match_join, dual_materialize};
pub use engine::{BoundedPlan, EngineConfig, EngineError, QueryEngine};
pub use lint::{lint_query, lint_views};
pub use maintenance::IncrementalView;
pub use matchjoin::{match_join, match_join_with, JoinError, JoinStats, JoinStrategy};
pub use minimal::{minimal, Selection};
pub use minimize::{minimize, Minimized};
pub use minimum::{alpha, minimum};
pub use parallel::{par_match_join, par_match_join_granular};
pub use partial::{
    answer_with_partial_views, hybrid_match_join, partial_contain, sources_from_partial,
    PartialPlan,
};
pub use plan::{
    CacheDisposition, EdgeSource, ExecStrategy, FallbackReason, ParGranularity, QueryPlan,
    SelectionMode, ViewPlan,
};
pub use selection::{select_views_for_workload, WorkloadSelection};
pub use service::{
    query_fingerprint, LatencyHistogram, QuantileBound, ServedAnswer, ServiceConfig, ServiceError,
    ServiceStats, ViewService,
};
pub use shard::{decode_shard, encode_shard, ShardError, StoreMeta, SHARD_MAGIC, SHARD_VERSION};
pub use storage::{BoundedViewCache, CacheError, ViewCache};
pub use store::{
    DeltaReport, EvictionAdvice, ShardOccupancy, StoreError, StoreSnapshot, StoredView, ViewStore,
};
pub use verify::{
    check_snapshot, check_store_dir, classify_shard_error, errors_only, has_errors,
    verify_bounded_plan, verify_plan, verify_plan_epochs, DiagCode, Diagnostic, Severity,
};
pub use view::{materialize, ViewDef, ViewExtensions, ViewSet};
