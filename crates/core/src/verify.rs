//! Static verification of plans, snapshots and on-disk shards — the
//! `GPV0xx` diagnostics engine.
//!
//! The paper's correctness argument rests on invariants the rest of the
//! crate only enforces dynamically: a merge plan must source every query
//! edge from a view edge that *actually covers it* (the `λ` witness of
//! Theorem 1), stored extensions must stay canonical CSR, and MVCC epochs
//! must stamp exactly the views a plan reads. This module checks those
//! statically and reports violations as [`Diagnostic`]s with stable
//! `GPV0xx` codes (catalogued in `docs/DIAGNOSTICS.md`), in the style of
//! production lint engines: machine-readable, severity-ranked, and cheap
//! enough to run on every plan.
//!
//! Four passes live in this module and its sibling [`crate::lint`]:
//!
//! * [`verify_plan`] / [`verify_bounded_plan`] — the plan-IR verifier,
//!   run behind `debug_assertions` at plan time and on every fuzz
//!   iteration;
//! * [`verify_plan_epochs`] — epoch-stamp consistency of a plan against a
//!   [`StoreSnapshot`];
//! * [`check_snapshot`] — live store integrity (CSR canonicality, epoch
//!   monotonicity, footprint consistency);
//! * [`check_store_dir`] — the offline shard/store checker behind
//!   `gpv check --store-dir`.
//!
//! Every injected corruption class maps to a *distinct* code, so a failing
//! `gpv check` names what rotted, not just that something did.

use std::collections::HashMap;
use std::path::Path;

use crate::bview::BoundedViewSet;
use crate::cost::CostModel;
use crate::delta::ViewFootprint;
use crate::engine::BoundedPlan;
use crate::plan::{EdgeSource, ExecStrategy, ParGranularity, QueryPlan};
use crate::shard::{decode_shard, ShardContents, ShardError, StoreMeta, SHARD_VERSION};
use crate::store::StoreSnapshot;
use crate::view::ViewSet;
use gpv_graph::DataGraph;
use gpv_matching::pattern_sim::{simulate_pattern, PatternSimResult};
use gpv_pattern::bounded::{BoundedPattern, EdgeBound};
use gpv_pattern::{Pattern, PatternEdgeId};
use serde::value::Value;
use serde::Serialize;

/// How bad a [`Diagnostic`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational — surfaced for visibility, never a failure.
    Info,
    /// Suspicious but legal — the construct works, it is just wasteful or
    /// almost certainly not what the author meant.
    Warning,
    /// An invariant violation — the plan/store/shard is unsound and must
    /// not be trusted.
    Error,
}

impl Severity {
    /// Lowercase label (`"error"` / `"warning"` / `"info"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable identity of one diagnostic rule. The `GPV0xx` string returned by
/// [`DiagCode::code`] is the public contract: codes are never renumbered
/// or reused, only retired.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DiagCode {
    // -- plan IR verifier (GPV001–GPV009) --------------------------------
    /// GPV001: a query edge has no merge source (or the source/λ vector
    /// length disagrees with the pattern's edge count).
    PlanEdgeUnsourced,
    /// GPV002: a plan references a view index (or view-edge id) outside
    /// the registered view set.
    PlanViewOutOfRange,
    /// GPV003: a view edge pinned as a merge source does not cover the
    /// query edge it is pinned for — the simulation witness fails.
    PlanEdgeNotCovered,
    /// GPV004: parallel chunk granularity below
    /// [`CostModel::MIN_CHUNK_PAIRS`] (warning; a forced zero chunk is an
    /// error — the executor cannot split by zero).
    PlanChunkGranularity,
    /// GPV005: a views-only (Theorem 1) plan carries a graph-sourced edge.
    PlanViewsOnlyReadsGraph,
    /// GPV006: a plan's view footprint references a view the snapshot
    /// holds no epoch for.
    PlanEpochMisaligned,
    /// GPV007: a bounded query edge carries a zero hop bound.
    PlanBoundedZeroBound,

    // -- query lints (GPV010–GPV019) -------------------------------------
    /// GPV010: the query pattern is disconnected.
    QueryDisconnected,
    /// GPV011: the query pattern has a self-loop edge.
    QuerySelfLoop,
    /// GPV012: the query pattern repeats an edge.
    QueryDuplicateEdge,
    /// GPV013: the query is provably empty on this graph — a predicate
    /// label is absent from the graph's alphabet, or an edge's label pair
    /// never occurs in `G`.
    QueryProvablyEmpty,
    /// GPV014: the query carries redundant edges — its minimized
    /// equivalent (same answers on every graph) is strictly smaller.
    QueryRedundantEdges,

    // -- view-set lints (GPV020–GPV029) -----------------------------------
    /// GPV020: a view is subsumed by another registered view (`Vi ⊑ Vj`),
    /// so every query it helps answer is answerable without it.
    ViewSubsumed,
    /// GPV021: a view covers no edge of any workload query.
    ViewZeroCoverage,
    /// GPV022: a resident view no workload query reads — evicting it
    /// frees the reported bytes ([`crate::store::ViewStore::eviction_advice`]).
    ViewEvictable,

    // -- store / shard integrity (GPV050–GPV069) ---------------------------
    /// GPV050: filesystem error reading the store directory.
    StoreIo,
    /// GPV051: `meta.json` is missing or not valid [`StoreMeta`] JSON.
    StoreMetaInvalid,
    /// GPV052: a shard file does not open with the `GPVSHARD` magic.
    ShardBadMagic,
    /// GPV053: a shard (or `meta.json`) declares an unsupported format
    /// version.
    ShardBadVersion,
    /// GPV054: a shard's payload checksum does not match its header.
    ShardChecksumMismatch,
    /// GPV055: a shard file ends before a field it promises.
    ShardTruncated,
    /// GPV056: a CSR offset column is non-canonical (does not start at 0,
    /// not monotonic, or disagrees with its data column's length).
    ShardBadOffsets,
    /// GPV057: a node set or pair set is not strictly sorted (canonical
    /// sets are sorted and deduplicated).
    ShardUnsortedSet,
    /// GPV058: the interned name table is invalid (out-of-range name
    /// index or non-UTF-8 name bytes).
    ShardBadInternTable,
    /// GPV059: a view's embedded pattern JSON does not parse.
    ShardBadPatternJson,
    /// GPV060: view ids are not strictly ascending.
    StoreIdsNotAscending,
    /// GPV061: a shard file has trailing bytes after its last view.
    ShardTrailingBytes,
    /// GPV062: a shard is structurally malformed in a way no more specific
    /// code describes.
    ShardMalformed,
    /// GPV063: a shard (or snapshot) was materialized against a different
    /// graph than the store claims.
    StoreGraphMismatch,
    /// GPV064: a materialized node id is out of range for the graph
    /// (`id ≥ |V|`).
    StoreNodeOutOfRange,
    /// GPV065: a view's MVCC epoch exceeds the snapshot version.
    StoreEpochExceedsVersion,
    /// GPV066: the snapshot's epoch vector is not position-aligned with
    /// its view vector.
    StoreEpochMisaligned,
    /// GPV067: footprint inconsistency — a view classified
    /// [`ViewFootprint::Never`] holds a nonempty extension.
    StoreFootprintInconsistent,
    /// GPV068: a view id is at or above the store's `next_id` watermark
    /// (ids are never reused, so the watermark must dominate).
    StoreIdWatermark,
}

impl DiagCode {
    /// The stable `GPV0xx` code string.
    pub fn code(self) -> &'static str {
        match self {
            DiagCode::PlanEdgeUnsourced => "GPV001",
            DiagCode::PlanViewOutOfRange => "GPV002",
            DiagCode::PlanEdgeNotCovered => "GPV003",
            DiagCode::PlanChunkGranularity => "GPV004",
            DiagCode::PlanViewsOnlyReadsGraph => "GPV005",
            DiagCode::PlanEpochMisaligned => "GPV006",
            DiagCode::PlanBoundedZeroBound => "GPV007",
            DiagCode::QueryDisconnected => "GPV010",
            DiagCode::QuerySelfLoop => "GPV011",
            DiagCode::QueryDuplicateEdge => "GPV012",
            DiagCode::QueryProvablyEmpty => "GPV013",
            DiagCode::QueryRedundantEdges => "GPV014",
            DiagCode::ViewSubsumed => "GPV020",
            DiagCode::ViewZeroCoverage => "GPV021",
            DiagCode::ViewEvictable => "GPV022",
            DiagCode::StoreIo => "GPV050",
            DiagCode::StoreMetaInvalid => "GPV051",
            DiagCode::ShardBadMagic => "GPV052",
            DiagCode::ShardBadVersion => "GPV053",
            DiagCode::ShardChecksumMismatch => "GPV054",
            DiagCode::ShardTruncated => "GPV055",
            DiagCode::ShardBadOffsets => "GPV056",
            DiagCode::ShardUnsortedSet => "GPV057",
            DiagCode::ShardBadInternTable => "GPV058",
            DiagCode::ShardBadPatternJson => "GPV059",
            DiagCode::StoreIdsNotAscending => "GPV060",
            DiagCode::ShardTrailingBytes => "GPV061",
            DiagCode::ShardMalformed => "GPV062",
            DiagCode::StoreGraphMismatch => "GPV063",
            DiagCode::StoreNodeOutOfRange => "GPV064",
            DiagCode::StoreEpochExceedsVersion => "GPV065",
            DiagCode::StoreEpochMisaligned => "GPV066",
            DiagCode::StoreFootprintInconsistent => "GPV067",
            DiagCode::StoreIdWatermark => "GPV068",
        }
    }

    /// Short kebab-case rule name (shown next to the code in human output).
    pub fn name(self) -> &'static str {
        match self {
            DiagCode::PlanEdgeUnsourced => "plan-edge-unsourced",
            DiagCode::PlanViewOutOfRange => "plan-view-out-of-range",
            DiagCode::PlanEdgeNotCovered => "plan-edge-not-covered",
            DiagCode::PlanChunkGranularity => "plan-chunk-granularity",
            DiagCode::PlanViewsOnlyReadsGraph => "plan-views-only-reads-graph",
            DiagCode::PlanEpochMisaligned => "plan-epoch-misaligned",
            DiagCode::PlanBoundedZeroBound => "plan-bounded-zero-bound",
            DiagCode::QueryDisconnected => "query-disconnected",
            DiagCode::QuerySelfLoop => "query-self-loop",
            DiagCode::QueryDuplicateEdge => "query-duplicate-edge",
            DiagCode::QueryProvablyEmpty => "query-provably-empty",
            DiagCode::QueryRedundantEdges => "query-redundant-edges",
            DiagCode::ViewSubsumed => "view-subsumed",
            DiagCode::ViewZeroCoverage => "view-zero-coverage",
            DiagCode::ViewEvictable => "view-evictable",
            DiagCode::StoreIo => "store-io",
            DiagCode::StoreMetaInvalid => "store-meta-invalid",
            DiagCode::ShardBadMagic => "shard-bad-magic",
            DiagCode::ShardBadVersion => "shard-bad-version",
            DiagCode::ShardChecksumMismatch => "shard-checksum-mismatch",
            DiagCode::ShardTruncated => "shard-truncated",
            DiagCode::ShardBadOffsets => "shard-bad-offsets",
            DiagCode::ShardUnsortedSet => "shard-unsorted-set",
            DiagCode::ShardBadInternTable => "shard-bad-intern-table",
            DiagCode::ShardBadPatternJson => "shard-bad-pattern-json",
            DiagCode::StoreIdsNotAscending => "store-ids-not-ascending",
            DiagCode::ShardTrailingBytes => "shard-trailing-bytes",
            DiagCode::ShardMalformed => "shard-malformed",
            DiagCode::StoreGraphMismatch => "store-graph-mismatch",
            DiagCode::StoreNodeOutOfRange => "store-node-out-of-range",
            DiagCode::StoreEpochExceedsVersion => "store-epoch-exceeds-version",
            DiagCode::StoreEpochMisaligned => "store-epoch-misaligned",
            DiagCode::StoreFootprintInconsistent => "store-footprint-inconsistent",
            DiagCode::StoreIdWatermark => "store-id-watermark",
        }
    }
}

impl std::fmt::Display for DiagCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding from a verifier or lint pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable rule identity.
    pub code: DiagCode,
    /// How bad it is.
    pub severity: Severity,
    /// Human-readable description of this specific finding.
    pub message: String,
    /// Span-ish locator: which query/edge/view/shard/file the finding is
    /// about (e.g. `"query edge e2"`, `"shard-0000.bin view id 7"`).
    pub context: String,
}

impl Diagnostic {
    /// Builds one diagnostic.
    pub fn new(
        code: DiagCode,
        severity: Severity,
        message: impl Into<String>,
        context: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            context: context.into(),
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} [{}]: {}",
            self.code,
            self.severity,
            self.code.name(),
            self.message
        )?;
        if !self.context.is_empty() {
            write!(f, " ({})", self.context)?;
        }
        Ok(())
    }
}

impl Serialize for Diagnostic {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("code".to_string(), Value::Str(self.code.code().to_string())),
            ("name".to_string(), Value::Str(self.code.name().to_string())),
            (
                "severity".to_string(),
                Value::Str(self.severity.as_str().to_string()),
            ),
            ("message".to_string(), Value::Str(self.message.clone())),
            ("context".to_string(), Value::Str(self.context.clone())),
        ])
    }
}

/// Whether any diagnostic in `diags` is error severity — the exit-status
/// predicate for `gpv lint` / `gpv check` and the divergence predicate for
/// the fuzz harness.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Keeps only the error-severity findings (what the fuzz harness reports).
pub fn errors_only(diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    diags
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .collect()
}

// ---------------------------------------------------------------------------
// Pass 1: plan IR verifier
// ---------------------------------------------------------------------------

/// Re-derives, per sourced view edge, whether it actually covers the query
/// edge it is pinned for. Simulations are cached per view — the verifier
/// costs one pattern simulation per *distinct* view the plan reads.
struct CoverageWitness<'a> {
    q: &'a Pattern,
    views: &'a ViewSet,
    sims: HashMap<usize, Option<PatternSimResult>>,
}

impl<'a> CoverageWitness<'a> {
    fn new(q: &'a Pattern, views: &'a ViewSet) -> Self {
        CoverageWitness {
            q,
            views,
            sims: HashMap::new(),
        }
    }

    /// Checks one `λ` entry / merge source: view index in range, view edge
    /// id in range, and the simulation witness `qe ∈ S_eV`.
    fn check(
        &mut self,
        view: usize,
        vedge: PatternEdgeId,
        qe: usize,
        out: &mut Vec<Diagnostic>,
        what: &str,
    ) {
        if view >= self.views.card() {
            out.push(Diagnostic::new(
                DiagCode::PlanViewOutOfRange,
                Severity::Error,
                format!(
                    "{what} references view {view} but only {} views are registered",
                    self.views.card()
                ),
                format!("query edge e{qe}"),
            ));
            return;
        }
        let vpat = &self.views.get(view).pattern;
        if vedge.index() >= vpat.edge_count() {
            out.push(Diagnostic::new(
                DiagCode::PlanViewOutOfRange,
                Severity::Error,
                format!(
                    "{what} references edge {} of view {view}, which has {} edges",
                    vedge.index(),
                    vpat.edge_count()
                ),
                format!("query edge e{qe}"),
            ));
            return;
        }
        let (q, views) = (self.q, self.views);
        let sim = self
            .sims
            .entry(view)
            .or_insert_with(|| simulate_pattern(&views.get(view).pattern, q));
        let covered = sim
            .as_ref()
            .is_some_and(|s| s.edge_matches[vedge.index()].contains(&PatternEdgeId(qe as u32)));
        if !covered {
            out.push(Diagnostic::new(
                DiagCode::PlanEdgeNotCovered,
                Severity::Error,
                format!(
                    "{what} pins view {view} edge {} for query edge e{qe}, but the \
                     simulation witness says that view edge does not cover it",
                    vedge.index()
                ),
                format!("query edge e{qe}"),
            ));
        }
    }
}

/// Checks a parallel execution strategy's chunk granularity: a zero chunk
/// is an error (the executor cannot split by zero); a chunk below
/// [`CostModel::MIN_CHUNK_PAIRS`] is a warning (legal — forced configs pin
/// tiny chunks deliberately — but the per-chunk fixed costs drown the
/// fanned-out work).
fn check_exec(exec: &ExecStrategy, out: &mut Vec<Diagnostic>) {
    if let ExecStrategy::Parallel {
        granularity: ParGranularity::Chunked { chunk_pairs },
        ..
    } = exec
    {
        if *chunk_pairs == 0 {
            out.push(Diagnostic::new(
                DiagCode::PlanChunkGranularity,
                Severity::Error,
                "parallel chunk granularity is 0 pairs; the executor cannot split by zero",
                "execution strategy",
            ));
        } else if *chunk_pairs < CostModel::MIN_CHUNK_PAIRS {
            out.push(Diagnostic::new(
                DiagCode::PlanChunkGranularity,
                Severity::Warning,
                format!(
                    "parallel chunk granularity {chunk_pairs} is below MIN_CHUNK_PAIRS \
                     ({}); per-chunk fixed costs will dominate",
                    CostModel::MIN_CHUNK_PAIRS
                ),
                "execution strategy",
            ));
        }
    }
}

/// The plan-IR verifier: checks that `plan` is a sound execution of `q`
/// over `views` — every pattern edge sourced exactly once, every
/// [`EdgeSource::View`] in range *and* covering its edge (re-derived via
/// pattern simulation, independently of the planner's own λ), views-only
/// plans reading no graph edges, and sane parallel granularity.
///
/// Runs behind `debug_assertions` at plan time
/// ([`crate::engine::QueryEngine::plan`]) and on every fuzz iteration
/// ([`crate::differential`]).
pub fn verify_plan(q: &Pattern, plan: &QueryPlan, views: &ViewSet) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let ne = q.edge_count();
    let mut witness = CoverageWitness::new(q, views);

    // The merge-source vector: exactly one source per pattern edge.
    if let Some(sources) = plan.sources() {
        if sources.len() != ne {
            out.push(Diagnostic::new(
                DiagCode::PlanEdgeUnsourced,
                Severity::Error,
                format!(
                    "plan sources {} edges but the query has {ne}",
                    sources.len()
                ),
                "merge sources",
            ));
        }
        for (ei, s) in sources.iter().enumerate() {
            if let EdgeSource::View(r) = s {
                witness.check(r.view, r.edge, ei, &mut out, "merge source");
            }
        }
    }

    match plan {
        QueryPlan::ViewsOnly(vp) => {
            for &vi in &vp.views {
                if vi >= views.card() {
                    out.push(Diagnostic::new(
                        DiagCode::PlanViewOutOfRange,
                        Severity::Error,
                        format!(
                            "selected view {vi} out of range ({} registered)",
                            views.card()
                        ),
                        "view selection",
                    ));
                }
            }
            if let Some(graph_sourced) = vp
                .sources
                .iter()
                .position(|s| matches!(s, EdgeSource::Graph))
            {
                out.push(Diagnostic::new(
                    DiagCode::PlanViewsOnlyReadsGraph,
                    Severity::Error,
                    format!(
                        "views-only (Theorem 1) plan sources edge e{graph_sourced} from \
                         the graph"
                    ),
                    format!("query edge e{graph_sourced}"),
                ));
            }
            check_lambda(q, &vp.plan.lambda, true, &mut witness, &mut out);
            check_exec(&vp.exec, &mut out);
        }
        QueryPlan::Hybrid {
            partial, sources, ..
        } => {
            check_lambda(q, &partial.lambda, false, &mut witness, &mut out);
            // An edge the λ leaves uncovered has no extension to read: its
            // merge source must be a graph scan.
            for &ue in &partial.uncovered {
                if let Some(EdgeSource::View(_)) = sources.get(ue.index()) {
                    out.push(Diagnostic::new(
                        DiagCode::PlanEdgeNotCovered,
                        Severity::Error,
                        format!(
                            "edge e{} is uncovered by the λ but view-sourced",
                            ue.index()
                        ),
                        format!("query edge e{}", ue.index()),
                    ));
                }
            }
        }
        QueryPlan::Direct { .. } => {}
    }
    out
}

/// Shared λ-shape check: one entry vector per query edge; when
/// `require_total`, every entry vector nonempty (Theorem 1 containment).
/// Each entry is witness-checked.
fn check_lambda(
    q: &Pattern,
    lambda: &[Vec<crate::containment::ViewEdgeRef>],
    require_total: bool,
    witness: &mut CoverageWitness<'_>,
    out: &mut Vec<Diagnostic>,
) {
    let ne = q.edge_count();
    if lambda.len() != ne {
        out.push(Diagnostic::new(
            DiagCode::PlanEdgeUnsourced,
            Severity::Error,
            format!("λ maps {} edges but the query has {ne}", lambda.len()),
            "containment plan",
        ));
        return;
    }
    for (ei, entries) in lambda.iter().enumerate() {
        if require_total && entries.is_empty() {
            out.push(Diagnostic::new(
                DiagCode::PlanEdgeUnsourced,
                Severity::Error,
                format!("λ(e{ei}) is empty in a views-only plan"),
                format!("query edge e{ei}"),
            ));
        }
        for r in entries {
            witness.check(r.view, r.edge, ei, out, "λ entry");
        }
    }
}

/// The bounded-plan verifier: λ shape and view-index ranges against the
/// bounded view set, coverage via [`crate::bcontainment::bounded_view_match`],
/// zero-hop bounds, and parallel granularity.
pub fn verify_bounded_plan(
    qb: &BoundedPattern,
    plan: &BoundedPlan,
    views: &BoundedViewSet,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let ne = qb.pattern().edge_count();
    for (ei, b) in qb.bounds().iter().enumerate() {
        if *b == EdgeBound::Hop(0) {
            out.push(Diagnostic::new(
                DiagCode::PlanBoundedZeroBound,
                Severity::Error,
                format!("bounded query edge e{ei} carries a zero hop bound"),
                format!("query edge e{ei}"),
            ));
        }
    }
    for &vi in &plan.views {
        if vi >= views.card() {
            out.push(Diagnostic::new(
                DiagCode::PlanViewOutOfRange,
                Severity::Error,
                format!(
                    "selected bounded view {vi} out of range ({} registered)",
                    views.card()
                ),
                "view selection",
            ));
        }
    }
    if plan.plan.lambda.len() != ne {
        out.push(Diagnostic::new(
            DiagCode::PlanEdgeUnsourced,
            Severity::Error,
            format!(
                "bounded λ maps {} edges but the query has {ne}",
                plan.plan.lambda.len()
            ),
            "containment plan",
        ));
        return out;
    }
    // Coverage per distinct view, via the bounded view match (covered query
    // edges of `V` into `Qb`), cached across λ entries.
    let mut matches: HashMap<usize, Vec<PatternEdgeId>> = HashMap::new();
    for (ei, entries) in plan.plan.lambda.iter().enumerate() {
        if entries.is_empty() {
            out.push(Diagnostic::new(
                DiagCode::PlanEdgeUnsourced,
                Severity::Error,
                format!("bounded λ(e{ei}) is empty"),
                format!("query edge e{ei}"),
            ));
            continue;
        }
        for r in entries {
            if r.view >= views.card() {
                out.push(Diagnostic::new(
                    DiagCode::PlanViewOutOfRange,
                    Severity::Error,
                    format!(
                        "bounded λ entry references view {} but only {} views are \
                         registered",
                        r.view,
                        views.card()
                    ),
                    format!("query edge e{ei}"),
                ));
                continue;
            }
            let covered = matches.entry(r.view).or_insert_with(|| {
                crate::bcontainment::bounded_view_match(&views.get(r.view).pattern, qb)
            });
            if !covered.contains(&PatternEdgeId(ei as u32)) {
                out.push(Diagnostic::new(
                    DiagCode::PlanEdgeNotCovered,
                    Severity::Error,
                    format!(
                        "bounded λ pins view {} for query edge e{ei}, but its bounded \
                         view match does not cover it",
                        r.view
                    ),
                    format!("query edge e{ei}"),
                ));
            }
        }
    }
    check_exec(&plan.exec, &mut out);
    out
}

/// Epoch-stamp consistency of a plan against the snapshot it was planned
/// from: every view in the plan's footprint
/// ([`QueryPlan::view_indices`]) must have an epoch in the snapshot, and no
/// stamped epoch may exceed the snapshot version (epochs are the store
/// versions at which extensions last changed, so `epoch ≤ version` always).
pub fn verify_plan_epochs(plan: &QueryPlan, snap: &StoreSnapshot) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let epochs = snap.epochs();
    for idx in plan.view_indices() {
        match epochs.get(idx) {
            None => out.push(Diagnostic::new(
                DiagCode::PlanEpochMisaligned,
                Severity::Error,
                format!(
                    "plan footprint references view {idx} but the snapshot stamps \
                     {} epochs",
                    epochs.len()
                ),
                format!("snapshot v{}", snap.version),
            )),
            Some(&e) if e > snap.version => out.push(Diagnostic::new(
                DiagCode::StoreEpochExceedsVersion,
                Severity::Error,
                format!(
                    "view {idx} has epoch {e}, beyond snapshot version {}",
                    snap.version
                ),
                format!("snapshot v{}", snap.version),
            )),
            Some(_) => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Pass 4: store / shard integrity
// ---------------------------------------------------------------------------

/// Maps a [`ShardError`] to its diagnostic. [`ShardError::Malformed`]
/// messages are classified into the specific structural codes (offsets,
/// sorted sets, intern table, pattern JSON, id order, trailing bytes);
/// unrecognized messages fall back to [`DiagCode::ShardMalformed`].
pub fn classify_shard_error(e: &ShardError) -> DiagCode {
    match e {
        ShardError::Io(_) => DiagCode::StoreIo,
        ShardError::Json(_) => DiagCode::StoreMetaInvalid,
        ShardError::BadMagic => DiagCode::ShardBadMagic,
        ShardError::BadVersion(_) => DiagCode::ShardBadVersion,
        ShardError::BadChecksum { .. } => DiagCode::ShardChecksumMismatch,
        ShardError::Truncated { .. } => DiagCode::ShardTruncated,
        ShardError::GraphMismatch { .. } => DiagCode::StoreGraphMismatch,
        ShardError::Malformed(msg) => {
            if msg.contains("offsets") {
                DiagCode::ShardBadOffsets
            } else if msg.contains("not strictly sorted") {
                DiagCode::ShardUnsortedSet
            } else if msg.contains("pattern json") {
                DiagCode::ShardBadPatternJson
            } else if msg.contains("name") {
                DiagCode::ShardBadInternTable
            } else if msg.contains("ids not strictly ascending") {
                DiagCode::StoreIdsNotAscending
            } else if msg.contains("trailing bytes") {
                DiagCode::ShardTrailingBytes
            } else {
                DiagCode::ShardMalformed
            }
        }
    }
}

fn shard_error_diag(e: &ShardError, context: String) -> Diagnostic {
    Diagnostic::new(
        classify_shard_error(e),
        Severity::Error,
        e.to_string(),
        context,
    )
}

/// Validates one decoded shard's contents against the directory header:
/// graph fingerprint agreement, id watermark, and (when the header carries
/// graph stats) node-id range over every materialized node and pair.
fn check_shard_contents(
    contents: &ShardContents,
    meta: &StoreMeta,
    file: &str,
    out: &mut Vec<Diagnostic>,
) {
    if contents.graph_fingerprint != meta.graph_fingerprint {
        out.push(Diagnostic::new(
            DiagCode::StoreGraphMismatch,
            Severity::Error,
            format!(
                "shard was written for graph {:#x} but meta.json says {:#x}",
                contents.graph_fingerprint, meta.graph_fingerprint
            ),
            file.to_string(),
        ));
    }
    let node_bound = meta.graph_stats.as_ref().map(|s| s.nodes);
    for (id, _def, ext) in &contents.views {
        if *id >= meta.next_id {
            out.push(Diagnostic::new(
                DiagCode::StoreIdWatermark,
                Severity::Error,
                format!(
                    "view id {id} is at or above the next_id watermark {}",
                    meta.next_id
                ),
                format!("{file} view id {id}"),
            ));
        }
        if let Some(n) = node_bound {
            let bad_pair = ext
                .all_pairs()
                .iter()
                .flat_map(|&(a, b)| [a, b])
                .find(|v| v.index() >= n);
            if let Some(v) = bad_pair {
                out.push(Diagnostic::new(
                    DiagCode::StoreNodeOutOfRange,
                    Severity::Error,
                    format!("materialized pair references node {v} but the graph has {n} nodes"),
                    format!("{file} view id {id}"),
                ));
            }
        }
    }
}

/// The offline shard/store integrity checker behind `gpv check
/// --store-dir`: reads `meta.json` and every `shard-NNNN.bin`, reporting a
/// distinct diagnostic per corruption class instead of stopping at the
/// first error (one rotten shard should not hide another).
pub fn check_store_dir(dir: impl AsRef<Path>) -> Vec<Diagnostic> {
    let dir = dir.as_ref();
    let mut out = Vec::new();

    let meta_raw = match std::fs::read_to_string(dir.join("meta.json")) {
        Ok(s) => s,
        Err(e) => {
            out.push(Diagnostic::new(
                DiagCode::StoreIo,
                Severity::Error,
                format!("cannot read meta.json: {e}"),
                "meta.json".to_string(),
            ));
            return out;
        }
    };
    let meta: StoreMeta = match serde_json::from_str(&meta_raw) {
        Ok(m) => m,
        Err(e) => {
            out.push(Diagnostic::new(
                DiagCode::StoreMetaInvalid,
                Severity::Error,
                format!("meta.json does not parse as store metadata: {e}"),
                "meta.json".to_string(),
            ));
            return out;
        }
    };
    if meta.format_version != SHARD_VERSION {
        out.push(Diagnostic::new(
            DiagCode::ShardBadVersion,
            Severity::Error,
            format!(
                "meta.json declares format version {} (reader speaks {SHARD_VERSION})",
                meta.format_version
            ),
            "meta.json".to_string(),
        ));
        return out;
    }

    let mut all_ids: Vec<u64> = Vec::new();
    for i in 0..meta.shard_count as usize {
        let file = format!("shard-{i:04}.bin");
        let bytes = match std::fs::read(dir.join(&file)) {
            Ok(b) => b,
            Err(e) => {
                out.push(Diagnostic::new(
                    DiagCode::StoreIo,
                    Severity::Error,
                    format!("cannot read {file}: {e}"),
                    file.clone(),
                ));
                continue;
            }
        };
        match decode_shard(&bytes) {
            Ok(contents) => {
                check_shard_contents(&contents, &meta, &file, &mut out);
                all_ids.extend(contents.views.iter().map(|(id, _, _)| *id));
            }
            Err(e) => out.push(shard_error_diag(&e, file.clone())),
        }
    }
    // Per-shard ascending order is decode-enforced; ids must also be
    // globally unique across shards.
    all_ids.sort_unstable();
    if all_ids.windows(2).any(|w| w[0] == w[1]) {
        out.push(Diagnostic::new(
            DiagCode::StoreIdsNotAscending,
            Severity::Error,
            "duplicate view ids across shard files".to_string(),
            "store directory".to_string(),
        ));
    }
    out
}

/// Live store integrity over a published snapshot: epoch vector alignment
/// and monotonicity (`epoch ≤ version` for every view), id order, CSR
/// canonicality of every resident extension, and — when the current graph
/// is supplied — fingerprint agreement, node-id range, and footprint
/// consistency (a [`ViewFootprint::Never`] view must be empty).
///
/// Runs after every `apply_delta` inside the differential fuzz harness.
pub fn check_snapshot(snap: &StoreSnapshot, g: Option<&DataGraph>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let views = snap.views();
    let epochs = snap.epochs();
    if epochs.len() != views.len() {
        out.push(Diagnostic::new(
            DiagCode::StoreEpochMisaligned,
            Severity::Error,
            format!(
                "snapshot holds {} views but stamps {} epochs",
                views.len(),
                epochs.len()
            ),
            format!("snapshot v{}", snap.version),
        ));
    }
    for (v, &e) in views.iter().zip(epochs) {
        if e != v.epoch {
            out.push(Diagnostic::new(
                DiagCode::StoreEpochMisaligned,
                Severity::Error,
                format!(
                    "epoch vector says {e} but view id {} carries epoch {}",
                    v.id, v.epoch
                ),
                format!("view id {}", v.id),
            ));
        }
        if e > snap.version {
            out.push(Diagnostic::new(
                DiagCode::StoreEpochExceedsVersion,
                Severity::Error,
                format!(
                    "view id {} has epoch {e}, beyond snapshot version {}",
                    v.id, snap.version
                ),
                format!("view id {}", v.id),
            ));
        }
    }
    if views.windows(2).any(|w| w[0].id >= w[1].id) {
        out.push(Diagnostic::new(
            DiagCode::StoreIdsNotAscending,
            Severity::Error,
            "snapshot views are not in strictly ascending id order".to_string(),
            format!("snapshot v{}", snap.version),
        ));
    }
    for v in views {
        check_compact_view(&v.ext, &format!("view id {}", v.id), &mut out);
    }
    if let Some(g) = g {
        let actual = crate::storage::graph_fingerprint(g);
        if actual != snap.graph_fingerprint {
            out.push(Diagnostic::new(
                DiagCode::StoreGraphMismatch,
                Severity::Error,
                format!(
                    "snapshot claims graph {:#x} but the supplied graph fingerprints \
                     to {actual:#x}",
                    snap.graph_fingerprint
                ),
                format!("snapshot v{}", snap.version),
            ));
        }
        let n = g.node_count();
        for v in views {
            if let Some(bad) = v
                .ext
                .all_pairs()
                .iter()
                .flat_map(|&(a, b)| [a, b])
                .find(|x| x.index() >= n)
            {
                out.push(Diagnostic::new(
                    DiagCode::StoreNodeOutOfRange,
                    Severity::Error,
                    format!("materialized pair references node {bad} but the graph has {n} nodes"),
                    format!("view id {}", v.id),
                ));
            }
            if ViewFootprint::of(&v.def, g) == ViewFootprint::Never && !v.ext.is_empty() {
                out.push(Diagnostic::new(
                    DiagCode::StoreFootprintInconsistent,
                    Severity::Error,
                    format!(
                        "view id {} can never match on this graph (footprint Never) \
                         yet holds {} pairs",
                        v.id,
                        v.ext.size()
                    ),
                    format!("view id {}", v.id),
                ));
            }
        }
    }
    out
}

/// Re-validates a frozen extension's CSR invariants from its raw columns:
/// both offset tables canonical, node sets and pair sets strictly sorted.
/// (The same checks [`crate::compact::CompactView`] enforces at
/// construction — re-run here so a corrupted or hand-built extension is
/// caught at the store boundary too.)
fn check_compact_view(ext: &crate::compact::CompactView, context: &str, out: &mut Vec<Diagnostic>) {
    let (edge_offsets, pairs, node_offsets, nodes) = ext.columns();
    for (offsets, len, what) in [
        (edge_offsets, pairs.len(), "edge"),
        (node_offsets, nodes.len(), "node"),
    ] {
        if offsets.is_empty()
            || offsets[0] != 0
            || offsets.windows(2).any(|w| w[0] > w[1])
            || *offsets.last().expect("nonempty") as usize != len
        {
            out.push(Diagnostic::new(
                DiagCode::ShardBadOffsets,
                Severity::Error,
                format!("{what} offset column is not canonical CSR"),
                context.to_string(),
            ));
            return;
        }
    }
    let pairs_sorted = edge_offsets.windows(2).all(|w| {
        pairs[w[0] as usize..w[1] as usize]
            .windows(2)
            .all(|p| p[0] < p[1])
    });
    let nodes_sorted = node_offsets.windows(2).all(|w| {
        nodes[w[0] as usize..w[1] as usize]
            .windows(2)
            .all(|p| p[0] < p[1])
    });
    if !pairs_sorted || !nodes_sorted {
        out.push(Diagnostic::new(
            DiagCode::ShardUnsortedSet,
            Severity::Error,
            "a materialized set is not strictly sorted".to_string(),
            context.to_string(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::ViewEdgeRef;
    use crate::engine::QueryEngine;
    use crate::view::ViewDef;
    use gpv_graph::GraphBuilder;
    use gpv_pattern::PatternBuilder;

    fn graph() -> DataGraph {
        let mut b = GraphBuilder::new();
        let pm = b.add_node(["PM"]);
        let dba = b.add_node(["DBA"]);
        let prg = b.add_node(["PRG"]);
        b.add_edge(pm, dba);
        b.add_edge(dba, prg);
        b.build()
    }

    fn single(x: &str, y: &str) -> Pattern {
        let mut b = PatternBuilder::new();
        let u = b.node_labeled(x);
        let v = b.node_labeled(y);
        b.edge(u, v);
        b.build().unwrap()
    }

    fn chain(x: &str, y: &str, z: &str) -> Pattern {
        let mut b = PatternBuilder::new();
        let u = b.node_labeled(x);
        let v = b.node_labeled(y);
        let w = b.node_labeled(z);
        b.edge(u, v);
        b.edge(v, w);
        b.build().unwrap()
    }

    #[test]
    fn clean_plan_verifies() {
        let g = graph();
        let views = ViewSet::new(vec![
            ViewDef::new("v1", single("PM", "DBA")),
            ViewDef::new("v2", single("DBA", "PRG")),
        ]);
        let engine = QueryEngine::materialize(views, &g);
        let q = chain("PM", "DBA", "PRG");
        let plan = engine.plan(&q);
        let diags = verify_plan(&q, &plan, engine.views());
        assert!(!has_errors(&diags), "{diags:?}");
    }

    #[test]
    fn tampered_plan_is_caught() {
        let g = graph();
        let views = ViewSet::new(vec![
            ViewDef::new("v1", single("PM", "DBA")),
            ViewDef::new("v2", single("DBA", "PRG")),
        ]);
        let engine = QueryEngine::materialize(views, &g);
        let q = chain("PM", "DBA", "PRG");
        let plan = engine.plan(&q);
        let QueryPlan::ViewsOnly(mut vp) = plan else {
            panic!("expected views-only plan");
        };
        // Point edge e1's source at v1 (which covers only e0): the witness
        // check must flag the miscover.
        vp.sources[1] = EdgeSource::View(ViewEdgeRef {
            view: 0,
            edge: PatternEdgeId(0),
        });
        let diags = verify_plan(&q, &QueryPlan::ViewsOnly(vp), engine.views());
        assert!(diags
            .iter()
            .any(|d| d.code == DiagCode::PlanEdgeNotCovered && d.severity == Severity::Error));
    }

    #[test]
    fn out_of_range_view_index_is_caught() {
        let g = graph();
        let views = ViewSet::new(vec![
            ViewDef::new("v1", single("PM", "DBA")),
            ViewDef::new("v2", single("DBA", "PRG")),
        ]);
        let engine = QueryEngine::materialize(views, &g);
        let q = chain("PM", "DBA", "PRG");
        let QueryPlan::ViewsOnly(mut vp) = engine.plan(&q) else {
            panic!("expected views-only plan");
        };
        vp.sources[0] = EdgeSource::View(ViewEdgeRef {
            view: 99,
            edge: PatternEdgeId(0),
        });
        let diags = verify_plan(&q, &QueryPlan::ViewsOnly(vp), engine.views());
        assert!(diags.iter().any(|d| d.code == DiagCode::PlanViewOutOfRange));
    }

    #[test]
    fn zero_chunk_granularity_is_an_error() {
        let mut out = Vec::new();
        check_exec(
            &ExecStrategy::Parallel {
                threads: 2,
                granularity: ParGranularity::Chunked { chunk_pairs: 0 },
            },
            &mut out,
        );
        assert!(has_errors(&out));
        let mut out = Vec::new();
        check_exec(
            &ExecStrategy::Parallel {
                threads: 2,
                granularity: ParGranularity::Chunked { chunk_pairs: 8 },
            },
            &mut out,
        );
        // Tiny-but-nonzero chunks are a warning, not an error: forced fuzz
        // configs pin them deliberately.
        assert!(!has_errors(&out) && !out.is_empty());
    }

    #[test]
    fn diagnostics_serialize_to_json() {
        let d = Diagnostic::new(
            DiagCode::ShardChecksumMismatch,
            Severity::Error,
            "boom",
            "shard-0000.bin",
        );
        let js = serde_json::to_string(&d).unwrap();
        assert!(js.contains("\"GPV054\""), "{js}");
        assert!(js.contains("\"error\""), "{js}");
    }

    #[test]
    fn snapshot_of_live_store_is_clean() {
        let g = graph();
        let store = crate::store::ViewStore::materialize(
            ViewSet::new(vec![
                ViewDef::new("v1", single("PM", "DBA")),
                ViewDef::new("v2", single("DBA", "PRG")),
            ]),
            &g,
            2,
        );
        let diags = check_snapshot(&store.snapshot(), Some(&g));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn shard_error_classification_is_distinct_per_class() {
        use std::collections::HashSet;
        let errs = [
            ShardError::BadMagic,
            ShardError::BadVersion(9),
            ShardError::BadChecksum {
                expected: 1,
                actual: 2,
            },
            ShardError::Truncated {
                needed: 8,
                available: 0,
            },
            ShardError::Malformed("edge offsets not monotonic".into()),
            ShardError::Malformed("edge set not strictly sorted".into()),
            ShardError::Malformed("name index 9 out of table".into()),
            ShardError::Malformed("pattern json: bad".into()),
            ShardError::Malformed("view ids not strictly ascending".into()),
            ShardError::Malformed("3 trailing bytes after last view".into()),
            ShardError::GraphMismatch {
                expected: 1,
                actual: 2,
            },
        ];
        let codes: HashSet<&'static str> = errs
            .iter()
            .map(|e| classify_shard_error(e).code())
            .collect();
        assert_eq!(codes.len(), errs.len(), "codes must be pairwise distinct");
    }
}
