//! Pattern containment `Qs ⊑ V` and the `contain` algorithm
//! (paper Sections III–V-A).
//!
//! `Qs` is contained in `V` iff there is a mapping `λ` from query edges to
//! sets of view edges such that for *every* data graph `G`, the match set
//! `Se ⊆ ⋃_{e' ∈ λ(e)} S_e'`. Proposition 7 characterizes this statically:
//! `Qs ⊑ V  ⇔  Ep = ⋃_{V ∈ V} M^Qs_V`, where the view match `M^Qs_V` is the
//! union of the match sets of `V(Qs)` — `V` evaluated over `Qs` treated as a
//! data graph. Theorem 1 then makes `λ` the plan `MatchJoin` executes.
//!
//! Complexity: `O(card(V)·|Qs|² + |V|² + |Qs||V|)` (Theorem 3) — independent
//! of `G` and of the materialized extensions.

use crate::view::ViewSet;
use gpv_matching::pattern_sim::simulate_pattern;
use gpv_pattern::{Pattern, PatternEdgeId};
use serde::{Deserialize, Serialize};

/// One entry of the mapping `λ`: a view edge identified by view index and
/// edge id within that view.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ViewEdgeRef {
    /// Index of the view in the [`ViewSet`].
    pub view: usize,
    /// Edge within that view's pattern.
    pub edge: PatternEdgeId,
}

/// The witness that `Qs ⊑ V`: the mapping `λ` plus bookkeeping, consumed by
/// `MatchJoin`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ContainmentPlan {
    /// `lambda[e]` = the view edges whose match sets cover query edge `e`
    /// (every entry's `S_eV ∋ e`; the union over entries ⊇ `Se` on any `G`).
    pub lambda: Vec<Vec<ViewEdgeRef>>,
    /// Indices of views that contribute at least one entry.
    pub used_views: Vec<usize>,
}

impl ContainmentPlan {
    /// The view edges covering query edge `e`.
    pub fn covering(&self, e: PatternEdgeId) -> &[ViewEdgeRef] {
        &self.lambda[e.index()]
    }

    /// Restricts the plan to a subset of views (e.g. after `minimal` /
    /// `minimum` selection), dropping entries from other views. Returns
    /// `None` if some query edge loses all cover.
    pub fn restrict_to(&self, views: &[usize]) -> Option<ContainmentPlan> {
        let keep: std::collections::HashSet<usize> = views.iter().copied().collect();
        let lambda: Vec<Vec<ViewEdgeRef>> = self
            .lambda
            .iter()
            .map(|entries| {
                entries
                    .iter()
                    .filter(|r| keep.contains(&r.view))
                    .copied()
                    .collect::<Vec<_>>()
            })
            .collect();
        if lambda.iter().any(Vec::is_empty) {
            return None;
        }
        let mut used: Vec<usize> = lambda
            .iter()
            .flat_map(|v| v.iter().map(|r| r.view))
            .collect();
        used.sort_unstable();
        used.dedup();
        Some(ContainmentPlan {
            lambda,
            used_views: used,
        })
    }
}

/// The view match `M^Qs_V` of a single view into the query, as a sorted set
/// of covered query edges (empty when `V ⋬sim Qs`).
pub fn view_match(view: &Pattern, q: &Pattern) -> Vec<PatternEdgeId> {
    simulate_pattern(view, q)
        .map(|r| r.view_match())
        .unwrap_or_default()
}

/// Algorithm `contain` (Section V-A): decides `Qs ⊑ V` and, on success,
/// returns the mapping `λ` for `MatchJoin`.
pub fn contain(q: &Pattern, views: &ViewSet) -> Option<ContainmentPlan> {
    let ne = q.edge_count();
    let mut lambda: Vec<Vec<ViewEdgeRef>> = vec![Vec::new(); ne];
    let mut covered = vec![false; ne];

    for (vi, vdef) in views.iter() {
        let Some(sim) = simulate_pattern(&vdef.pattern, q) else {
            continue;
        };
        for (vei, qedges) in sim.edge_matches.iter().enumerate() {
            for &qe in qedges {
                covered[qe.index()] = true;
                lambda[qe.index()].push(ViewEdgeRef {
                    view: vi,
                    edge: PatternEdgeId(vei as u32),
                });
            }
        }
    }

    if covered.iter().all(|&c| c) {
        let mut used: Vec<usize> = lambda
            .iter()
            .flat_map(|v| v.iter().map(|r| r.view))
            .collect();
        used.sort_unstable();
        used.dedup();
        Some(ContainmentPlan {
            lambda,
            used_views: used,
        })
    } else {
        None
    }
}

/// Classical query containment `Qs1 ⊑ Qs2` (Corollary 4): the special case
/// of pattern containment with a single view. Quadratic time, in contrast to
/// NP-completeness for relational conjunctive queries.
pub fn query_contained(q1: &Pattern, q2: &Pattern) -> bool {
    let vs = ViewSet::new(vec![crate::view::ViewDef::new("q2", q2.clone())]);
    contain(q1, &vs).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::ViewDef;
    use gpv_pattern::{PatternBuilder, PatternNodeId};

    /// Paper Fig. 1(c).
    fn fig1c() -> Pattern {
        let mut b = PatternBuilder::new();
        let pm = b.node_labeled("PM");
        let dba1 = b.node_labeled("DBA");
        let prg1 = b.node_labeled("PRG");
        let dba2 = b.node_labeled("DBA");
        let prg2 = b.node_labeled("PRG");
        b.edge(pm, dba1);
        b.edge(pm, prg2);
        b.edge(dba1, prg1);
        b.edge(prg1, dba2);
        b.edge(dba2, prg2);
        b.edge(prg2, dba1);
        b.build().unwrap()
    }

    fn fig1_views() -> ViewSet {
        let mut b = PatternBuilder::new();
        let pm = b.node_labeled("PM");
        let dba = b.node_labeled("DBA");
        let prg = b.node_labeled("PRG");
        b.edge(pm, dba);
        b.edge(pm, prg);
        let v1 = b.build().unwrap();

        let mut b = PatternBuilder::new();
        let dba = b.node_labeled("DBA");
        let prg = b.node_labeled("PRG");
        b.edge(dba, prg);
        b.edge(prg, dba);
        let v2 = b.build().unwrap();
        ViewSet::new(vec![ViewDef::new("V1", v1), ViewDef::new("V2", v2)])
    }

    /// The paper's Fig. 4 query: A -> B, A -> C, B -> D, C -> D, B -> E.
    pub(crate) fn fig4_query() -> Pattern {
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let bb = b.node_labeled("B");
        let c = b.node_labeled("C");
        let d = b.node_labeled("D");
        let e = b.node_labeled("E");
        b.edge(a, bb);
        b.edge(a, c);
        b.edge(bb, d);
        b.edge(c, d);
        b.edge(bb, e);
        b.build().unwrap()
    }

    /// The paper's Fig. 4 views V1..V7.
    pub(crate) fn fig4_views() -> ViewSet {
        // V1: C -> D
        let mut b = PatternBuilder::new();
        let c = b.node_labeled("C");
        let d = b.node_labeled("D");
        b.edge(c, d);
        let v1 = b.build().unwrap();
        // V2: B -> E
        let mut b = PatternBuilder::new();
        let bb = b.node_labeled("B");
        let e = b.node_labeled("E");
        b.edge(bb, e);
        let v2 = b.build().unwrap();
        // V3: A -> B, A -> C
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let bb = b.node_labeled("B");
        let c = b.node_labeled("C");
        b.edge(a, bb);
        b.edge(a, c);
        let v3 = b.build().unwrap();
        // V4: B -> D, C -> D
        let mut b = PatternBuilder::new();
        let bb = b.node_labeled("B");
        let c = b.node_labeled("C");
        let d = b.node_labeled("D");
        b.edge(bb, d);
        b.edge(c, d);
        let v4 = b.build().unwrap();
        // V5: B -> D, B -> E
        let mut b = PatternBuilder::new();
        let bb = b.node_labeled("B");
        let d = b.node_labeled("D");
        let e = b.node_labeled("E");
        b.edge(bb, d);
        b.edge(bb, e);
        let v5 = b.build().unwrap();
        // V6: A -> B, A -> C, C -> D
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let bb = b.node_labeled("B");
        let c = b.node_labeled("C");
        let d = b.node_labeled("D");
        b.edge(a, bb);
        b.edge(a, c);
        b.edge(c, d);
        let v6 = b.build().unwrap();
        // V7: A -> B, A -> C, B -> D
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let bb = b.node_labeled("B");
        let c = b.node_labeled("C");
        let d = b.node_labeled("D");
        b.edge(a, bb);
        b.edge(a, c);
        b.edge(bb, d);
        let v7 = b.build().unwrap();

        ViewSet::new(vec![
            ViewDef::new("V1", v1),
            ViewDef::new("V2", v2),
            ViewDef::new("V3", v3),
            ViewDef::new("V4", v4),
            ViewDef::new("V5", v5),
            ViewDef::new("V6", v6),
            ViewDef::new("V7", v7),
        ])
    }

    fn edge(q: &Pattern, u: u32, v: u32) -> PatternEdgeId {
        q.edge_id(PatternNodeId(u), PatternNodeId(v)).unwrap()
    }

    #[test]
    fn example_3_containment() {
        let q = fig1c();
        let views = fig1_views();
        let plan = contain(&q, &views).expect("Qs ⊑ {V1, V2}");
        assert_eq!(plan.used_views, vec![0, 1]);
        // (PM,DBA1) covered by V1 only.
        let c = plan.covering(edge(&q, 0, 1));
        assert!(c.iter().all(|r| r.view == 0));
        // Cycle edges covered by V2 only.
        let c = plan.covering(edge(&q, 1, 2));
        assert!(c.iter().all(|r| r.view == 1));
    }

    #[test]
    fn example_5_fig4_view_matches() {
        // The paper's table of view matches for Fig. 4.
        let q = fig4_query();
        let views = fig4_views();
        let e = |u, v| edge(&q, u, v);
        let expect: Vec<Vec<PatternEdgeId>> = vec![
            vec![e(2, 3)],                   // V1: {(C,D)}
            vec![e(1, 4)],                   // V2: {(B,E)}
            vec![e(0, 1), e(0, 2)],          // V3: {(A,B), (A,C)}
            vec![e(1, 3), e(2, 3)],          // V4: {(B,D), (C,D)}
            vec![e(1, 3), e(1, 4)],          // V5: {(B,D), (B,E)}
            vec![e(0, 1), e(0, 2), e(2, 3)], // V6
            vec![e(0, 1), e(0, 2), e(1, 3)], // V7
        ];
        for (i, want) in expect.iter().enumerate() {
            let mut got = view_match(&views.get(i).pattern, &q);
            got.sort_unstable();
            let mut want = want.clone();
            want.sort_unstable();
            assert_eq!(got, want, "view V{}", i + 1);
        }
        // And the union covers Ep: Qs ⊑ V.
        assert!(contain(&q, &views).is_some());
    }

    #[test]
    fn not_contained_when_edge_uncovered() {
        let q = fig4_query();
        // Only V1 (C->D) and V2 (B->E): (A,B), (A,C), (B,D) uncovered.
        let views = fig4_views().subset(&[0, 1]);
        assert!(contain(&q, &views).is_none());
    }

    #[test]
    fn empty_view_set() {
        let q = fig4_query();
        assert!(contain(&q, &ViewSet::default()).is_none());
    }

    #[test]
    fn query_containment_reflexive() {
        let q = fig4_query();
        assert!(query_contained(&q, &q));
    }

    #[test]
    fn query_containment_asymmetric() {
        // Q1: A -> B; Q2: A -> B, B -> C.
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let bb = b.node_labeled("B");
        b.edge(a, bb);
        let q1 = b.build().unwrap();

        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let bb = b.node_labeled("B");
        let c = b.node_labeled("C");
        b.edge(a, bb);
        b.edge(bb, c);
        let q2 = b.build().unwrap();

        // Q2's matches of (A,B) are a subset of Q1's: Q2 ⊑ Q1? For Q2 ⊑ Q1
        // we need every Q2 edge covered by Q1's view match into Q2 — Q1 is
        // A->B which simulates into Q2 covering only (A,B), not (B,C).
        assert!(!query_contained(&q2, &q1));
        // Q1 ⊑ Q2: Q2 must simulate into Q1; Q2 needs B -> C which Q1
        // lacks, so no.
        assert!(!query_contained(&q1, &q2));
    }

    #[test]
    fn restrict_plan() {
        let q = fig4_query();
        let views = fig4_views();
        let plan = contain(&q, &views).unwrap();
        // V5 ∪ V6 covers everything (the paper's minimum).
        let sub = plan.restrict_to(&[4, 5]).expect("V5+V6 suffice");
        assert_eq!(sub.used_views, vec![4, 5]);
        for e in 0..q.edge_count() {
            assert!(!sub.lambda[e].is_empty());
        }
        // V1 + V2 alone do not cover.
        assert!(plan.restrict_to(&[0, 1]).is_none());
    }

    #[test]
    fn lambda_entries_really_cover() {
        // Every λ entry (vi, eV) must actually list e in S_eV of V(Qs).
        let q = fig4_query();
        let views = fig4_views();
        let plan = contain(&q, &views).unwrap();
        for (ei, entries) in plan.lambda.iter().enumerate() {
            for r in entries {
                let sim = simulate_pattern(&views.get(r.view).pattern, &q).unwrap();
                assert!(
                    sim.edge_matches[r.edge.index()].contains(&PatternEdgeId(ei as u32)),
                    "λ entry does not witness coverage"
                );
            }
        }
    }
}
