//! `MatchJoin` — answering a pattern query from materialized views
//! (paper Fig. 2, Theorem 1).
//!
//! Given `Qs ⊑ V` witnessed by a [`ContainmentPlan`] `λ`, `MatchJoin`
//! computes `Qs(G)` from the extensions `V(G)` **without accessing `G`**:
//!
//! 1. initialize each `Se` as `⋃_{e' ∈ λ(e)} S_e'` (merge);
//! 2. remove invalid matches until a fixpoint — exactly the matches whose
//!    endpoints lose all witnesses for some pattern edge.
//!
//! Two strategies are provided:
//!
//! * [`JoinStrategy::NaiveFixpoint`] — the literal Fig. 2 loop: rescan match
//!   sets until stable (`MatchJoin_nopt` in the experiments);
//! * [`JoinStrategy::RankedBottomUp`] — the Section III optimization: a
//!   support-counter worklist drained in ascending SCC-rank order, so match
//!   sets of edges below any non-singleton SCC are visited at most once
//!   (Lemma 2). This is the default.
//!
//! Complexity: `O(|Qs||V(G)| + |V(G)|²)` — versus
//! `O(|Qs|² + |Qs||G| + |G|²)` for evaluating `Qs` on `G` directly.

use crate::containment::ContainmentPlan;
use crate::view::ViewExtensions;
use gpv_graph::NodeId;
use gpv_matching::result::MatchResult;
use gpv_pattern::{Pattern, PatternNodeId};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::{HashMap, HashSet, VecDeque};

/// Merged per-edge match sets, the fixpoint's working input. Sets sourced
/// from a view borrow the extension arena's canonical flat slice
/// (`Cow::Borrowed` — zero per-pair work in the merge), while sets built by
/// a union or a graph scan own their pairs (`Cow::Owned`).
pub(crate) type MergedSets<'a> = Vec<Cow<'a, [(NodeId, NodeId)]>>;

/// Worklist discipline for the fixpoint phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinStrategy {
    /// The optimized bottom-up strategy (Section III): counter-based
    /// worklist drained in ascending pattern-node rank.
    RankedBottomUp,
    /// The unoptimized Fig. 2 fixpoint (`MatchJoin_nopt`): repeatedly rescan
    /// all match sets until nothing changes.
    NaiveFixpoint,
    /// [`RankedBottomUp`](JoinStrategy::RankedBottomUp) with the per-edge
    /// build and support-initialization phases fanned across worker threads
    /// (thread count = available parallelism; see [`crate::parallel`]).
    /// Deterministic: per-edge results merge in edge order and the final
    /// fixpoint is confluent. With one thread it runs inline and matches
    /// the sequential strategy exactly.
    Parallel,
}

/// Instrumentation for the Lemma 2 / Fig. 8(f) experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinStats {
    /// Number of times a match set `Se` was scanned or updated.
    pub edge_visits: u64,
    /// Number of match pairs removed during refinement.
    pub removals: u64,
    /// Total pairs after the merge step (the working-set size).
    pub merged_pairs: u64,
}

/// Errors from [`match_join`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JoinError {
    /// The plan's λ has a different number of entries than the query has
    /// edges (plan built for another query).
    PlanMismatch,
    /// λ references a view index beyond the extensions.
    ViewOutOfRange(usize),
    /// The query has no edges; `Qs(G)` is defined via edge match sets.
    NoEdges,
    /// A plan source is [`EdgeSource::Graph`](crate::plan::EdgeSource) but
    /// no data graph was supplied to the executor.
    GraphRequired,
    /// A parallel worker panicked while processing the given pattern-edge
    /// index (caught and resurfaced instead of aborting the process).
    WorkerPanicked(usize),
    /// A parallel worker thread died outside the per-item panic catch, so
    /// no failing edge index is known. Distinct from
    /// [`WorkerPanicked`](Self::WorkerPanicked) — this used to be encoded
    /// as `WorkerPanicked(usize::MAX)`, which callers reported as a
    /// nonsense edge index.
    WorkerLost,
}

impl From<crate::parallel::ParError> for JoinError {
    fn from(e: crate::parallel::ParError) -> Self {
        match e {
            crate::parallel::ParError::Panicked(i) => JoinError::WorkerPanicked(i),
            crate::parallel::ParError::Lost => JoinError::WorkerLost,
        }
    }
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::PlanMismatch => write!(f, "containment plan does not match the query"),
            JoinError::ViewOutOfRange(i) => write!(f, "plan references missing view {i}"),
            JoinError::NoEdges => write!(f, "query has no edges"),
            JoinError::GraphRequired => {
                write!(f, "plan sources an edge from G but no graph was supplied")
            }
            JoinError::WorkerPanicked(e) => {
                write!(
                    f,
                    "parallel worker panicked while processing pattern edge {e}"
                )
            }
            JoinError::WorkerLost => {
                write!(f, "parallel worker lost (failing pattern edge unknown)")
            }
        }
    }
}

impl std::error::Error for JoinError {}

/// Answers `Qs` using views with the default (optimized) strategy.
pub fn match_join(
    q: &Pattern,
    plan: &ContainmentPlan,
    ext: &ViewExtensions,
) -> Result<MatchResult, JoinError> {
    match_join_with(q, plan, ext, JoinStrategy::RankedBottomUp).map(|(r, _)| r)
}

/// Answers `Qs` using views with an explicit strategy, returning stats.
pub fn match_join_with(
    q: &Pattern,
    plan: &ContainmentPlan,
    ext: &ViewExtensions,
    strategy: JoinStrategy,
) -> Result<(MatchResult, JoinStats), JoinError> {
    let merged = merge_step(q, plan, ext)?;
    run_fixpoint(q, merged, strategy)
}

/// Like [`match_join_with`] but initializing with the *literal* Fig. 2 merge
/// `Se := ⋃_{e' ∈ λ(e)} S_e'` instead of the narrowed single-witness merge.
/// Used by the optimization ablation (Fig. 8(f)): the union leaves the
/// fixpoint real pruning work, which is where the bottom-up strategy earns
/// its keep.
pub fn match_join_union_with(
    q: &Pattern,
    plan: &ContainmentPlan,
    ext: &ViewExtensions,
    strategy: JoinStrategy,
) -> Result<(MatchResult, JoinStats), JoinError> {
    // Under the parallel strategy the per-edge sort/dedup of the union
    // itself fans across workers (chunk-sort + k-way merge — identical
    // output, see `parallel::par_sort_dedup`).
    let merged = if strategy == JoinStrategy::Parallel {
        crate::parallel::par_merge_step_union(
            q,
            plan,
            ext,
            crate::parallel::auto_threads(),
            crate::cost::CostModel::MIN_CHUNK_PAIRS,
        )?
    } else {
        merge_step_union(q, plan, ext)?
    };
    run_fixpoint(q, merged, strategy)
}

/// Runs the default (ranked) fixpoint over caller-supplied merged sets.
/// Used by the hybrid evaluator in [`crate::partial`], whose merge mixes
/// view extensions and surgical `G` scans.
pub(crate) fn run_fixpoint_public(
    q: &Pattern,
    merged: MergedSets<'_>,
) -> Result<(MatchResult, JoinStats), JoinError> {
    run_fixpoint(q, merged, JoinStrategy::RankedBottomUp)
}

/// Runs the fixpoint phase over caller-supplied merged sets with an
/// explicit strategy — the execution backend behind both the λ-based entry
/// points and the [`EdgeSource`](crate::plan::EdgeSource)-honoring engine
/// path (whose merge is built by `partial::merged_from_sources`).
pub(crate) fn run_fixpoint(
    q: &Pattern,
    merged: MergedSets<'_>,
    strategy: JoinStrategy,
) -> Result<(MatchResult, JoinStats), JoinError> {
    let mut stats = JoinStats {
        merged_pairs: merged.iter().map(|s| s.len() as u64).sum(),
        ..JoinStats::default()
    };
    let sets = match strategy {
        JoinStrategy::RankedBottomUp => ranked_fixpoint(q, merged, &mut stats),
        JoinStrategy::NaiveFixpoint => naive_fixpoint(q, merged, &mut stats),
        JoinStrategy::Parallel => crate::parallel::par_ranked_fixpoint(
            q,
            merged,
            &mut stats,
            crate::parallel::auto_threads(),
        )?,
    };
    Ok((assemble(q, sets), stats))
}

/// Canonicalizes one edge's borrowed match set: sorted, duplicate-free.
///
/// Since the columnar-arena refactor, sets read from [`ViewExtensions`] are
/// canonical by construction ([`CompactView::freeze`](crate::compact::CompactView::freeze)
/// sorts + dedups defensively at freeze time), so the merge borrows them
/// verbatim and no production path re-normalizes. This survives as the test
/// oracle asserting that arena slices really are in canonical form —
/// duplicates there would inflate [`JoinStats::merged_pairs`], CSR sizes,
/// and the support counters.
#[cfg(test)]
pub(crate) fn canonical_pairs(set: &[(NodeId, NodeId)]) -> Vec<(NodeId, NodeId)> {
    let mut v = set.to_vec();
    if !v.windows(2).all(|w| w[0] < w[1]) {
        v.sort_unstable();
        v.dedup();
    }
    v
}

/// Lines 1-4 of Fig. 2, with a witness-narrowing optimization.
///
/// The paper initializes `Se := ⋃_{e' ∈ λ(e)} S_e'`. Any *single* entry of
/// `λ(e)` already suffices: if `e ∈ S_eV` (the view match of `V` into `Qs`
/// lists `e` for view edge `eV`), then for every `G`, `Se(G) ⊆ S_eV(G)` —
/// simulations compose, so a `G`-match of `e`'s endpoints also matches
/// `eV`'s endpoints, and the pair is a real edge either way. A singleton
/// `λ'(e) ⊆ λ(e)` is therefore also a containment witness, and we pick the
/// entry with the smallest materialized extension, minimizing the `|V(G)|`
/// that the join reads (the quantity Theorem 1's complexity is measured
/// in). The `union_lambda` escape hatch preserves the literal Fig. 2
/// behaviour for the ablation bench.
pub(crate) fn merge_step<'a>(
    q: &Pattern,
    plan: &ContainmentPlan,
    ext: &'a ViewExtensions,
) -> Result<MergedSets<'a>, JoinError> {
    if q.edge_count() == 0 {
        return Err(JoinError::NoEdges);
    }
    if plan.lambda.len() != q.edge_count() {
        return Err(JoinError::PlanMismatch);
    }
    let mut merged = Vec::with_capacity(q.edge_count());
    for entries in &plan.lambda {
        for r in entries {
            if r.view >= ext.extensions.len() {
                return Err(JoinError::ViewOutOfRange(r.view));
            }
        }
        let best = entries
            .iter()
            .min_by_key(|r| ext.edge_set(r.view, r.edge).len())
            .ok_or(JoinError::PlanMismatch)?;
        // Arena regions are canonical by freeze — borrow the flat slice
        // directly: the merge allocates nothing per pair.
        merged.push(Cow::Borrowed(ext.edge_set(best.view, best.edge)));
    }
    Ok(merged)
}

/// The literal Fig. 2 merge: `Se := ⋃_{e' ∈ λ(e)} S_e'`. Exposed for the
/// union-vs-narrowed ablation; produces the same final result as
/// `merge_step` (both initializations contain the true `Se`).
pub fn merge_step_union<'a>(
    q: &Pattern,
    plan: &ContainmentPlan,
    ext: &'a ViewExtensions,
) -> Result<MergedSets<'a>, JoinError> {
    if q.edge_count() == 0 {
        return Err(JoinError::NoEdges);
    }
    if plan.lambda.len() != q.edge_count() {
        return Err(JoinError::PlanMismatch);
    }
    let mut merged = Vec::with_capacity(q.edge_count());
    for entries in &plan.lambda {
        let mut set: Vec<(NodeId, NodeId)> = Vec::new();
        for r in entries {
            if r.view >= ext.extensions.len() {
                return Err(JoinError::ViewOutOfRange(r.view));
            }
            set.extend_from_slice(ext.edge_set(r.view, r.edge));
        }
        set.sort_unstable();
        set.dedup();
        merged.push(Cow::Owned(set));
    }
    Ok(merged)
}

/// Candidate node sets implied by merged edge sets: for a node with
/// out-edges, the intersection of the sources of every out-edge set (a match
/// must witness them all); for a sink, the union of targets of its in-edge
/// sets (the only way it can appear in the result).
pub(crate) fn initial_candidates<S: std::ops::Deref<Target = [(NodeId, NodeId)]>>(
    q: &Pattern,
    merged: &[S],
) -> Vec<HashSet<NodeId>> {
    q.nodes()
        .map(|u| {
            let outs = q.out_edges(u);
            if !outs.is_empty() {
                let mut iter = outs.iter();
                let &(_, e0) = iter.next().expect("nonempty");
                let mut set: HashSet<NodeId> = merged[e0.index()].iter().map(|&(s, _)| s).collect();
                for &(_, e) in iter {
                    let srcs: HashSet<NodeId> = merged[e.index()].iter().map(|&(s, _)| s).collect();
                    set.retain(|v| srcs.contains(v));
                }
                set
            } else {
                q.in_edges(u)
                    .iter()
                    .flat_map(|&(_, e)| merged[e.index()].iter().map(|&(_, t)| t))
                    .collect()
            }
        })
        .collect()
}

/// Per-edge compacted representation of a merged match set: dense-id pair
/// list, endpoint presence bitsets, and forward/reverse CSR adjacency. Pure
/// per-edge data, so both the sequential and the parallel executor build it
/// — the latter one edge per worker (see [`crate::parallel`]).
#[derive(Debug)]
pub(crate) struct EdgeCsr {
    /// Compacted `(src, tgt)` pairs, in merge order.
    pub pairs: Vec<(u32, u32)>,
    /// Dense ids occurring as sources.
    pub srcs: gpv_graph::BitSet,
    /// Dense ids occurring as targets.
    pub tgts: gpv_graph::BitSet,
    /// Forward CSR: offsets by source, target payloads.
    pub fwd: (Vec<u32>, Vec<u32>),
    /// Reverse CSR: offsets by target, source payloads.
    pub rev: (Vec<u32>, Vec<u32>),
}

/// Dense-id compaction over every node mentioned in the merged sets (first
/// occurrence order, hence deterministic).
pub(crate) fn compact_index<S: std::ops::Deref<Target = [(NodeId, NodeId)]>>(
    merged: &[S],
) -> (HashMap<NodeId, u32>, Vec<NodeId>) {
    let mut index: HashMap<NodeId, u32> = HashMap::new();
    for set in merged {
        for &(s, t) in set.iter() {
            let next = index.len() as u32;
            index.entry(s).or_insert(next);
            let next = index.len() as u32;
            index.entry(t).or_insert(next);
        }
    }
    let mut rev_index = vec![NodeId(0); index.len()];
    for (&node, &i) in &index {
        rev_index[i as usize] = node;
    }
    (index, rev_index)
}

/// Builds one edge's [`EdgeCsr`] (pure function of that edge's set).
pub(crate) fn build_edge_csr(
    set: &[(NodeId, NodeId)],
    index: &HashMap<NodeId, u32>,
    m: usize,
) -> EdgeCsr {
    use gpv_graph::BitSet;
    let mut ps = Vec::with_capacity(set.len());
    let mut sb = BitSet::new(m);
    let mut tb = BitSet::new(m);
    for &(s, t) in set {
        let (cs, ct) = (index[&s], index[&t]);
        ps.push((cs, ct));
        sb.insert(cs as usize);
        tb.insert(ct as usize);
    }
    let mut fo = vec![0u32; m + 1];
    for &(s, _) in &ps {
        fo[s as usize + 1] += 1;
    }
    for i in 0..m {
        fo[i + 1] += fo[i];
    }
    let mut cur = fo.clone();
    let mut ft = vec![0u32; ps.len()];
    for &(s, t) in &ps {
        ft[cur[s as usize] as usize] = t;
        cur[s as usize] += 1;
    }
    let mut ro = vec![0u32; m + 1];
    for &(_, t) in &ps {
        ro[t as usize + 1] += 1;
    }
    for i in 0..m {
        ro[i + 1] += ro[i];
    }
    let mut cur = ro.clone();
    let mut rs = vec![0u32; ps.len()];
    for &(s, t) in &ps {
        rs[cur[t as usize] as usize] = s;
        cur[t as usize] += 1;
    }
    EdgeCsr {
        pairs: ps,
        srcs: sb,
        tgts: tb,
        fwd: (fo, ft),
        rev: (ro, rs),
    }
}

/// Candidate sets per pattern node: intersection of out-edge sources
/// (non-sinks) or union of in-edge targets (sinks). `None` when a node has
/// no candidates (`Qs(G) = ∅`).
pub(crate) fn build_candidates(
    q: &Pattern,
    csrs: &[EdgeCsr],
    m: usize,
) -> Option<Vec<gpv_graph::BitSet>> {
    use gpv_graph::BitSet;
    let mut cand: Vec<BitSet> = Vec::with_capacity(q.node_count());
    for u in q.nodes() {
        let outs = q.out_edges(u);
        let set = if !outs.is_empty() {
            let mut it = outs.iter();
            let mut set = csrs[it.next().expect("nonempty").1.index()].srcs.clone();
            for &(_, e) in it {
                set.intersect_with(&csrs[e.index()].srcs);
            }
            set
        } else {
            let mut set = BitSet::new(m);
            for &(_, e) in q.in_edges(u) {
                set.union_with(&csrs[e.index()].tgts);
            }
            set
        };
        if set.is_empty() {
            return None;
        }
        cand.push(set);
    }
    Some(cand)
}

/// Initial support counters for one pattern edge `e = (u, t)`: for each
/// candidate `v` of `u`, how many of `v`'s CSR successors are candidates of
/// `t`. Returns the counter vector plus the zero-support seeds (candidates
/// of `u` with no witness). Pure per-edge data.
pub(crate) fn edge_support(
    csr: &EdgeCsr,
    cand_u: &gpv_graph::BitSet,
    cand_t: &gpv_graph::BitSet,
    m: usize,
) -> (Vec<u32>, Vec<u32>) {
    let (fo, ft) = &csr.fwd;
    let mut support = vec![0u32; m];
    let mut seeds = Vec::new();
    for v in cand_u.iter() {
        let (a, b) = (fo[v] as usize, fo[v + 1] as usize);
        let cnt = ft[a..b]
            .iter()
            .filter(|&&t2| cand_t.contains(t2 as usize))
            .count() as u32;
        support[v] = cnt;
        if cnt == 0 {
            seeds.push(v as u32);
        }
    }
    (support, seeds)
}

/// The sequential bottom-up drain (Lemma 2) plus the final per-edge filter:
/// removes zero-support candidates in ascending SCC rank, cascading through
/// in-edges, then maps surviving compact pairs back to [`NodeId`]s. Shared
/// verbatim by the sequential and parallel executors — only the stages
/// *before* the drain are parallelized, so both produce identical results.
pub(crate) fn drain_and_extract(
    q: &Pattern,
    csrs: &[EdgeCsr],
    mut cand: Vec<gpv_graph::BitSet>,
    mut support: Vec<Vec<u32>>,
    seeds: &[(PatternNodeId, Vec<u32>)],
    rev_index: &[NodeId],
    stats: &mut JoinStats,
) -> Option<Vec<Vec<(NodeId, NodeId)>>> {
    use gpv_graph::BitSet;
    let np = q.node_count();
    let ne = q.edge_count();
    let m = rev_index.len();
    let cond = q.condensation();
    let max_rank = (0..np as u32).map(|u| cond.rank(u)).max().unwrap_or(0) as usize;

    let mut buckets: Vec<VecDeque<(PatternNodeId, u32)>> = vec![VecDeque::new(); max_rank + 1];
    let mut scheduled: Vec<BitSet> = vec![BitSet::new(m); np];
    // Seed in edge order: deterministic regardless of how the per-edge seed
    // lists were computed.
    for (u, vs) in seeds {
        for &v in vs {
            if scheduled[u.index()].insert(v as usize) {
                buckets[cond.rank(u.0) as usize].push_back((*u, v));
            }
        }
    }

    // Drain in ascending rank (bottom-up, Lemma 2).
    #[allow(clippy::while_let_loop)] // the else-break reads better with the bucket scan
    loop {
        let Some(rank) = (0..buckets.len()).find(|&r| !buckets[r].is_empty()) else {
            break;
        };
        let (u, v) = buckets[rank].pop_front().expect("nonempty bucket");
        if !cand[u.index()].remove(v as usize) {
            continue;
        }
        stats.removals += 1;
        if cand[u.index()].is_empty() {
            return None;
        }
        for &(u0, e0) in q.in_edges(u) {
            stats.edge_visits += 1;
            let (ro, rs) = &csrs[e0.index()].rev;
            let (a, b) = (ro[v as usize] as usize, ro[v as usize + 1] as usize);
            for &w in &rs[a..b] {
                if cand[u0.index()].contains(w as usize)
                    && !scheduled[u0.index()].contains(w as usize)
                {
                    let s = &mut support[e0.index()][w as usize];
                    *s = s.saturating_sub(1);
                    if *s == 0 {
                        scheduled[u0.index()].insert(w as usize);
                        buckets[cond.rank(u0.0) as usize].push_back((u0, w));
                    }
                }
            }
        }
    }

    // Final sets: pairs whose endpoints survived, mapped back to NodeIds.
    let mut out = Vec::with_capacity(ne);
    for (ei, csr) in csrs.iter().enumerate() {
        stats.edge_visits += 1;
        let (u, t) = q.edge(gpv_pattern::PatternEdgeId(ei as u32));
        let filtered = filter_surviving(&csr.pairs, &cand[u.index()], &cand[t.index()], rev_index);
        if filtered.is_empty() {
            return None;
        }
        out.push(filtered);
    }
    Some(out)
}

/// One edge's surviving pairs mapped back to [`NodeId`]s (pure per-edge).
pub(crate) fn filter_surviving(
    pairs: &[(u32, u32)],
    cand_u: &gpv_graph::BitSet,
    cand_t: &gpv_graph::BitSet,
    rev_index: &[NodeId],
) -> Vec<(NodeId, NodeId)> {
    pairs
        .iter()
        .filter(|&&(s, w)| cand_u.contains(s as usize) && cand_t.contains(w as usize))
        .map(|&(s, w)| (rev_index[s as usize], rev_index[w as usize]))
        .collect()
}

/// The optimized fixpoint: support counters + rank-bucketed worklist over a
/// *compacted* node domain — only nodes occurring in the merged sets get
/// dense ids, so all hot-path structures are flat vectors and bitsets sized
/// by `|V(G)|`, not `|G|`. Returns the refined per-edge sets; any empty set
/// means `Qs(G) = ∅`.
pub(crate) fn ranked_fixpoint(
    q: &Pattern,
    merged: MergedSets<'_>,
    stats: &mut JoinStats,
) -> Option<Vec<Vec<(NodeId, NodeId)>>> {
    let ne = q.edge_count();
    let (index, rev_index) = compact_index(&merged);
    let m = index.len();

    let mut csrs = Vec::with_capacity(ne);
    for set in &merged {
        stats.edge_visits += 1;
        csrs.push(build_edge_csr(set, &index, m));
    }

    let cand = build_candidates(q, &csrs, m)?;

    let mut support: Vec<Vec<u32>> = vec![Vec::new(); ne];
    let mut seeds: Vec<(PatternNodeId, Vec<u32>)> = Vec::new();
    for u in q.nodes() {
        for &(t, e) in q.out_edges(u) {
            stats.edge_visits += 1;
            let (sup, zero) = edge_support(&csrs[e.index()], &cand[u.index()], &cand[t.index()], m);
            support[e.index()] = sup;
            seeds.push((u, zero));
        }
    }

    drain_and_extract(q, &csrs, cand, support, &seeds, &rev_index, stats)
}

/// The literal Fig. 2 fixpoint: rescan every match set until stable.
///
/// Works over [`MergedSets`]: a borrowed (arena-backed) set is counted
/// first and only copied-on-write when the rescan actually prunes it, so a
/// pass that removes nothing allocates nothing.
pub(crate) fn naive_fixpoint(
    q: &Pattern,
    mut merged: MergedSets<'_>,
    stats: &mut JoinStats,
) -> Option<Vec<Vec<(NodeId, NodeId)>>> {
    loop {
        // Recompute candidate sets from the current match sets.
        let cand = initial_candidates(q, &merged);
        if cand.iter().any(HashSet::is_empty) {
            return None;
        }
        let mut changed = false;
        #[allow(clippy::needless_range_loop)] // ei doubles as the PatternEdgeId
        for ei in 0..merged.len() {
            stats.edge_visits += 1;
            let (u, t) = q.edge(gpv_pattern::PatternEdgeId(ei as u32));
            let before = merged[ei].len();
            let surviving = merged[ei]
                .iter()
                .filter(|(s, w)| cand[u.index()].contains(s) && cand[t.index()].contains(w))
                .count();
            if surviving == 0 {
                return None;
            }
            if surviving != before {
                merged[ei]
                    .to_mut()
                    .retain(|(s, w)| cand[u.index()].contains(s) && cand[t.index()].contains(w));
                stats.removals += (before - surviving) as u64;
                changed = true;
            }
        }
        if !changed {
            return Some(merged.into_iter().map(Cow::into_owned).collect());
        }
    }
}

/// Builds the final [`MatchResult`] (or empty) from refined sets.
pub(crate) fn assemble(q: &Pattern, sets: Option<Vec<Vec<(NodeId, NodeId)>>>) -> MatchResult {
    let Some(sets) = sets else {
        return MatchResult::empty();
    };
    // Node matches = nodes appearing in surviving sets in the role dictated
    // by the pattern (sources of out-edges / targets of in-edges).
    let mut node_sets: Vec<HashSet<NodeId>> = vec![HashSet::new(); q.node_count()];
    for (ei, set) in sets.iter().enumerate() {
        let (u, t) = q.edge(gpv_pattern::PatternEdgeId(ei as u32));
        for &(s, w) in set {
            node_sets[u.index()].insert(s);
            node_sets[t.index()].insert(w);
        }
    }
    if node_sets.iter().any(HashSet::is_empty) {
        return MatchResult::empty();
    }
    MatchResult::new(
        q,
        node_sets
            .into_iter()
            .map(|s| s.into_iter().collect())
            .collect(),
        sets,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::contain;
    use crate::view::{materialize, ViewDef, ViewSet};
    use gpv_graph::{DataGraph, GraphBuilder};
    use gpv_matching::simulation::match_pattern;
    use gpv_pattern::PatternBuilder;

    /// Paper Fig. 1(a).
    fn fig1a() -> DataGraph {
        let mut b = GraphBuilder::new();
        let bob = b.add_node(["PM"]);
        let walt = b.add_node(["PM"]);
        let mat = b.add_node(["DBA"]);
        let fred = b.add_node(["DBA"]);
        let mary = b.add_node(["DBA"]);
        let dan = b.add_node(["PRG"]);
        let pat = b.add_node(["PRG"]);
        let bill = b.add_node(["PRG"]);
        let jean = b.add_node(["BA"]);
        let emmy = b.add_node(["ST"]);
        b.add_edge(bob, mat);
        b.add_edge(walt, mat);
        b.add_edge(bob, dan);
        b.add_edge(walt, bill);
        b.add_edge(fred, pat);
        b.add_edge(mat, pat);
        b.add_edge(mary, bill);
        b.add_edge(dan, fred);
        b.add_edge(pat, mary);
        b.add_edge(pat, mat);
        b.add_edge(bill, mat);
        b.add_edge(bob, jean);
        b.add_edge(jean, emmy);
        b.build()
    }

    fn fig1c() -> Pattern {
        let mut b = PatternBuilder::new();
        let pm = b.node_labeled("PM");
        let dba1 = b.node_labeled("DBA");
        let prg1 = b.node_labeled("PRG");
        let dba2 = b.node_labeled("DBA");
        let prg2 = b.node_labeled("PRG");
        b.edge(pm, dba1);
        b.edge(pm, prg2);
        b.edge(dba1, prg1);
        b.edge(prg1, dba2);
        b.edge(dba2, prg2);
        b.edge(prg2, dba1);
        b.build().unwrap()
    }

    fn fig1_views() -> ViewSet {
        let mut b = PatternBuilder::new();
        let pm = b.node_labeled("PM");
        let dba = b.node_labeled("DBA");
        let prg = b.node_labeled("PRG");
        b.edge(pm, dba);
        b.edge(pm, prg);
        let v1 = b.build().unwrap();
        let mut b = PatternBuilder::new();
        let dba = b.node_labeled("DBA");
        let prg = b.node_labeled("PRG");
        b.edge(dba, prg);
        b.edge(prg, dba);
        let v2 = b.build().unwrap();
        ViewSet::new(vec![ViewDef::new("V1", v1), ViewDef::new("V2", v2)])
    }

    /// Paper Fig. 3(a) graph and Fig. 3(b) views.
    fn fig3() -> (DataGraph, ViewSet, Pattern) {
        let mut b = GraphBuilder::new();
        let pm1 = b.add_node(["PM"]);
        let ai1 = b.add_node(["AI"]);
        let ai2 = b.add_node(["AI"]);
        let bio1 = b.add_node(["Bio"]);
        let se1 = b.add_node(["SE"]);
        let se2 = b.add_node(["SE"]);
        let db1 = b.add_node(["DB"]);
        let db2 = b.add_node(["DB"]);
        b.add_edge(pm1, ai1);
        b.add_edge(pm1, ai2);
        b.add_edge(ai2, bio1);
        b.add_edge(db1, ai2);
        b.add_edge(db2, ai1);
        b.add_edge(ai1, se1);
        b.add_edge(ai2, se2);
        b.add_edge(se1, db2);
        b.add_edge(se2, db1);
        b.add_edge(se1, bio1);
        let g = b.build();

        // V1: AI -> Bio, PM -> AI.
        let mut pb = PatternBuilder::new();
        let ai = pb.node_labeled("AI");
        let bio = pb.node_labeled("Bio");
        let pm = pb.node_labeled("PM");
        pb.edge(ai, bio);
        pb.edge(pm, ai);
        let v1 = pb.build().unwrap();
        // V2: DB -> AI, AI -> SE, SE -> DB.
        let mut pb = PatternBuilder::new();
        let db = pb.node_labeled("DB");
        let ai = pb.node_labeled("AI");
        let se = pb.node_labeled("SE");
        pb.edge(db, ai);
        pb.edge(ai, se);
        pb.edge(se, db);
        let v2 = pb.build().unwrap();
        let views = ViewSet::new(vec![ViewDef::new("V1", v1), ViewDef::new("V2", v2)]);

        // Qs (Fig. 3(c)): PM -> AI, AI -> Bio, DB -> AI, AI -> SE, SE -> DB.
        let mut pb = PatternBuilder::new();
        let pm = pb.node_labeled("PM");
        let ai = pb.node_labeled("AI");
        let bio = pb.node_labeled("Bio");
        let db = pb.node_labeled("DB");
        let se = pb.node_labeled("SE");
        pb.edge(pm, ai);
        pb.edge(ai, bio);
        pb.edge(db, ai);
        pb.edge(ai, se);
        pb.edge(se, db);
        let q = pb.build().unwrap();
        (g, views, q)
    }

    #[test]
    fn theorem_1_equivalence_fig1() {
        let g = fig1a();
        let q = fig1c();
        let views = fig1_views();
        let plan = contain(&q, &views).expect("Example 3: Qs ⊑ V");
        let ext = materialize(&views, &g);
        let via_views = match_join(&q, &plan, &ext).unwrap();
        let direct = match_pattern(&q, &g);
        assert_eq!(via_views, direct, "MatchJoin(V(G)) == Match(G)");
        assert!(!direct.is_empty());
    }

    #[test]
    fn example_4_fig3_with_invalid_match_removal() {
        // The paper walks through MatchJoin removing (AI1,SE1) from
        // S(AI,SE), then (SE1,DB2) and (DB2,AI2) cascade out.
        let (g, views, q) = fig3();
        let plan = contain(&q, &views).expect("Qs ⊑ V");
        let ext = materialize(&views, &g);
        let (r, stats) = match_join_with(&q, &plan, &ext, JoinStrategy::RankedBottomUp).unwrap();
        assert!(!r.is_empty());
        // The paper counts three removed pairs: (AI1,SE1), (SE1,DB2),
        // (DB2,AI1). Our node-centric refinement excludes AI1 already at
        // candidate initialization (source intersection), so it counts the
        // two cascaded node removals (DB2 from DB, SE1 from SE).
        assert!(stats.removals >= 2, "cascade: {stats:?}");

        let direct = match_pattern(&q, &g);
        assert_eq!(r, direct);

        // Expected final table (Example 4): single pairs per edge.
        let e = |a: u32, b: u32| q.edge_id(PatternNodeId(a), PatternNodeId(b)).unwrap();
        let names = |pairs: &[(NodeId, NodeId)]| -> Vec<(u32, u32)> {
            pairs.iter().map(|&(x, y)| (x.0, y.0)).collect()
        };
        assert_eq!(
            names(r.edge_set(e(0, 1))),
            vec![(0, 2)],
            "(PM,AI)=(PM1,AI2)"
        );
        assert_eq!(
            names(r.edge_set(e(1, 2))),
            vec![(2, 3)],
            "(AI,Bio)=(AI2,Bio1)"
        );
        assert_eq!(
            names(r.edge_set(e(3, 1))),
            vec![(6, 2)],
            "(DB,AI)=(DB1,AI2)"
        );
        assert_eq!(
            names(r.edge_set(e(1, 4))),
            vec![(2, 5)],
            "(AI,SE)=(AI2,SE2)"
        );
        assert_eq!(
            names(r.edge_set(e(4, 3))),
            vec![(5, 6)],
            "(SE,DB)=(SE2,DB1)"
        );
    }

    #[test]
    fn strategies_agree() {
        let (g, views, q) = fig3();
        let plan = contain(&q, &views).unwrap();
        let ext = materialize(&views, &g);
        let (a, _) = match_join_with(&q, &plan, &ext, JoinStrategy::RankedBottomUp).unwrap();
        let (b, _) = match_join_with(&q, &plan, &ext, JoinStrategy::NaiveFixpoint).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_when_views_empty_on_g() {
        // Views match nothing in G: MatchJoin returns ∅.
        let mut b = GraphBuilder::new();
        let x = b.add_node(["X"]);
        let y = b.add_node(["Y"]);
        b.add_edge(x, y);
        let g = b.build();
        let q = fig1c();
        let views = fig1_views();
        let plan = contain(&q, &views).unwrap();
        let ext = materialize(&views, &g);
        let r = match_join(&q, &plan, &ext).unwrap();
        assert!(r.is_empty());
        assert_eq!(match_pattern(&q, &g), r);
    }

    #[test]
    fn plan_mismatch_detected() {
        let (g, views, q) = fig3();
        let plan = contain(&q, &views).unwrap();
        let ext = materialize(&views, &g);
        let other_q = fig1c();
        assert_eq!(
            match_join(&other_q, &plan, &ext).unwrap_err(),
            JoinError::PlanMismatch
        );
    }

    #[test]
    fn view_out_of_range_detected() {
        let (g, views, q) = fig3();
        let plan = contain(&q, &views).unwrap();
        let ext = ViewExtensions {
            extensions: vec![materialize(&views, &g).extensions[0].clone()],
        };
        assert_eq!(
            match_join(&q, &plan, &ext).unwrap_err(),
            JoinError::ViewOutOfRange(1)
        );
    }

    #[test]
    fn dag_pattern_single_visit_lemma2() {
        // Lemma 2: for a DAG pattern, the bottom-up strategy visits each
        // match set O(1) times — bounded here by 3 bookkeeping passes
        // (build, init, final) plus in-edge propagation only on removal.
        let mut b = GraphBuilder::new();
        let a1 = b.add_node(["A"]);
        let b1 = b.add_node(["B"]);
        let c1 = b.add_node(["C"]);
        let b2 = b.add_node(["B"]);
        b.add_edge(a1, b1);
        b.add_edge(b1, c1);
        b.add_edge(a1, b2); // b2 has no C successor
        let g = b.build();

        let mut pb = PatternBuilder::new();
        let ua = pb.node_labeled("A");
        let ub = pb.node_labeled("B");
        let uc = pb.node_labeled("C");
        pb.edge(ua, ub);
        pb.edge(ub, uc);
        let q = pb.build().unwrap();
        let views = ViewSet::new(vec![
            ViewDef::new("Vab", {
                let mut pb = PatternBuilder::new();
                let x = pb.node_labeled("A");
                let y = pb.node_labeled("B");
                pb.edge(x, y);
                pb.build().unwrap()
            }),
            ViewDef::new("Vbc", {
                let mut pb = PatternBuilder::new();
                let x = pb.node_labeled("B");
                let y = pb.node_labeled("C");
                pb.edge(x, y);
                pb.build().unwrap()
            }),
        ]);
        let plan = contain(&q, &views).unwrap();
        let ext = materialize(&views, &g);
        let (r, stats) = match_join_with(&q, &plan, &ext, JoinStrategy::RankedBottomUp).unwrap();
        assert_eq!(r, match_pattern(&q, &g));
        // 2 edges × 3 passes + at most |removals| propagation visits.
        assert!(
            stats.edge_visits <= 2 * 3 + stats.removals + 2,
            "visits {} removals {}",
            stats.edge_visits,
            stats.removals
        );
    }

    /// Regression (canonicalization): a stored extension containing
    /// duplicate pairs — possible for caches or external producers, since
    /// nothing re-validates the `MatchResult` invariant on the way in —
    /// used to inflate `merged_pairs`, CSR sizes, and support counters.
    /// Since the arena refactor the choke point is `CompactView::freeze`:
    /// every set entering a `ViewExtensions` is sorted + deduplicated at
    /// freeze time, so the join sees identical stats and answers whether
    /// the producer's sets carried duplicates or not.
    #[test]
    fn duplicated_extension_pairs_do_not_inflate_the_join() {
        let (g, views, q) = fig3();
        let plan = contain(&q, &views).unwrap();
        let clean = materialize(&views, &g);
        let (r_clean, s_clean) =
            match_join_with(&q, &plan, &clean, JoinStrategy::RankedBottomUp).unwrap();

        // Corrupt every stored edge set with duplicates (tripled pairs, out
        // of order), then re-freeze — the arena entry point.
        let dirty = ViewExtensions {
            extensions: clean
                .extensions
                .iter()
                .map(|ext| {
                    let mut m = ext.thaw();
                    for set in &mut m.edge_matches {
                        let orig = set.clone();
                        set.extend(orig.iter().rev().copied());
                        set.extend(orig);
                    }
                    std::sync::Arc::new(crate::compact::CompactView::freeze(&m))
                })
                .collect(),
        };
        let (r_dirty, s_dirty) =
            match_join_with(&q, &plan, &dirty, JoinStrategy::RankedBottomUp).unwrap();
        assert_eq!(r_dirty, r_clean, "answers unchanged");
        assert_eq!(
            s_dirty, s_clean,
            "duplicates must not inflate merged_pairs / visits / removals"
        );
        // And the canonical helper is a plain copy on already-canonical
        // input (the hot path pays one linear scan, no sort).
        let set = clean.edge_set(0, gpv_pattern::PatternEdgeId(0));
        assert_eq!(canonical_pairs(set), set.to_vec());
    }

    use crate::view::ViewExtensions;
    use gpv_pattern::PatternNodeId;
}
