//! Columnar extension arena: the flat CSR-of-pairs layout the executors
//! run on.
//!
//! The paper's complexity story is dominated by `|V(G)|` — the total cached
//! match pairs the join reads. The boxed representation
//! ([`MatchResult`]'s `Vec<Vec<(NodeId, NodeId)>>`) pays two pointer hops
//! and an allocator-scattered heap per edge set before touching a single
//! pair. [`CompactView`] flattens one view's extension into four contiguous
//! columns:
//!
//! ```text
//! edge_offsets : [u32; ne + 1]            CSR offsets into `pairs`
//! pairs        : [(NodeId, NodeId); |V(G)|]  all edge match sets, back to back
//! node_offsets : [u32; np + 1]            CSR offsets into `nodes`
//! nodes        : [NodeId; Σ|node sets|]   all node match sets, back to back
//! ```
//!
//! `edge_set(e)` is a single offset lookup returning a borrowed
//! `&[(NodeId, NodeId)]` — no per-pair indirection, no allocation.
//! [`CompactExtensions`] is the whole-view-set arena: one `Arc<CompactView>`
//! per view, so the CSR-of-pairs covers the full extension set while
//! zero-copy `Arc` sharing is preserved at *arena-region* granularity — a
//! store mutation re-freezes only the touched view's region, every other
//! region is shared untouched between snapshots.
//!
//! Conversion is explicit: [`CompactView::freeze`] flattens a boxed
//! [`MatchResult`] (canonicalizing defensively — sets are sorted and
//! deduplicated if they are not already), [`CompactView::thaw`] rebuilds
//! the boxed form. On the JSON wire the compact types serialize as their
//! thawed boxed shape, so caches written before the arena landed still
//! load, and caches written now still load elsewhere.

use gpv_graph::NodeId;
use gpv_matching::result::{BoundedMatchResult, MatchResult};
use gpv_pattern::{PatternEdgeId, PatternNodeId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Borrowed `(edge_offsets, pairs, node_offsets, nodes)` columns — the
/// exact byte surface the on-disk shard format persists.
pub(crate) type RawColumns<'a> = (&'a [u32], &'a [(NodeId, NodeId)], &'a [u32], &'a [NodeId]);

/// Copies `set` into `dst`, sorting + deduplicating only when a linear scan
/// shows it is not already strictly increasing (the common case: every
/// constructor in this workspace canonicalizes).
fn extend_canonical<T: Copy + Ord>(dst: &mut Vec<T>, set: &[T]) {
    if set.windows(2).all(|w| w[0] < w[1]) {
        dst.extend_from_slice(set);
    } else {
        let start = dst.len();
        dst.extend_from_slice(set);
        dst[start..].sort_unstable();
        let mut keep = start;
        for i in start..dst.len() {
            if i == start || dst[i] != dst[keep - 1] {
                dst[keep] = dst[i];
                keep += 1;
            }
        }
        dst.truncate(keep);
    }
}

/// One view's extension `V(G)` in flat columnar form. See the
/// [module docs](self) for the layout.
///
/// Equality compares the edge columns only, mirroring [`MatchResult`]:
/// the paper defines `Qs(G)` as `{(e, Se)}` and the node sets are
/// auxiliary.
#[derive(Clone, Debug)]
pub struct CompactView {
    /// `edge_offsets[e]..edge_offsets[e + 1]` delimits edge `e`'s pairs.
    edge_offsets: Box<[u32]>,
    /// All edge match sets, concatenated in edge order (each set sorted).
    pairs: Box<[(NodeId, NodeId)]>,
    /// `node_offsets[u]..node_offsets[u + 1]` delimits node `u`'s matches.
    node_offsets: Box<[u32]>,
    /// All node match sets, concatenated in node order (each set sorted).
    nodes: Box<[NodeId]>,
}

impl PartialEq for CompactView {
    fn eq(&self, other: &Self) -> bool {
        self.edge_offsets == other.edge_offsets && self.pairs == other.pairs
    }
}

impl Eq for CompactView {}

impl CompactView {
    /// The empty extension (`V(G) = ∅`).
    pub fn empty() -> Self {
        CompactView {
            edge_offsets: vec![0].into_boxed_slice(),
            pairs: Box::new([]),
            node_offsets: vec![0].into_boxed_slice(),
            nodes: Box::new([]),
        }
    }

    /// Flattens a boxed [`MatchResult`] into the columnar layout.
    ///
    /// Sets are copied verbatim when already strictly sorted (the invariant
    /// every constructor in this workspace maintains) and defensively
    /// sorted + deduplicated otherwise, so a frozen view is canonical by
    /// construction — executors can borrow its slices without
    /// re-normalizing.
    pub fn freeze(r: &MatchResult) -> Self {
        if r.is_empty() {
            return CompactView::empty();
        }
        let mut edge_offsets = Vec::with_capacity(r.edge_matches.len() + 1);
        let mut pairs = Vec::with_capacity(r.size());
        edge_offsets.push(0u32);
        for set in &r.edge_matches {
            extend_canonical(&mut pairs, set);
            edge_offsets.push(u32::try_from(pairs.len()).expect("pair count fits u32"));
        }
        let mut node_offsets = Vec::with_capacity(r.node_matches.len() + 1);
        let mut nodes = Vec::new();
        node_offsets.push(0u32);
        for set in &r.node_matches {
            extend_canonical(&mut nodes, set);
            node_offsets.push(u32::try_from(nodes.len()).expect("node count fits u32"));
        }
        CompactView {
            edge_offsets: edge_offsets.into_boxed_slice(),
            pairs: pairs.into_boxed_slice(),
            node_offsets: node_offsets.into_boxed_slice(),
            nodes: nodes.into_boxed_slice(),
        }
    }

    /// Rebuilds the boxed [`MatchResult`] (for the JSON wire and for
    /// callers that need owned per-edge `Vec`s).
    pub fn thaw(&self) -> MatchResult {
        if self.is_empty() {
            return MatchResult::empty();
        }
        MatchResult {
            node_matches: (0..self.node_count())
                .map(|u| self.node_set(PatternNodeId(u as u32)).to_vec())
                .collect(),
            edge_matches: (0..self.edge_count())
                .map(|e| self.edge_set(PatternEdgeId(e as u32)).to_vec())
                .collect(),
        }
    }

    /// Whether `V(G) = ∅` (no edge sets at all).
    pub fn is_empty(&self) -> bool {
        self.edge_count() == 0
    }

    /// Number of edge match sets.
    pub fn edge_count(&self) -> usize {
        self.edge_offsets.len() - 1
    }

    /// Number of node match sets.
    pub fn node_count(&self) -> usize {
        self.node_offsets.len() - 1
    }

    /// The match set `Se` of edge `e`: one offset lookup, borrowed from the
    /// arena.
    pub fn edge_set(&self, e: PatternEdgeId) -> &[(NodeId, NodeId)] {
        let i = e.index();
        &self.pairs[self.edge_offsets[i] as usize..self.edge_offsets[i + 1] as usize]
    }

    /// The matches of pattern node `u`, borrowed from the arena.
    pub fn node_set(&self, u: PatternNodeId) -> &[NodeId] {
        let i = u.index();
        &self.nodes[self.node_offsets[i] as usize..self.node_offsets[i + 1] as usize]
    }

    /// The whole pairs column (all edge sets back to back) — the flat scan
    /// surface the benches measure.
    pub fn all_pairs(&self) -> &[(NodeId, NodeId)] {
        &self.pairs
    }

    /// The paper's `|V(G)|` for this view: total pairs across all edges.
    pub fn size(&self) -> usize {
        self.pairs.len()
    }

    /// Heap bytes actually resident for this view: the four columns, with
    /// no per-`Vec` allocator scatter to account for.
    pub fn resident_bytes(&self) -> usize {
        self.pairs.len() * std::mem::size_of::<(NodeId, NodeId)>()
            + self.nodes.len() * std::mem::size_of::<NodeId>()
            + (self.edge_offsets.len() + self.node_offsets.len()) * std::mem::size_of::<u32>()
    }

    /// Full-content equality over all four columns — node sets included,
    /// unlike `==`, which compares only the edge columns. The delta pipeline
    /// uses this to detect that an affected view's re-frozen extension is
    /// bit-identical to the resident one, so the old arena region (and its
    /// epoch, and every cached answer keyed on it) can be kept.
    pub fn content_eq(&self, other: &CompactView) -> bool {
        self.columns() == other.columns()
    }

    /// The raw columns `(edge_offsets, pairs, node_offsets, nodes)` — the
    /// exact byte surface the on-disk shard format persists.
    pub(crate) fn columns(&self) -> RawColumns<'_> {
        (
            &self.edge_offsets,
            &self.pairs,
            &self.node_offsets,
            &self.nodes,
        )
    }

    /// Rebuilds a view from raw columns (the shard loader), validating every
    /// structural invariant `freeze` guarantees: offset tables are
    /// monotonic, start at 0, end at the column length, and every set is
    /// strictly increasing (canonical). A violation is a corrupt or crafted
    /// file — reported as an error, never trusted.
    pub(crate) fn from_columns(
        edge_offsets: Vec<u32>,
        pairs: Vec<(NodeId, NodeId)>,
        node_offsets: Vec<u32>,
        nodes: Vec<NodeId>,
    ) -> Result<Self, String> {
        check_offsets(&edge_offsets, pairs.len(), "edge")?;
        check_offsets(&node_offsets, nodes.len(), "node")?;
        check_sorted_sets(&edge_offsets, &pairs, "edge")?;
        check_sorted_sets(&node_offsets, &nodes, "node")?;
        Ok(CompactView {
            edge_offsets: edge_offsets.into_boxed_slice(),
            pairs: pairs.into_boxed_slice(),
            node_offsets: node_offsets.into_boxed_slice(),
            nodes: nodes.into_boxed_slice(),
        })
    }
}

/// Offset-table invariant shared by the columns: nonempty, starts at 0,
/// monotonic nondecreasing, last entry equal to the data column length.
fn check_offsets(offsets: &[u32], data_len: usize, what: &str) -> Result<(), String> {
    if offsets.is_empty() || offsets[0] != 0 {
        return Err(format!("{what} offsets must start at 0"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(format!("{what} offsets not monotonic"));
    }
    if *offsets.last().expect("nonempty") as usize != data_len {
        return Err(format!(
            "{what} offsets end at {} but column holds {data_len}",
            offsets.last().expect("nonempty")
        ));
    }
    Ok(())
}

/// Canonical-set invariant: within each offset-delimited set the elements
/// are strictly increasing (sorted, duplicate-free) — what lets executors
/// borrow arena slices without re-normalizing.
fn check_sorted_sets<T: Copy + Ord>(offsets: &[u32], data: &[T], what: &str) -> Result<(), String> {
    for w in offsets.windows(2) {
        let set = &data[w[0] as usize..w[1] as usize];
        if set.windows(2).any(|p| p[0] >= p[1]) {
            return Err(format!("{what} set not strictly sorted"));
        }
    }
    Ok(())
}

impl From<MatchResult> for CompactView {
    fn from(r: MatchResult) -> Self {
        CompactView::freeze(&r)
    }
}

impl Serialize for CompactView {
    fn to_value(&self) -> serde::value::Value {
        self.thaw().to_value()
    }
}

impl Deserialize for CompactView {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::value::Error> {
        MatchResult::from_value(v).map(|r| CompactView::freeze(&r))
    }
}

/// Materialized view extensions `V(G) = {V1(G), ..., Vn(G)}` in columnar
/// form — the representation the join executors actually run on.
///
/// `extensions[i]` is view `i`'s arena region, shared by [`Arc`] with every
/// other holder of the same materialization (store snapshots, rebuilt
/// engines): assembling a new `CompactExtensions` clones `n` pointers,
/// never `|V(G)|` pairs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompactExtensions {
    /// `extensions[i]` = `Vi(G)` (may be empty when `Vi ⋬sim G`).
    pub extensions: Vec<Arc<CompactView>>,
}

impl CompactExtensions {
    /// Total number of cached match pairs — the paper's `|V(G)|`.
    pub fn size(&self) -> usize {
        self.extensions.iter().map(|e| e.size()).sum()
    }

    /// Freezes and appends one more extension, keeping positions aligned
    /// with the owning [`ViewSet`](crate::view::ViewSet).
    pub fn push(&mut self, ext: MatchResult) {
        self.extensions.push(Arc::new(CompactView::freeze(&ext)));
    }

    /// Appends an already-frozen, already-shared region without copying it
    /// (the zero-copy path used when assembling from a store snapshot).
    pub fn push_shared(&mut self, ext: Arc<CompactView>) {
        self.extensions.push(ext);
    }

    /// The match set `S_eV` of edge `eV` of view `i` (empty slice when the
    /// extension is empty): an offset lookup into view `i`'s arena region.
    pub fn edge_set(&self, view: usize, e: PatternEdgeId) -> &[(NodeId, NodeId)] {
        let ext = &self.extensions[view];
        if ext.is_empty() {
            &[]
        } else {
            ext.edge_set(e)
        }
    }

    /// Heap bytes resident across all regions.
    pub fn resident_bytes(&self) -> usize {
        self.extensions.iter().map(|e| e.resident_bytes()).sum()
    }
}

/// One bounded view's extension with per-pair shortest distances, in the
/// same flat layout as [`CompactView`] but over `(v, v', d)` triples — the
/// extension and the paper's index `I(V)` in one arena region.
#[derive(Clone, Debug)]
pub struct CompactBoundedView {
    edge_offsets: Box<[u32]>,
    triples: Box<[(NodeId, NodeId, u32)]>,
    node_offsets: Box<[u32]>,
    nodes: Box<[NodeId]>,
}

impl PartialEq for CompactBoundedView {
    fn eq(&self, other: &Self) -> bool {
        self.edge_offsets == other.edge_offsets && self.triples == other.triples
    }
}

impl Eq for CompactBoundedView {}

impl CompactBoundedView {
    /// The empty extension.
    pub fn empty() -> Self {
        CompactBoundedView {
            edge_offsets: vec![0].into_boxed_slice(),
            triples: Box::new([]),
            node_offsets: vec![0].into_boxed_slice(),
            nodes: Box::new([]),
        }
    }

    /// Flattens a boxed [`BoundedMatchResult`], canonicalizing defensively
    /// like [`CompactView::freeze`].
    pub fn freeze(r: &BoundedMatchResult) -> Self {
        if r.is_empty() {
            return CompactBoundedView::empty();
        }
        let mut edge_offsets = Vec::with_capacity(r.edge_matches.len() + 1);
        let mut triples = Vec::with_capacity(r.size());
        edge_offsets.push(0u32);
        for set in &r.edge_matches {
            extend_canonical(&mut triples, set);
            edge_offsets.push(u32::try_from(triples.len()).expect("pair count fits u32"));
        }
        let mut node_offsets = Vec::with_capacity(r.node_matches.len() + 1);
        let mut nodes = Vec::new();
        node_offsets.push(0u32);
        for set in &r.node_matches {
            extend_canonical(&mut nodes, set);
            node_offsets.push(u32::try_from(nodes.len()).expect("node count fits u32"));
        }
        CompactBoundedView {
            edge_offsets: edge_offsets.into_boxed_slice(),
            triples: triples.into_boxed_slice(),
            node_offsets: node_offsets.into_boxed_slice(),
            nodes: nodes.into_boxed_slice(),
        }
    }

    /// Rebuilds the boxed [`BoundedMatchResult`].
    pub fn thaw(&self) -> BoundedMatchResult {
        if self.is_empty() {
            return BoundedMatchResult::empty();
        }
        BoundedMatchResult {
            node_matches: (0..self.node_count())
                .map(|u| self.node_set(PatternNodeId(u as u32)).to_vec())
                .collect(),
            edge_matches: (0..self.edge_count())
                .map(|e| self.edge_set(PatternEdgeId(e as u32)).to_vec())
                .collect(),
        }
    }

    /// Whether the extension is empty.
    pub fn is_empty(&self) -> bool {
        self.edge_count() == 0
    }

    /// Number of edge match sets.
    pub fn edge_count(&self) -> usize {
        self.edge_offsets.len() - 1
    }

    /// Number of node match sets.
    pub fn node_count(&self) -> usize {
        self.node_offsets.len() - 1
    }

    /// Match set of edge `e` with distances, borrowed from the arena.
    pub fn edge_set(&self, e: PatternEdgeId) -> &[(NodeId, NodeId, u32)] {
        let i = e.index();
        &self.triples[self.edge_offsets[i] as usize..self.edge_offsets[i + 1] as usize]
    }

    /// Matches of node `u`, borrowed from the arena.
    pub fn node_set(&self, u: PatternNodeId) -> &[NodeId] {
        let i = u.index();
        &self.nodes[self.node_offsets[i] as usize..self.node_offsets[i + 1] as usize]
    }

    /// `|Vi(G)|` for this view: total triples.
    pub fn size(&self) -> usize {
        self.triples.len()
    }

    /// Heap bytes resident for this view's columns.
    pub fn resident_bytes(&self) -> usize {
        self.triples.len() * std::mem::size_of::<(NodeId, NodeId, u32)>()
            + self.nodes.len() * std::mem::size_of::<NodeId>()
            + (self.edge_offsets.len() + self.node_offsets.len()) * std::mem::size_of::<u32>()
    }
}

impl Serialize for CompactBoundedView {
    fn to_value(&self) -> serde::value::Value {
        self.thaw().to_value()
    }
}

impl Deserialize for CompactBoundedView {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::value::Error> {
        BoundedMatchResult::from_value(v).map(|r| CompactBoundedView::freeze(&r))
    }
}

/// Bounded extensions in columnar form (the bounded twin of
/// [`CompactExtensions`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompactBoundedExtensions {
    /// `extensions[i]` = `Vi(G)` with distances.
    pub extensions: Vec<CompactBoundedView>,
}

impl CompactBoundedExtensions {
    /// Total cached pairs (`|V(G)|`).
    pub fn size(&self) -> usize {
        self.extensions.iter().map(CompactBoundedView::size).sum()
    }

    /// Match set with distances of edge `eV` of view `i` (empty slice when
    /// the extension is empty).
    pub fn edge_set(&self, view: usize, e: PatternEdgeId) -> &[(NodeId, NodeId, u32)] {
        let ext = &self.extensions[view];
        if ext.is_empty() {
            &[]
        } else {
            ext.edge_set(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpv_pattern::PatternBuilder;

    fn two_node_pattern() -> gpv_pattern::Pattern {
        let mut b = PatternBuilder::new();
        let x = b.node_labeled("A");
        let y = b.node_labeled("B");
        b.edge(x, y);
        b.build().unwrap()
    }

    #[test]
    fn freeze_thaw_roundtrip() {
        let p = two_node_pattern();
        let r = MatchResult::new(
            &p,
            vec![vec![NodeId(2), NodeId(1)], vec![NodeId(0)]],
            vec![vec![(NodeId(2), NodeId(0)), (NodeId(1), NodeId(0))]],
        );
        let c = CompactView::freeze(&r);
        assert_eq!(c.size(), 2);
        assert_eq!(
            c.edge_set(PatternEdgeId(0)),
            &[(NodeId(1), NodeId(0)), (NodeId(2), NodeId(0))]
        );
        assert_eq!(c.node_set(PatternNodeId(0)), &[NodeId(1), NodeId(2)]);
        let back = c.thaw();
        assert_eq!(back, r);
        assert_eq!(back.node_matches, r.node_matches);
    }

    #[test]
    fn freeze_canonicalizes_dirty_input() {
        // Bypass the constructor to feed unsorted, duplicated sets.
        let dirty = MatchResult {
            node_matches: vec![vec![NodeId(3), NodeId(1), NodeId(3)], vec![NodeId(0)]],
            edge_matches: vec![vec![
                (NodeId(3), NodeId(0)),
                (NodeId(1), NodeId(0)),
                (NodeId(3), NodeId(0)),
            ]],
        };
        let c = CompactView::freeze(&dirty);
        assert_eq!(
            c.edge_set(PatternEdgeId(0)),
            &[(NodeId(1), NodeId(0)), (NodeId(3), NodeId(0))]
        );
        assert_eq!(c.node_set(PatternNodeId(0)), &[NodeId(1), NodeId(3)]);
    }

    #[test]
    fn empty_roundtrip() {
        let c = CompactView::freeze(&MatchResult::empty());
        assert!(c.is_empty());
        assert_eq!(c.size(), 0);
        assert_eq!(c.thaw(), MatchResult::empty());
    }

    #[test]
    fn bounded_freeze_thaw_roundtrip() {
        let p = two_node_pattern();
        let r = BoundedMatchResult::new(
            &p,
            vec![vec![NodeId(0)], vec![NodeId(1), NodeId(2)]],
            vec![vec![(NodeId(0), NodeId(2), 2), (NodeId(0), NodeId(1), 1)]],
        );
        let c = CompactBoundedView::freeze(&r);
        assert_eq!(
            c.edge_set(PatternEdgeId(0)),
            &[(NodeId(0), NodeId(1), 1), (NodeId(0), NodeId(2), 2)]
        );
        assert_eq!(c.thaw(), r);
        assert!(CompactBoundedView::freeze(&BoundedMatchResult::empty()).is_empty());
    }

    #[test]
    fn resident_bytes_counts_columns() {
        let p = two_node_pattern();
        let r = MatchResult::new(
            &p,
            vec![vec![NodeId(0)], vec![NodeId(1)]],
            vec![vec![(NodeId(0), NodeId(1))]],
        );
        let c = CompactView::freeze(&r);
        // 1 pair (8 B) + 2 nodes (8 B) + offsets: edge_offsets has ne+1 = 2
        // entries, node_offsets has np+1 = 3, at 4 B each.
        assert_eq!(c.resident_bytes(), 8 + 8 + (2 + 3) * 4);
    }
}
