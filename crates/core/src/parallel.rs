//! Thread-parallel `MatchJoin` execution.
//!
//! The expensive phases of the ranked fixpoint ([`crate::matchjoin`]) are
//! per-pattern-edge and independent: compacting each merged match set into
//! CSR form, and computing initial support counters. This module fans those
//! phases across OS threads (`std::thread::scope` — the build environment
//! vendors no `rayon`), then runs the *sequential* drain, which is cheap
//! (proportional to removals) and confluent.
//!
//! Determinism: workers write results into slots fixed by edge index and
//! the drain seeds its worklist in edge order, so the output is bit-for-bit
//! identical to [`JoinStrategy::RankedBottomUp`](crate::matchjoin::JoinStrategy)
//! regardless of thread interleaving. With `threads == 1` every stage runs
//! inline with no spawn overhead.

use crate::containment::ContainmentPlan;
use crate::matchjoin::{self, merge_step, EdgeCsr, JoinError, JoinStats};
use crate::view::ViewExtensions;
use gpv_graph::NodeId;
use gpv_matching::result::MatchResult;
use gpv_pattern::{Pattern, PatternNodeId};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default worker count: the machine's available parallelism.
pub fn auto_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f(0..n)` across `threads` workers (atomic work-stealing counter),
/// returning results in index order. Inline when `threads <= 1` or the job
/// is trivially small (where a panic propagates normally, exactly like the
/// sequential executor). In the threaded path a panicking worker no longer
/// takes the whole process down through a context-free `expect`: the panic
/// is caught per work item and resurfaced as `Err(index)` carrying the
/// failing index, so callers can attach executor context
/// ([`JoinError::WorkerPanicked`]).
pub(crate) fn par_map<T, F>(n: usize, threads: usize, f: F) -> Result<Vec<T>, usize>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return Ok((0..n).map(f).collect());
    }
    let counter = AtomicUsize::new(0);
    let workers = threads.min(n);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut failed: Option<usize> = None;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let counter = &counter;
                let f = &f;
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = counter.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break Ok(local);
                        }
                        // `f` is a pure per-index computation shared by all
                        // workers; observing it mid-panic is safe because a
                        // failed index aborts the whole map.
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))) {
                            Ok(v) => local.push((i, v)),
                            Err(_) => break Err(i),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(Ok(local)) => {
                    for (i, v) in local {
                        slots[i] = Some(v);
                    }
                }
                Ok(Err(i)) => failed = Some(failed.map_or(i, |p: usize| p.min(i))),
                // Unreachable in practice (worker bodies catch panics), but
                // keep the process alive if it ever happens.
                Err(_) => failed = Some(failed.unwrap_or(usize::MAX)),
            }
        }
    });
    if let Some(i) = failed {
        return Err(i);
    }
    Ok(slots.into_iter().map(|s| s.expect("slot filled")).collect())
}

/// Answers `Qs` from views with the parallel executor and an explicit
/// thread count (`0` = auto). Output is identical to
/// [`matchjoin::match_join`]; only wall-clock differs.
pub fn par_match_join(
    q: &Pattern,
    plan: &ContainmentPlan,
    ext: &ViewExtensions,
    threads: usize,
) -> Result<(MatchResult, JoinStats), JoinError> {
    let merged = merge_step(q, plan, ext)?;
    par_fixpoint(q, merged, threads)
}

/// The parallel executor over caller-supplied merged sets (e.g. built by
/// the [`EdgeSource`](crate::plan::EdgeSource)-honoring merge): fans the
/// build/support phases across `threads` workers (`0` = auto), then runs
/// the sequential drain.
pub(crate) fn par_fixpoint(
    q: &Pattern,
    merged: Vec<Vec<(NodeId, NodeId)>>,
    threads: usize,
) -> Result<(MatchResult, JoinStats), JoinError> {
    let threads = if threads == 0 {
        auto_threads()
    } else {
        threads
    };
    let mut stats = JoinStats {
        merged_pairs: merged.iter().map(|s| s.len() as u64).sum(),
        ..JoinStats::default()
    };
    let sets = par_ranked_fixpoint(q, merged, &mut stats, threads)?;
    Ok((matchjoin::assemble(q, sets), stats))
}

/// Refined per-edge match sets (`None` = empty result), or a caught worker
/// panic.
pub(crate) type FixpointOutcome = Result<Option<Vec<Vec<(NodeId, NodeId)>>>, JoinError>;

/// The ranked fixpoint with parallel build/support phases. Semantically
/// identical to [`matchjoin::ranked_fixpoint`]; stage results merge in edge
/// order. `Err` only on a caught worker panic
/// ([`JoinError::WorkerPanicked`] with the failing edge index).
pub(crate) fn par_ranked_fixpoint(
    q: &Pattern,
    merged: Vec<Vec<(NodeId, NodeId)>>,
    stats: &mut JoinStats,
    threads: usize,
) -> FixpointOutcome {
    if threads <= 1 {
        // No spare workers: take the sequential path exactly (identical
        // output either way; this avoids the staging allocations).
        return Ok(matchjoin::ranked_fixpoint(q, merged, stats));
    }
    let ne = q.edge_count();
    // Compaction must assign dense ids in first-occurrence order to stay
    // deterministic, so it stays sequential (O(total pairs), hash-bound).
    let (index, rev_index) = matchjoin::compact_index(&merged);
    let m = index.len();

    // Stage 1 (parallel): per-edge CSR build.
    let csrs: Vec<EdgeCsr> = par_map(ne, threads, |ei| {
        matchjoin::build_edge_csr(&merged[ei], &index, m)
    })
    .map_err(JoinError::WorkerPanicked)?;
    stats.edge_visits += ne as u64;

    // Stage 2 (sequential, cheap): candidate sets over pattern nodes.
    let Some(cand) = matchjoin::build_candidates(q, &csrs, m) else {
        return Ok(None);
    };

    // Stage 3 (parallel): per-edge support counters + zero-support seeds.
    // Work unit = one (source node, out-edge) pair, keyed by edge index.
    let edge_src: Vec<(PatternNodeId, PatternNodeId)> = (0..ne)
        .map(|ei| q.edge(gpv_pattern::PatternEdgeId(ei as u32)))
        .collect();
    let per_edge: Vec<(Vec<u32>, Vec<u32>)> = par_map(ne, threads, |ei| {
        let (u, t) = edge_src[ei];
        matchjoin::edge_support(&csrs[ei], &cand[u.index()], &cand[t.index()], m)
    })
    .map_err(JoinError::WorkerPanicked)?;
    stats.edge_visits += ne as u64;
    let mut support: Vec<Vec<u32>> = Vec::with_capacity(ne);
    let mut seeds: Vec<(PatternNodeId, Vec<u32>)> = Vec::with_capacity(ne);
    for (ei, (sup, zero)) in per_edge.into_iter().enumerate() {
        support.push(sup);
        seeds.push((edge_src[ei].0, zero));
    }

    // Stage 4 (sequential): the confluent drain + final filter.
    Ok(matchjoin::drain_and_extract(
        q, &csrs, cand, support, &seeds, &rev_index, stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        for threads in [1, 2, 4] {
            let out = par_map(100, threads, |i| i * i).unwrap();
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_empty() {
        assert_eq!(par_map(0, 4, |i| i), Ok(Vec::<usize>::new()));
    }

    #[test]
    fn par_map_catches_worker_panic() {
        // Silence the default panic hook for the intentional panics below
        // (the worker catches them; the hook would still print backtraces).
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = par_map(16, 4, |i| {
            if i == 3 {
                panic!("boom");
            }
            i
        });
        std::panic::set_hook(hook);
        assert_eq!(out, Err(3), "failing index resurfaces, process survives");
    }
}
