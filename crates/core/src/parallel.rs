//! Thread-parallel `MatchJoin` execution.
//!
//! The expensive phases of the ranked fixpoint ([`crate::matchjoin`]) are
//! per-pattern-edge and independent: compacting each merged match set into
//! CSR form, and computing initial support counters. This module fans those
//! phases across OS threads (`std::thread::scope` — the build environment
//! vendors no `rayon`), then runs the *sequential* drain, which is cheap
//! (proportional to removals) and confluent.
//!
//! Determinism: workers write results into slots fixed by edge index and
//! the drain seeds its worklist in edge order, so the output is bit-for-bit
//! identical to [`JoinStrategy::RankedBottomUp`](crate::matchjoin::JoinStrategy)
//! regardless of thread interleaving. With `threads == 1` every stage runs
//! inline with no spawn overhead.

use crate::containment::ContainmentPlan;
use crate::matchjoin::{self, merge_step, EdgeCsr, JoinError, JoinStats};
use crate::view::ViewExtensions;
use gpv_graph::NodeId;
use gpv_matching::result::MatchResult;
use gpv_pattern::{Pattern, PatternNodeId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Default worker count: the machine's available parallelism, probed once
/// and cached. `available_parallelism` is a syscall, and this sits on the
/// per-execution hot path (`QueryEngine::exec_for`, `run_fixpoint`), so
/// paying it per query would tax every single plan/join for a value that
/// never changes over the process lifetime.
pub fn auto_threads() -> usize {
    static AUTO: OnceLock<usize> = OnceLock::new();
    *AUTO.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// How a [`par_map`] worker failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ParError {
    /// A work item panicked; the payload is the failing index.
    Panicked(usize),
    /// A worker thread died outside the per-item catch (its `join` failed),
    /// so no item index is known. Callers must *not* invent one — this used
    /// to surface as the sentinel `usize::MAX`, which
    /// [`JoinError::WorkerPanicked`] then reported as a nonsense edge index.
    Lost,
}

/// Runs `f(0..n)` across `threads` workers (atomic work-stealing counter),
/// returning results in index order. Inline when `threads <= 1` or the job
/// is trivially small (where a panic propagates normally, exactly like the
/// sequential executor). In the threaded path a panicking worker no longer
/// takes the whole process down through a context-free `expect`: the panic
/// is caught per work item and resurfaced as [`ParError::Panicked`] with
/// the failing index, so callers can attach executor context
/// ([`JoinError::WorkerPanicked`]); a worker lost outside the per-item
/// catch resurfaces as [`ParError::Lost`] ([`JoinError::WorkerLost`]).
pub(crate) fn par_map<T, F>(n: usize, threads: usize, f: F) -> Result<Vec<T>, ParError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return Ok((0..n).map(f).collect());
    }
    let counter = AtomicUsize::new(0);
    let workers = threads.min(n);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut failed: Option<ParError> = None;
    // Prefer the lowest panicked index as the reported failure; a lost
    // worker only wins when no indexed panic was observed.
    let mut note = |e: ParError| {
        failed = Some(match (failed, e) {
            (Some(ParError::Panicked(p)), ParError::Panicked(i)) => ParError::Panicked(p.min(i)),
            (Some(ParError::Panicked(p)), ParError::Lost) => ParError::Panicked(p),
            (_, e) => e,
        });
    };
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let counter = &counter;
                let f = &f;
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = counter.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break Ok(local);
                        }
                        // `f` is a pure per-index computation shared by all
                        // workers; observing it mid-panic is safe because a
                        // failed index aborts the whole map.
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))) {
                            Ok(v) => local.push((i, v)),
                            Err(_) => break Err(i),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(Ok(local)) => {
                    for (i, v) in local {
                        slots[i] = Some(v);
                    }
                }
                Ok(Err(i)) => note(ParError::Panicked(i)),
                // Unreachable in practice (worker bodies catch panics), but
                // keep the process alive if it ever happens — and say "a
                // worker was lost" instead of fabricating an edge index.
                Err(_) => note(ParError::Lost),
            }
        }
    });
    if let Some(e) = failed {
        return Err(e);
    }
    Ok(slots.into_iter().map(|s| s.expect("slot filled")).collect())
}

/// Answers `Qs` from views with the parallel executor and an explicit
/// thread count (`0` = auto). Output is identical to
/// [`matchjoin::match_join`]; only wall-clock differs.
pub fn par_match_join(
    q: &Pattern,
    plan: &ContainmentPlan,
    ext: &ViewExtensions,
    threads: usize,
) -> Result<(MatchResult, JoinStats), JoinError> {
    let merged = merge_step(q, plan, ext)?;
    par_fixpoint(q, merged, threads)
}

/// The parallel executor over caller-supplied merged sets (e.g. built by
/// the [`EdgeSource`](crate::plan::EdgeSource)-honoring merge): fans the
/// build/support phases across `threads` workers (`0` = auto), then runs
/// the sequential drain.
pub(crate) fn par_fixpoint(
    q: &Pattern,
    merged: Vec<Vec<(NodeId, NodeId)>>,
    threads: usize,
) -> Result<(MatchResult, JoinStats), JoinError> {
    let threads = if threads == 0 {
        auto_threads()
    } else {
        threads
    };
    let mut stats = JoinStats {
        merged_pairs: merged.iter().map(|s| s.len() as u64).sum(),
        ..JoinStats::default()
    };
    let sets = par_ranked_fixpoint(q, merged, &mut stats, threads)?;
    Ok((matchjoin::assemble(q, sets), stats))
}

/// Refined per-edge match sets (`None` = empty result), or a caught worker
/// panic.
pub(crate) type FixpointOutcome = Result<Option<Vec<Vec<(NodeId, NodeId)>>>, JoinError>;

/// The ranked fixpoint with parallel build/support phases. Semantically
/// identical to [`matchjoin::ranked_fixpoint`]; stage results merge in edge
/// order. `Err` only on a caught worker panic
/// ([`JoinError::WorkerPanicked`] with the failing edge index).
pub(crate) fn par_ranked_fixpoint(
    q: &Pattern,
    merged: Vec<Vec<(NodeId, NodeId)>>,
    stats: &mut JoinStats,
    threads: usize,
) -> FixpointOutcome {
    if threads <= 1 {
        // No spare workers: take the sequential path exactly (identical
        // output either way; this avoids the staging allocations).
        return Ok(matchjoin::ranked_fixpoint(q, merged, stats));
    }
    let ne = q.edge_count();
    // Compaction must assign dense ids in first-occurrence order to stay
    // deterministic, so it stays sequential (O(total pairs), hash-bound).
    let (index, rev_index) = matchjoin::compact_index(&merged);
    let m = index.len();

    // Stage 1 (parallel): per-edge CSR build.
    let csrs: Vec<EdgeCsr> = par_map(ne, threads, |ei| {
        matchjoin::build_edge_csr(&merged[ei], &index, m)
    })
    .map_err(JoinError::from)?;
    stats.edge_visits += ne as u64;

    // Stage 2 (sequential, cheap): candidate sets over pattern nodes.
    let Some(cand) = matchjoin::build_candidates(q, &csrs, m) else {
        return Ok(None);
    };

    // Stage 3 (parallel): per-edge support counters + zero-support seeds.
    // Work unit = one (source node, out-edge) pair, keyed by edge index.
    let edge_src: Vec<(PatternNodeId, PatternNodeId)> = (0..ne)
        .map(|ei| q.edge(gpv_pattern::PatternEdgeId(ei as u32)))
        .collect();
    let per_edge: Vec<(Vec<u32>, Vec<u32>)> = par_map(ne, threads, |ei| {
        let (u, t) = edge_src[ei];
        matchjoin::edge_support(&csrs[ei], &cand[u.index()], &cand[t.index()], m)
    })
    .map_err(JoinError::from)?;
    stats.edge_visits += ne as u64;
    let mut support: Vec<Vec<u32>> = Vec::with_capacity(ne);
    let mut seeds: Vec<(PatternNodeId, Vec<u32>)> = Vec::with_capacity(ne);
    for (ei, (sup, zero)) in per_edge.into_iter().enumerate() {
        support.push(sup);
        seeds.push((edge_src[ei].0, zero));
    }

    // Stage 4 (sequential): the confluent drain + final filter.
    Ok(matchjoin::drain_and_extract(
        q, &csrs, cand, support, &seeds, &rev_index, stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        for threads in [1, 2, 4] {
            let out = par_map(100, threads, |i| i * i).unwrap();
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_empty() {
        assert_eq!(par_map(0, 4, |i| i), Ok(Vec::<usize>::new()));
    }

    #[test]
    fn par_map_catches_worker_panic() {
        // Silence the default panic hook for the intentional panics below
        // (the worker catches them; the hook would still print backtraces).
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = par_map(16, 4, |i| {
            if i == 3 {
                panic!("boom");
            }
            i
        });
        std::panic::set_hook(hook);
        assert_eq!(
            out,
            Err(ParError::Panicked(3)),
            "failing index resurfaces, process survives"
        );
    }

    /// Regression: a worker lost outside the per-item catch used to be
    /// reported as `WorkerPanicked(usize::MAX)` — a nonsense edge index
    /// that callers would happily print. The conversion must produce the
    /// distinct `WorkerLost` variant instead, and `Panicked` must never
    /// carry the old sentinel.
    #[test]
    fn lost_worker_maps_to_worker_lost_not_a_fake_index() {
        assert_eq!(JoinError::from(ParError::Lost), JoinError::WorkerLost);
        assert_eq!(
            JoinError::from(ParError::Panicked(3)),
            JoinError::WorkerPanicked(3)
        );
        let msg = JoinError::WorkerLost.to_string();
        assert!(
            !msg.contains(&usize::MAX.to_string()),
            "no fabricated edge index in: {msg}"
        );
    }

    #[test]
    fn auto_threads_is_cached_and_stable() {
        let first = auto_threads();
        assert!(first >= 1);
        for _ in 0..3 {
            assert_eq!(auto_threads(), first);
        }
    }
}
