//! Thread-parallel `MatchJoin` execution.
//!
//! The expensive phases of the ranked fixpoint ([`crate::matchjoin`]) are
//! per-pattern-edge and independent: compacting each merged match set into
//! CSR form, and computing initial support counters. This module fans those
//! phases across OS threads (`std::thread::scope` — the build environment
//! vendors no `rayon`). The drain itself runs in *rank waves*: each wave
//! removes the whole lowest-rank bucket up front, gathers the support hits
//! of every removed candidate in parallel (a read-only scan of the reverse
//! CSRs), then applies the decrements sequentially in fixed wave order —
//! so heavy pruning no longer serializes on the last stage, and the result
//! stays bit-for-bit identical to the sequential drain (the worklist
//! closure is confluent; see `par_drain_and_extract`).
//!
//! Two fan-out granularities ([`ParGranularity`]):
//!
//! * **per-edge** — one work unit per pattern edge. Speedup ceiling is
//!   `|Eq|`: a 2-edge query over a 10M-pair merge uses at most 2 cores;
//! * **chunked** — each edge's pair set is split into fixed, index-aligned
//!   chunks and *(edge, chunk)* units fan across the workers: a two-pass
//!   chunked CSR build (per-chunk counts → sequential prefix stitch →
//!   parallel scatter), ranged `edge_support` over slices of the dense
//!   node domain with a deterministic counter merge, and a chunk-sort +
//!   k-way-merge for the union merge's per-edge sort/dedup.
//!
//! Determinism: work-unit boundaries are fixed by index — never by timing —
//! workers write results into slots owned by their unit, and every merge of
//! per-unit results runs in unit order, so the output is bit-for-bit
//! identical to [`JoinStrategy::RankedBottomUp`](crate::matchjoin::JoinStrategy)
//! regardless of thread interleaving, thread count, or chunk size (the
//! seeded proptests in `tests/engine.rs` sweep all three). With
//! `threads == 1` every stage runs inline with no spawn overhead.

use crate::containment::ContainmentPlan;
use crate::matchjoin::{self, merge_step, EdgeCsr, JoinError, JoinStats, MergedSets};
use crate::plan::ParGranularity;
use crate::view::ViewExtensions;
use gpv_graph::{BitSet, NodeId};
use gpv_matching::result::MatchResult;
use gpv_pattern::{Pattern, PatternEdgeId, PatternNodeId};
use std::borrow::Cow;
use std::collections::{HashMap, VecDeque};
use std::ops::Deref;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Default worker count: the machine's available parallelism, probed once
/// and cached. `available_parallelism` is a syscall, and this sits on the
/// per-execution hot path (`QueryEngine::exec_for`, `run_fixpoint`), so
/// paying it per query would tax every single plan/join for a value that
/// never changes over the process lifetime.
pub fn auto_threads() -> usize {
    static AUTO: OnceLock<usize> = OnceLock::new();
    *AUTO.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// How a [`par_map`] worker failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ParError {
    /// A work item panicked; the payload is the failing index.
    Panicked(usize),
    /// A worker thread died outside the per-item catch (its `join` failed),
    /// so no item index is known. Callers must *not* invent one — this used
    /// to surface as the sentinel `usize::MAX`, which
    /// [`JoinError::WorkerPanicked`] then reported as a nonsense edge index.
    Lost,
}

/// Runs `f(0..n)` across `threads` workers (atomic work-stealing counter),
/// returning results in index order. Inline when `threads <= 1` or the job
/// is trivially small (where a panic propagates normally, exactly like the
/// sequential executor). In the threaded path a panicking worker no longer
/// takes the whole process down through a context-free `expect`: the panic
/// is caught per work item and resurfaced as [`ParError::Panicked`] with
/// the failing index, so callers can attach executor context
/// ([`JoinError::WorkerPanicked`]); a worker lost outside the per-item
/// catch resurfaces as [`ParError::Lost`] ([`JoinError::WorkerLost`]).
pub(crate) fn par_map<T, F>(n: usize, threads: usize, f: F) -> Result<Vec<T>, ParError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return Ok((0..n).map(f).collect());
    }
    let counter = AtomicUsize::new(0);
    let workers = threads.min(n);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut failed: Option<ParError> = None;
    // Prefer the lowest panicked index as the reported failure; a lost
    // worker only wins when no indexed panic was observed.
    let mut note = |e: ParError| {
        failed = Some(match (failed, e) {
            (Some(ParError::Panicked(p)), ParError::Panicked(i)) => ParError::Panicked(p.min(i)),
            (Some(ParError::Panicked(p)), ParError::Lost) => ParError::Panicked(p),
            (_, e) => e,
        });
    };
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let counter = &counter;
                let f = &f;
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = counter.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break Ok(local);
                        }
                        // `f` is a pure per-index computation shared by all
                        // workers; observing it mid-panic is safe because a
                        // failed index aborts the whole map.
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))) {
                            Ok(v) => local.push((i, v)),
                            Err(_) => break Err(i),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(Ok(local)) => {
                    for (i, v) in local {
                        slots[i] = Some(v);
                    }
                }
                Ok(Err(i)) => note(ParError::Panicked(i)),
                // Unreachable in practice (worker bodies catch panics), but
                // keep the process alive if it ever happens — and say "a
                // worker was lost" instead of fabricating an edge index.
                Err(_) => note(ParError::Lost),
            }
        }
    });
    if let Some(e) = failed {
        return Err(e);
    }
    Ok(slots.into_iter().map(|s| s.expect("slot filled")).collect())
}

/// Answers `Qs` from views with the parallel executor and an explicit
/// thread count (`0` = auto). Output is identical to
/// [`matchjoin::match_join`]; only wall-clock differs.
pub fn par_match_join(
    q: &Pattern,
    plan: &ContainmentPlan,
    ext: &ViewExtensions,
    threads: usize,
) -> Result<(MatchResult, JoinStats), JoinError> {
    let merged = merge_step(q, plan, ext)?;
    par_fixpoint(q, merged, threads, ParGranularity::PerEdge)
}

/// Like [`par_match_join`] with an explicit fan-out granularity —
/// [`ParGranularity::Chunked`] breaks the per-edge `|Eq|` speedup ceiling
/// by splitting each edge's pair set across workers. Output is identical
/// across all granularities, thread counts, and chunk sizes.
pub fn par_match_join_granular(
    q: &Pattern,
    plan: &ContainmentPlan,
    ext: &ViewExtensions,
    threads: usize,
    granularity: ParGranularity,
) -> Result<(MatchResult, JoinStats), JoinError> {
    let merged = merge_step(q, plan, ext)?;
    par_fixpoint(q, merged, threads, granularity)
}

/// The parallel executor over caller-supplied merged sets (e.g. built by
/// the [`EdgeSource`](crate::plan::EdgeSource)-honoring merge): fans the
/// build/support phases across `threads` workers (`0` = auto) at the given
/// granularity, then runs the sequential drain.
pub(crate) fn par_fixpoint(
    q: &Pattern,
    merged: MergedSets<'_>,
    threads: usize,
    granularity: ParGranularity,
) -> Result<(MatchResult, JoinStats), JoinError> {
    let threads = if threads == 0 {
        auto_threads()
    } else {
        threads
    };
    let mut stats = JoinStats {
        merged_pairs: merged.iter().map(|s| s.len() as u64).sum(),
        ..JoinStats::default()
    };
    let sets = par_ranked_fixpoint_with(q, merged, &mut stats, threads, granularity)?;
    Ok((matchjoin::assemble(q, sets), stats))
}

/// Refined per-edge match sets (`None` = empty result), or a caught worker
/// panic.
pub(crate) type FixpointOutcome = Result<Option<Vec<Vec<(NodeId, NodeId)>>>, JoinError>;

/// The ranked fixpoint with parallel build/support phases, fanning one
/// work unit per pattern edge. Kept as the [`ParGranularity::PerEdge`]
/// backend of [`par_ranked_fixpoint_with`].
pub(crate) fn par_ranked_fixpoint(
    q: &Pattern,
    merged: MergedSets<'_>,
    stats: &mut JoinStats,
    threads: usize,
) -> FixpointOutcome {
    par_ranked_fixpoint_with(q, merged, stats, threads, ParGranularity::PerEdge)
}

/// The ranked fixpoint with parallel build/support phases. Semantically
/// identical to [`matchjoin::ranked_fixpoint`]; per-unit stage results
/// merge in fixed unit order. `Err` only on a caught worker panic
/// ([`JoinError::WorkerPanicked`] with the failing edge index).
pub(crate) fn par_ranked_fixpoint_with(
    q: &Pattern,
    merged: MergedSets<'_>,
    stats: &mut JoinStats,
    threads: usize,
    granularity: ParGranularity,
) -> FixpointOutcome {
    if threads <= 1 {
        // No spare workers: take the sequential path exactly (identical
        // output either way; this avoids the staging allocations).
        return Ok(matchjoin::ranked_fixpoint(q, merged, stats));
    }
    let ne = q.edge_count();
    // Compaction must assign dense ids in first-occurrence order to stay
    // deterministic, so it stays sequential (O(total pairs), hash-bound).
    let (index, rev_index) = matchjoin::compact_index(&merged);
    let m = index.len();

    // Stage 1 (parallel): CSR build — one unit per edge, or per
    // (edge, chunk) under chunked granularity.
    let csrs: Vec<EdgeCsr> = match granularity {
        ParGranularity::PerEdge => par_map(ne, threads, |ei| {
            matchjoin::build_edge_csr(&merged[ei], &index, m)
        })
        .map_err(JoinError::from)?,
        ParGranularity::Chunked { chunk_pairs } => {
            chunked_csrs(&merged, &index, m, threads, chunk_pairs)?
        }
    };
    stats.edge_visits += ne as u64;

    // Stage 2 (sequential, cheap): candidate sets over pattern nodes.
    let Some(cand) = matchjoin::build_candidates(q, &csrs, m) else {
        return Ok(None);
    };

    // Stage 3 (parallel): per-edge support counters + zero-support seeds —
    // per edge, or over ranges of the dense node domain under chunked
    // granularity (deterministic merge: concatenation in range order).
    let edge_src: Vec<(PatternNodeId, PatternNodeId)> =
        (0..ne).map(|ei| q.edge(PatternEdgeId(ei as u32))).collect();
    let per_edge: Vec<(Vec<u32>, Vec<u32>)> = match granularity {
        ParGranularity::PerEdge => par_map(ne, threads, |ei| {
            let (u, t) = edge_src[ei];
            matchjoin::edge_support(&csrs[ei], &cand[u.index()], &cand[t.index()], m)
        })
        .map_err(JoinError::from)?,
        ParGranularity::Chunked { chunk_pairs } => {
            ranged_support(&csrs, &cand, &edge_src, m, threads, chunk_pairs)?
        }
    };
    stats.edge_visits += ne as u64;
    let mut support: Vec<Vec<u32>> = Vec::with_capacity(ne);
    let mut seeds: Vec<(PatternNodeId, Vec<u32>)> = Vec::with_capacity(ne);
    for (ei, (sup, zero)) in per_edge.into_iter().enumerate() {
        support.push(sup);
        seeds.push((edge_src[ei].0, zero));
    }

    // Stage 4: the drain in parallel rank waves + the fanned final filter.
    par_drain_and_extract(q, &csrs, cand, support, &seeds, &rev_index, stats, threads)
}

/// Minimum wave width before the gather phase fans across workers: below
/// this, spawning scoped threads costs more than the read-only CSR scans
/// they would do. The threshold affects scheduling only — apply order is
/// fixed either way, so the output is identical.
const PAR_WAVE_MIN: usize = 256;

/// Stage 4 of the chunked fixpoint, parallelized in *rank waves* — the last
/// stage that used to run fully sequentially, a ceiling when the union
/// merge leaves heavy pruning.
///
/// Each iteration drains the entire lowest non-empty rank bucket as one
/// wave:
///
/// 1. **remove** (sequential, pop order): every wave candidate leaves its
///    `cand` set; an emptied set short-circuits to the empty result exactly
///    like the sequential drain;
/// 2. **gather** (parallel when the wave is ≥ [`PAR_WAVE_MIN`]): for each
///    removed `(u, v)`, scan the reverse CSR of every in-edge of `u` and
///    collect the surviving witnesses `w ∈ cand[u0]` whose support the
///    removal decrements. `cand` and `scheduled` are not written during the
///    gather, so the scans are read-only and embarrassingly parallel;
/// 3. **apply** (sequential, fixed wave order): re-check the
///    `cand`/`scheduled` guards, decrement support counters, schedule
///    candidates that hit zero.
///
/// Equivalence with [`matchjoin::drain_and_extract`]: the drain computes
/// the closure of "support exhausted" removals, which is confluent — a
/// decrement for `(e0, w)` happens at most once per removed witness, the
/// guards make removals idempotent, and counters of removed candidates are
/// never consulted again — so the surviving `cand` sets (and therefore the
/// answer) are independent of removal order. Wave-mates removed up front
/// fail the `cand.contains` guard exactly where the sequential drain's
/// `scheduled` guard would have skipped them. Determinism across thread
/// counts and chunk sizes holds because wave boundaries are functions of
/// bucket contents only and the apply phase runs in fixed wave order
/// (`tests/engine.rs` sweeps both).
#[allow(clippy::too_many_arguments)] // mirrors drain_and_extract + threads
pub(crate) fn par_drain_and_extract(
    q: &Pattern,
    csrs: &[EdgeCsr],
    mut cand: Vec<BitSet>,
    mut support: Vec<Vec<u32>>,
    seeds: &[(PatternNodeId, Vec<u32>)],
    rev_index: &[NodeId],
    stats: &mut JoinStats,
    threads: usize,
) -> FixpointOutcome {
    let np = q.node_count();
    let ne = q.edge_count();
    let m = rev_index.len();
    let cond = q.condensation();
    let max_rank = (0..np as u32).map(|u| cond.rank(u)).max().unwrap_or(0) as usize;

    let mut buckets: Vec<VecDeque<(PatternNodeId, u32)>> = vec![VecDeque::new(); max_rank + 1];
    let mut scheduled: Vec<BitSet> = vec![BitSet::new(m); np];
    for (u, vs) in seeds {
        for &v in vs {
            if scheduled[u.index()].insert(v as usize) {
                buckets[cond.rank(u.0) as usize].push_back((*u, v));
            }
        }
    }

    // One gathered unit per removed candidate: (edge visits, support hits).
    type Gathered = (u64, Vec<(PatternNodeId, usize, u32)>);

    while let Some(rank) = (0..buckets.len()).find(|&r| !buckets[r].is_empty()) {
        let wave: Vec<(PatternNodeId, u32)> = buckets[rank].drain(..).collect();

        // Phase 1: removals, in pop order.
        let mut removed: Vec<(PatternNodeId, u32)> = Vec::with_capacity(wave.len());
        for &(u, v) in &wave {
            if !cand[u.index()].remove(v as usize) {
                continue;
            }
            stats.removals += 1;
            if cand[u.index()].is_empty() {
                return Ok(None);
            }
            removed.push((u, v));
        }

        // Phase 2: read-only gather of support hits per removed candidate.
        let gather = |i: usize| -> Gathered {
            let (u, v) = removed[i];
            let mut visits = 0u64;
            let mut hits = Vec::new();
            for &(u0, e0) in q.in_edges(u) {
                visits += 1;
                let (ro, rs) = &csrs[e0.index()].rev;
                let (a, b) = (ro[v as usize] as usize, ro[v as usize + 1] as usize);
                for &w in &rs[a..b] {
                    if cand[u0.index()].contains(w as usize) {
                        hits.push((u0, e0.index(), w));
                    }
                }
            }
            (visits, hits)
        };
        let gathered: Vec<Gathered> = if threads > 1 && removed.len() >= PAR_WAVE_MIN {
            par_map(removed.len(), threads, gather).map_err(JoinError::from)?
        } else {
            (0..removed.len()).map(gather).collect()
        };

        // Phase 3: apply decrements in fixed wave order.
        for (visits, hits) in gathered {
            stats.edge_visits += visits;
            for (u0, e0, w) in hits {
                if cand[u0.index()].contains(w as usize)
                    && !scheduled[u0.index()].contains(w as usize)
                {
                    let s = &mut support[e0][w as usize];
                    *s = s.saturating_sub(1);
                    if *s == 0 {
                        scheduled[u0.index()].insert(w as usize);
                        buckets[cond.rank(u0.0) as usize].push_back((u0, w));
                    }
                }
            }
        }
    }

    // Final per-edge filter, fanned across workers (pure per-edge).
    let filtered: Vec<Vec<(NodeId, NodeId)>> = par_map(ne, threads, |ei| {
        let (u, t) = q.edge(PatternEdgeId(ei as u32));
        matchjoin::filter_surviving(
            &csrs[ei].pairs,
            &cand[u.index()],
            &cand[t.index()],
            rev_index,
        )
    })
    .map_err(JoinError::from)?;
    stats.edge_visits += ne as u64;
    if filtered.iter().any(Vec::is_empty) {
        return Ok(None);
    }
    Ok(Some(filtered))
}

/// How many work units per edge the chunked build will produce at most,
/// as a multiple of the worker count. Bounds the stitch's memory and time
/// (both O(units × m)) against absurd pinned chunk sizes: every per-unit
/// structure costs O(m), so unit count — not chunk size — is what must
/// stay proportional to the machine.
const MAX_UNITS_PER_EDGE_FACTOR: usize = 8;

/// The fixed *(edge, chunk)* work-unit list for a merged set. Chunk
/// boundaries are pure functions of each set's length, `chunk_pairs`, and
/// `threads` — never of timing. The requested chunk size is floored so no
/// edge produces more than `threads × MAX_UNITS_PER_EDGE_FACTOR` units: a
/// pinned `--chunk-pairs 1` over a huge set must not allocate
/// O(pairs × m) of per-chunk counters (each unit carries dense O(m)
/// state), and unit counts beyond a small multiple of the worker count
/// add stitch work without adding parallelism. An empty set still gets
/// one (empty) unit so every edge produces a CSR.
fn chunk_units<S: Deref<Target = [(NodeId, NodeId)]>>(
    merged: &[S],
    chunk_pairs: usize,
    threads: usize,
) -> Vec<(usize, usize, usize)> {
    let max_units = threads.max(1) * MAX_UNITS_PER_EDGE_FACTOR;
    let mut units = Vec::new();
    for (ei, set) in merged.iter().enumerate() {
        if set.is_empty() {
            units.push((ei, 0, 0));
            continue;
        }
        let chunk = chunk_pairs.max(1).max(set.len().div_ceil(max_units));
        let mut start = 0;
        while start < set.len() {
            let end = (start + chunk).min(set.len());
            units.push((ei, start, end));
            start = end;
        }
    }
    units
}

/// Converts a unit-indexed [`ParError`] into a [`JoinError`] carrying the
/// *edge* index of the failing unit (callers report pattern edges, not
/// internal chunk numbers).
fn unit_error(e: ParError, units: &[(usize, usize, usize)]) -> JoinError {
    match e {
        ParError::Panicked(i) => JoinError::WorkerPanicked(units[i].0),
        ParError::Lost => JoinError::WorkerLost,
    }
}

/// One chunk's contribution to an edge's CSR, computed independently in
/// pass 1 of the two-pass chunked build.
struct CsrChunk {
    /// Compacted `(src, tgt)` pairs, in input (merge) order.
    pairs: Vec<(u32, u32)>,
    /// Per-source pair counts over the dense domain.
    fcnt: Vec<u32>,
    /// Per-target pair counts over the dense domain.
    rcnt: Vec<u32>,
    /// Dense ids occurring as sources in this chunk.
    srcs: BitSet,
    /// Dense ids occurring as targets in this chunk.
    tgts: BitSet,
}

/// Stage 1 under chunked granularity: builds every edge's [`EdgeCsr`] from
/// *(edge, chunk)* work units in three steps —
///
/// 1. **per-chunk counts** (parallel): each unit compacts its pair slice
///    through the shared dense index and counts per-source/per-target
///    occurrences;
/// 2. **sequential prefix stitch**: per edge, chunk counts sum into the
///    CSR offset arrays and each chunk receives its *base* cursor — the
///    offsets advanced past all earlier chunks' pairs — in fixed chunk
///    order;
/// 3. **parallel scatter**: each unit writes its payloads at the slots its
///    base dictates. Slots are disjoint by construction (every (source,
///    occurrence) pair maps to exactly one unit), so plain relaxed atomic
///    stores suffice and the stored values are independent of scheduling.
///
/// The result is field-for-field identical to
/// [`matchjoin::build_edge_csr`] run per edge: chunk concatenation in chunk
/// order reproduces the input order everywhere.
fn chunked_csrs<S: Deref<Target = [(NodeId, NodeId)]> + Sync>(
    merged: &[S],
    index: &HashMap<NodeId, u32>,
    m: usize,
    threads: usize,
    chunk_pairs: usize,
) -> Result<Vec<EdgeCsr>, JoinError> {
    let ne = merged.len();
    let units = chunk_units(merged, chunk_pairs, threads);

    // Pass 1 (parallel): per-chunk compaction + counts.
    let chunks: Vec<CsrChunk> = par_map(units.len(), threads, |i| {
        let (ei, start, end) = units[i];
        let slice = &merged[ei][start..end];
        let mut pairs = Vec::with_capacity(slice.len());
        let mut fcnt = vec![0u32; m];
        let mut rcnt = vec![0u32; m];
        let mut srcs = BitSet::new(m);
        let mut tgts = BitSet::new(m);
        for &(s, t) in slice {
            let (cs, ct) = (index[&s], index[&t]);
            pairs.push((cs, ct));
            fcnt[cs as usize] += 1;
            rcnt[ct as usize] += 1;
            srcs.insert(cs as usize);
            tgts.insert(ct as usize);
        }
        CsrChunk {
            pairs,
            fcnt,
            rcnt,
            srcs,
            tgts,
        }
    })
    .map_err(|e| unit_error(e, &units))?;

    // Sequential prefix stitch, per edge in chunk order: offsets + per-unit
    // base cursors. `units` is edge-major, so a single pass groups them.
    let mut fo: Vec<Vec<u32>> = (0..ne).map(|_| vec![0u32; m + 1]).collect();
    let mut ro: Vec<Vec<u32>> = (0..ne).map(|_| vec![0u32; m + 1]).collect();
    let mut srcs: Vec<BitSet> = (0..ne).map(|_| BitSet::new(m)).collect();
    let mut tgts: Vec<BitSet> = (0..ne).map(|_| BitSet::new(m)).collect();
    for (ui, &(ei, ..)) in units.iter().enumerate() {
        let c = &chunks[ui];
        for v in 0..m {
            fo[ei][v + 1] += c.fcnt[v];
            ro[ei][v + 1] += c.rcnt[v];
        }
        srcs[ei].union_with(&c.srcs);
        tgts[ei].union_with(&c.tgts);
    }
    for ei in 0..ne {
        for v in 0..m {
            fo[ei][v + 1] += fo[ei][v];
            ro[ei][v + 1] += ro[ei][v];
        }
    }
    // Base cursors: chunk k of edge e starts each source/target slot where
    // chunks 0..k left off. Running cursors advance in fixed unit order.
    let mut fbase: Vec<Vec<u32>> = Vec::with_capacity(units.len());
    let mut rbase: Vec<Vec<u32>> = Vec::with_capacity(units.len());
    {
        let mut fcur: Vec<Option<Vec<u32>>> = (0..ne).map(|_| None).collect();
        let mut rcur: Vec<Option<Vec<u32>>> = (0..ne).map(|_| None).collect();
        for (ui, &(ei, ..)) in units.iter().enumerate() {
            let fc = fcur[ei].get_or_insert_with(|| fo[ei][..m].to_vec());
            fbase.push(fc.clone());
            for (cur, &cnt) in fc.iter_mut().zip(&chunks[ui].fcnt) {
                *cur += cnt;
            }
            let rc = rcur[ei].get_or_insert_with(|| ro[ei][..m].to_vec());
            rbase.push(rc.clone());
            for (cur, &cnt) in rc.iter_mut().zip(&chunks[ui].rcnt) {
                *cur += cnt;
            }
        }
    }

    // Pass 2 (parallel): scatter payloads into per-edge atomic buffers.
    // Every slot is written exactly once (disjoint by the stitch), so
    // relaxed stores are race-free on *values* regardless of interleaving.
    let sizes: Vec<usize> = (0..ne).map(|ei| merged[ei].len()).collect();
    let ft: Vec<Vec<AtomicU32>> = sizes
        .iter()
        .map(|&n| (0..n).map(|_| AtomicU32::new(0)).collect())
        .collect();
    let rs: Vec<Vec<AtomicU32>> = sizes
        .iter()
        .map(|&n| (0..n).map(|_| AtomicU32::new(0)).collect())
        .collect();
    par_map(units.len(), threads, |ui| {
        let (ei, ..) = units[ui];
        let mut fcur = fbase[ui].clone();
        let mut rcur = rbase[ui].clone();
        for &(s, t) in &chunks[ui].pairs {
            ft[ei][fcur[s as usize] as usize].store(t, Ordering::Relaxed);
            fcur[s as usize] += 1;
            rs[ei][rcur[t as usize] as usize].store(s, Ordering::Relaxed);
            rcur[t as usize] += 1;
        }
    })
    .map_err(|e| unit_error(e, &units))?;

    // Assemble: concatenated pairs (chunk order = input order) + unwrapped
    // payload buffers.
    let mut per_edge_pairs: Vec<Vec<(u32, u32)>> =
        sizes.iter().map(|&n| Vec::with_capacity(n)).collect();
    for (ui, &(ei, ..)) in units.iter().enumerate() {
        per_edge_pairs[ei].extend_from_slice(&chunks[ui].pairs);
    }
    let unwrap = |v: Vec<AtomicU32>| {
        v.into_iter()
            .map(AtomicU32::into_inner)
            .collect::<Vec<u32>>()
    };
    let mut out = Vec::with_capacity(ne);
    for (ei, ((((pairs, sb), tb), f), r)) in per_edge_pairs
        .into_iter()
        .zip(srcs)
        .zip(tgts)
        .zip(ft)
        .zip(rs)
        .enumerate()
    {
        out.push(EdgeCsr {
            pairs,
            srcs: sb,
            tgts: tb,
            fwd: (std::mem::take(&mut fo[ei]), unwrap(f)),
            rev: (std::mem::take(&mut ro[ei]), unwrap(r)),
        });
    }
    Ok(out)
}

/// One edge's support counters plus its zero-support seed list — the
/// per-edge output shape of stage 3 ([`matchjoin::edge_support`]).
type SupportSeeds = (Vec<u32>, Vec<u32>);

/// Stage 3 under chunked granularity: [`matchjoin::edge_support`] computed
/// over *(edge, node-range)* units. Each unit owns a disjoint slice
/// `[lo, hi)` of the dense node domain, so the counter merge is pure
/// concatenation in range order — support vectors and zero-support seed
/// lists come out identical to the sequential per-edge computation (which
/// iterates candidates in ascending dense order).
///
/// The range size is derived from the **node domain** (`m`), not taken
/// verbatim from `chunk_pairs`: the planner's chunk size is a pair-count
/// budget, and on dense extensions (`chunk_pairs ≥ m`) using it as a node
/// range would collapse this stage back to one unit per edge — exactly
/// the `|Eq|` ceiling chunked granularity exists to break. The domain is
/// split so every edge yields ~2 units per worker, capped *below* by
/// `chunk_pairs` when the caller pinned something finer (the equivalence
/// tests sweep range 1 through it).
fn ranged_support(
    csrs: &[EdgeCsr],
    cand: &[BitSet],
    edge_src: &[(PatternNodeId, PatternNodeId)],
    m: usize,
    threads: usize,
    chunk_pairs: usize,
) -> Result<Vec<SupportSeeds>, JoinError> {
    let ne = csrs.len();
    let domain_split = m.div_ceil(threads.max(1) * 2).max(1);
    let range = domain_split.min(chunk_pairs.max(1));
    let mut units: Vec<(usize, usize, usize)> = Vec::new();
    for ei in 0..ne {
        if m == 0 {
            units.push((ei, 0, 0));
            continue;
        }
        let mut lo = 0;
        while lo < m {
            let hi = (lo + range).min(m);
            units.push((ei, lo, hi));
            lo = hi;
        }
    }

    let parts: Vec<SupportSeeds> = par_map(units.len(), threads, |ui| {
        let (ei, lo, hi) = units[ui];
        let (u, t) = edge_src[ei];
        let (cand_u, cand_t) = (&cand[u.index()], &cand[t.index()]);
        let (fo, ft) = &csrs[ei].fwd;
        let mut sup = vec![0u32; hi - lo];
        let mut seeds = Vec::new();
        for v in lo..hi {
            if !cand_u.contains(v) {
                continue;
            }
            let (a, b) = (fo[v] as usize, fo[v + 1] as usize);
            let cnt = ft[a..b]
                .iter()
                .filter(|&&t2| cand_t.contains(t2 as usize))
                .count() as u32;
            sup[v - lo] = cnt;
            if cnt == 0 {
                seeds.push(v as u32);
            }
        }
        (sup, seeds)
    })
    .map_err(|e| unit_error(e, &units))?;

    let mut out: Vec<SupportSeeds> = (0..ne).map(|_| (vec![0u32; m], Vec::new())).collect();
    for (ui, &(ei, lo, hi)) in units.iter().enumerate() {
        let (sup, seeds) = &parts[ui];
        out[ei].0[lo..hi].copy_from_slice(sup);
        out[ei].1.extend_from_slice(seeds);
    }
    Ok(out)
}

/// Chunk-parallel sort + dedup: splits `set` into fixed index-aligned
/// chunks, sorts each across the workers, then k-way-merges the sorted runs
/// sequentially with dedup. Output equals `set.sort_unstable(); set.dedup()`
/// — a fully sorted, duplicate-free vector is canonical, so the chunk
/// decomposition is invisible in the result.
///
/// The requested chunk size is floored so at most `threads × 4` runs are
/// produced: the merge scans every run's cursor per emitted element, so
/// run count — not chunk size — is what the sequential phase pays for (a
/// fixed small chunk over a 10M-pair union would otherwise create
/// thousands of runs and make the merge quadratic-ish, slower than the
/// sequential sort it replaces).
pub(crate) fn par_sort_dedup(
    set: Vec<(NodeId, NodeId)>,
    threads: usize,
    chunk_pairs: usize,
) -> Result<Vec<(NodeId, NodeId)>, ParError> {
    let chunk = chunk_pairs
        .max(1)
        .max(set.len().div_ceil(threads.max(1) * 4));
    if threads <= 1 || set.len() <= chunk {
        let mut set = set;
        set.sort_unstable();
        set.dedup();
        return Ok(set);
    }
    let bounds: Vec<(usize, usize)> = (0..set.len().div_ceil(chunk))
        .map(|k| (k * chunk, ((k + 1) * chunk).min(set.len())))
        .collect();
    let runs: Vec<Vec<(NodeId, NodeId)>> = par_map(bounds.len(), threads, |k| {
        let (lo, hi) = bounds[k];
        let mut run = set[lo..hi].to_vec();
        run.sort_unstable();
        run
    })?;
    // Sequential k-way merge with dedup (≤ 4×threads runs by the floor
    // above, so the per-element cursor scan stays O(threads)).
    let mut cursors = vec![0usize; runs.len()];
    let mut out: Vec<(NodeId, NodeId)> = Vec::with_capacity(set.len());
    loop {
        let mut best: Option<(usize, (NodeId, NodeId))> = None;
        for (k, run) in runs.iter().enumerate() {
            if let Some(&v) = run.get(cursors[k]) {
                if best.is_none_or(|(_, b)| v < b) {
                    best = Some((k, v));
                }
            }
        }
        let Some((k, v)) = best else { break };
        cursors[k] += 1;
        if out.last() != Some(&v) {
            out.push(v);
        }
    }
    Ok(out)
}

/// The union merge (`Se := ⋃_{e' ∈ λ(e)} S_e'`) with the per-edge
/// sort/dedup fanned across workers via [`par_sort_dedup`] — the parallel
/// counterpart of [`matchjoin::merge_step_union`], byte-identical output.
pub(crate) fn par_merge_step_union<'a>(
    q: &Pattern,
    plan: &ContainmentPlan,
    ext: &'a ViewExtensions,
    threads: usize,
    chunk_pairs: usize,
) -> Result<MergedSets<'a>, JoinError> {
    if q.edge_count() == 0 {
        return Err(JoinError::NoEdges);
    }
    if plan.lambda.len() != q.edge_count() {
        return Err(JoinError::PlanMismatch);
    }
    let mut merged = Vec::with_capacity(q.edge_count());
    for (ei, entries) in plan.lambda.iter().enumerate() {
        let mut set: Vec<(NodeId, NodeId)> = Vec::new();
        for r in entries {
            if r.view >= ext.extensions.len() {
                return Err(JoinError::ViewOutOfRange(r.view));
            }
            set.extend_from_slice(ext.edge_set(r.view, r.edge));
        }
        merged.push(Cow::Owned(
            par_sort_dedup(set, threads, chunk_pairs).map_err(|e| match e {
                ParError::Panicked(_) => JoinError::WorkerPanicked(ei),
                ParError::Lost => JoinError::WorkerLost,
            })?,
        ));
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        for threads in [1, 2, 4] {
            let out = par_map(100, threads, |i| i * i).unwrap();
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_empty() {
        assert_eq!(par_map(0, 4, |i| i), Ok(Vec::<usize>::new()));
    }

    #[test]
    fn par_map_catches_worker_panic() {
        // Silence the default panic hook for the intentional panics below
        // (the worker catches them; the hook would still print backtraces).
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = par_map(16, 4, |i| {
            if i == 3 {
                panic!("boom");
            }
            i
        });
        std::panic::set_hook(hook);
        assert_eq!(
            out,
            Err(ParError::Panicked(3)),
            "failing index resurfaces, process survives"
        );
    }

    /// Regression: a worker lost outside the per-item catch used to be
    /// reported as `WorkerPanicked(usize::MAX)` — a nonsense edge index
    /// that callers would happily print. The conversion must produce the
    /// distinct `WorkerLost` variant instead, and `Panicked` must never
    /// carry the old sentinel.
    #[test]
    fn lost_worker_maps_to_worker_lost_not_a_fake_index() {
        assert_eq!(JoinError::from(ParError::Lost), JoinError::WorkerLost);
        assert_eq!(
            JoinError::from(ParError::Panicked(3)),
            JoinError::WorkerPanicked(3)
        );
        let msg = JoinError::WorkerLost.to_string();
        assert!(
            !msg.contains(&usize::MAX.to_string()),
            "no fabricated edge index in: {msg}"
        );
    }

    #[test]
    fn auto_threads_is_cached_and_stable() {
        let first = auto_threads();
        assert!(first >= 1);
        for _ in 0..3 {
            assert_eq!(auto_threads(), first);
        }
    }

    /// A deterministic pseudo-random pair set with repeated sources and
    /// targets (so CSR rows have real fan-out) in arbitrary order.
    fn scrambled_pairs(n: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                // xorshift64
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (NodeId((x % 23) as u32), NodeId(((x >> 8) % 17 + 23) as u32))
            })
            .collect()
    }

    /// The chunked two-pass CSR build must be field-for-field identical to
    /// the sequential per-edge build, for every chunk size — including 1
    /// (every pair its own unit) and larger than the set (one unit).
    #[test]
    fn chunked_csr_build_matches_sequential() {
        let sets = vec![
            scrambled_pairs(97, 3),
            scrambled_pairs(10, 5),
            Vec::new(),
            scrambled_pairs(1, 7),
        ];
        let (index, _) = matchjoin::compact_index(&sets);
        let m = index.len();
        let baseline: Vec<EdgeCsr> = sets
            .iter()
            .map(|s| matchjoin::build_edge_csr(s, &index, m))
            .collect();
        for chunk in [1usize, 3, 16, 64, 1000] {
            for threads in [2usize, 4, 8] {
                let chunked = chunked_csrs(&sets, &index, m, threads, chunk).unwrap();
                for (ei, (a, b)) in baseline.iter().zip(&chunked).enumerate() {
                    assert_eq!(a.pairs, b.pairs, "pairs e{ei} chunk={chunk} t={threads}");
                    assert_eq!(a.srcs, b.srcs, "srcs e{ei}");
                    assert_eq!(a.tgts, b.tgts, "tgts e{ei}");
                    assert_eq!(a.fwd, b.fwd, "fwd e{ei} chunk={chunk} t={threads}");
                    assert_eq!(a.rev, b.rev, "rev e{ei} chunk={chunk} t={threads}");
                }
            }
        }
    }

    /// Ranged support must concatenate to exactly the sequential counters
    /// and seed lists (ascending dense order), for every range size.
    #[test]
    fn ranged_support_matches_sequential() {
        use gpv_pattern::PatternBuilder;
        let mut b = PatternBuilder::new();
        let u = b.node_labeled("A");
        let v = b.node_labeled("B");
        b.edge(u, v);
        let q = b.build().unwrap();
        let sets = vec![scrambled_pairs(80, 11)];
        let (index, _) = matchjoin::compact_index(&sets);
        let m = index.len();
        let csrs: Vec<EdgeCsr> = sets
            .iter()
            .map(|s| matchjoin::build_edge_csr(s, &index, m))
            .collect();
        let cand = matchjoin::build_candidates(&q, &csrs, m).expect("nonempty");
        let edge_src: Vec<(PatternNodeId, PatternNodeId)> = vec![q.edge(PatternEdgeId(0))];
        let (u, t) = edge_src[0];
        let baseline = matchjoin::edge_support(&csrs[0], &cand[u.index()], &cand[t.index()], m);
        for range in [1usize, 2, 7, 64, 1000] {
            let ranged = ranged_support(&csrs, &cand, &edge_src, m, 4, range).unwrap();
            assert_eq!(ranged[0], baseline, "range={range}");
        }
    }

    /// Chunk-parallel sort + dedup equals the sequential canonical form for
    /// every chunk size and thread count (duplicates included).
    #[test]
    fn par_sort_dedup_matches_sequential() {
        let mut set = scrambled_pairs(200, 13);
        set.extend(scrambled_pairs(50, 13)); // guaranteed duplicates
        let mut expected = set.clone();
        expected.sort_unstable();
        expected.dedup();
        for chunk in [1usize, 7, 64, 500] {
            for threads in [1usize, 2, 4, 8] {
                assert_eq!(
                    par_sort_dedup(set.clone(), threads, chunk).unwrap(),
                    expected,
                    "chunk={chunk} t={threads}"
                );
            }
        }
    }

    /// A panic inside a chunked work unit surfaces as `WorkerPanicked` with
    /// the *edge* index (not an internal unit number), and the process
    /// survives.
    #[test]
    fn chunked_worker_panic_reports_edge_index() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        // Edge 1's ids are offset so they share nothing with edge 0 — the
        // missing node below can only fail units of edge 1.
        let offset = |v: Vec<(NodeId, NodeId)>| {
            v.into_iter()
                .map(|(a, b)| (NodeId(a.0 + 100), NodeId(b.0 + 100)))
                .collect::<Vec<_>>()
        };
        let sets = vec![scrambled_pairs(10, 3), offset(scrambled_pairs(40, 5))];
        let (index, _) = matchjoin::compact_index(&sets);
        // An index missing one of edge 1's nodes: its compaction panics on
        // the lookup.
        let mut broken = index.clone();
        broken.remove(&sets[1][37].0);
        let m = index.len();
        let err = chunked_csrs(&sets, &broken, m, 4, 8).unwrap_err();
        std::panic::set_hook(hook);
        assert_eq!(err, JoinError::WorkerPanicked(1), "edge index, not unit");
    }
}
