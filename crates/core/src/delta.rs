//! Edge-delta batches and affected-view detection — the front half of the
//! incremental maintenance pipeline.
//!
//! The paper's serving story assumes views are *maintained*, not
//! re-materialized ("incremental methods are already in place to efficiently
//! maintain cached pattern views", pointing at Fan et al., SIGMOD 2011).
//! [`EdgeDelta`] is the unit of change — a batch of edge deletions and
//! insertions against an otherwise-immutable [`DataGraph`] — and
//! [`ViewFootprintIndex`] is the dependency-tracking half: an interned-label
//! index over view definitions that maps a delta to the subset of stored
//! views whose result can possibly change, so
//! [`ViewStore::apply_delta`](crate::store::ViewStore::apply_delta) routes
//! only those views through
//! [`IncrementalView`](crate::maintenance::IncrementalView) and leaves every
//! other extension (and every cached answer that reads only them) untouched.
//!
//! # Soundness of the footprint test
//!
//! Edge deltas never change node labels or attributes, so each pattern
//! node's *base* set (nodes satisfying its predicate) is invariant under a
//! delta. An edge `(u, v)` can change a view's result only if `u` lies in
//! some pattern node's base and the matching machinery consults the edge —
//! which requires an endpoint inside a base set. Three cases per view:
//!
//! * every pattern node carries a resolvable label atom → its base is a
//!   subset of that label's holders, so the view is affected only when a
//!   touched endpoint holds one of the view's **footprint labels**;
//! * some pattern node has no label atom → its base is unbounded by labels
//!   and the view is conservatively **unconditional** (checked on every
//!   delta);
//! * some pattern node's label atom does not resolve against the graph's
//!   alphabet → its base is empty *forever* (labels are immutable), the view
//!   result is permanently empty, and the view is **never** affected.

use crate::store::StoreError;
use crate::view::ViewDef;
use gpv_graph::{DataGraph, LabelId, NodeId};
use std::collections::{HashMap, HashSet};

/// A batch of edge mutations against a [`DataGraph`].
///
/// Semantics: `deletes` are applied first, then `inserts` — so an edge
/// appearing in both sets ends up present. Deleting an absent edge and
/// inserting a present one are both no-ops. Node sets never change: every
/// endpoint must reference an existing node (enforced by
/// [`validate`](EdgeDelta::validate) at the store boundary).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeDelta {
    /// Edges added by this batch.
    pub inserts: Vec<(NodeId, NodeId)>,
    /// Edges removed by this batch (before `inserts` apply).
    pub deletes: Vec<(NodeId, NodeId)>,
}

impl EdgeDelta {
    /// Creates a delta, sorting and deduplicating both edge sets.
    pub fn new(inserts: Vec<(NodeId, NodeId)>, deletes: Vec<(NodeId, NodeId)>) -> Self {
        let mut d = EdgeDelta { inserts, deletes };
        d.inserts.sort_unstable();
        d.inserts.dedup();
        d.deletes.sort_unstable();
        d.deletes.dedup();
        d
    }

    /// Whether the batch mutates nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Total number of edge mutations in the batch.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Iterates every node id an edge of this delta touches (with repeats).
    pub fn touched_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.inserts
            .iter()
            .chain(self.deletes.iter())
            .flat_map(|&(u, v)| [u, v])
    }

    /// Validates every endpoint against `g`'s node set, returning the first
    /// out-of-range id as a clean error instead of letting downstream
    /// adjacency indexing panic.
    pub fn validate(&self, g: &DataGraph) -> Result<(), StoreError> {
        let n = g.node_count();
        match self.touched_nodes().find(|id| id.index() >= n) {
            Some(node) => Err(StoreError::NodeOutOfRange {
                node,
                node_count: n,
            }),
            None => Ok(()),
        }
    }

    /// Applies the batch to `g`, producing the post-delta graph. Node data
    /// (labels, attributes, interned alphabets) is shared by clone; only the
    /// edge CSRs are rebuilt.
    ///
    /// Call [`validate`](EdgeDelta::validate) first for untrusted input —
    /// out-of-range endpoints panic in debug builds here.
    pub fn apply_to(&self, g: &DataGraph) -> DataGraph {
        let dead: HashSet<(NodeId, NodeId)> = self.deletes.iter().copied().collect();
        let mut edges: Vec<(NodeId, NodeId)> = g.edges().filter(|e| !dead.contains(e)).collect();
        edges.extend_from_slice(&self.inserts);
        g.with_edges(&edges)
    }
}

/// How a view's result can depend on edge mutations — see the module docs
/// for the soundness argument.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViewFootprint {
    /// Some pattern node's label atom does not resolve against the graph's
    /// alphabet: the view's result is empty under every edge delta.
    Never,
    /// Some pattern node has no label atom: any edge may matter.
    Unconditional,
    /// Every pattern node is label-constrained; the view is affected only by
    /// edges with an endpoint holding one of these labels.
    Labels(Vec<LabelId>),
}

impl ViewFootprint {
    /// Classifies one view definition against `g`'s label alphabet.
    pub fn of(def: &ViewDef, g: &DataGraph) -> ViewFootprint {
        let mut labels: Vec<LabelId> = Vec::new();
        let mut unconditional = false;
        for pred in def.pattern.preds() {
            let mut node_label = None;
            for atom in pred.atoms() {
                if let gpv_pattern::Atom::Label(name) = atom {
                    match g.lookup_label(name) {
                        // A conjunction with an unresolvable label is
                        // unsatisfiable: the node's base is empty forever.
                        None => return ViewFootprint::Never,
                        Some(id) => node_label = node_label.or(Some(id)),
                    }
                }
            }
            match node_label {
                Some(id) => labels.push(id),
                None => unconditional = true,
            }
        }
        if unconditional {
            ViewFootprint::Unconditional
        } else {
            labels.sort_unstable();
            labels.dedup();
            ViewFootprint::Labels(labels)
        }
    }
}

/// An interned-label index over stored view definitions: the affected-view
/// detector. Build once per store snapshot (cheap — proportional to total
/// pattern size), query per delta.
#[derive(Clone, Debug, Default)]
pub struct ViewFootprintIndex {
    by_label: HashMap<LabelId, Vec<u64>>,
    unconditional: Vec<u64>,
}

impl ViewFootprintIndex {
    /// Builds the index from `(view id, definition)` pairs against `g`'s
    /// label alphabet. Views classified [`ViewFootprint::Never`] are simply
    /// absent — they can never be affected.
    pub fn build<'a>(
        views: impl IntoIterator<Item = (u64, &'a ViewDef)>,
        g: &DataGraph,
    ) -> ViewFootprintIndex {
        let mut idx = ViewFootprintIndex::default();
        for (id, def) in views {
            match ViewFootprint::of(def, g) {
                ViewFootprint::Never => {}
                ViewFootprint::Unconditional => idx.unconditional.push(id),
                ViewFootprint::Labels(labels) => {
                    for l in labels {
                        idx.by_label.entry(l).or_default().push(id);
                    }
                }
            }
        }
        idx
    }

    /// The view ids whose result can change under `delta`: every
    /// unconditional view plus every view with a footprint label held by a
    /// touched endpoint. Endpoint labels are read from `g` — pre- and
    /// post-delta graphs agree, since deltas never change node data.
    /// Returned sorted and deduplicated.
    pub fn affected(&self, delta: &EdgeDelta, g: &DataGraph) -> Vec<u64> {
        let n = g.node_count();
        let mut seen_nodes = HashSet::new();
        let mut touched_labels = HashSet::new();
        for id in delta.touched_nodes() {
            if id.index() < n && seen_nodes.insert(id) {
                touched_labels.extend(g.labels_of(id).iter().copied());
            }
        }
        let mut out: Vec<u64> = self.unconditional.clone();
        for l in touched_labels {
            if let Some(ids) = self.by_label.get(&l) {
                out.extend_from_slice(ids);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpv_graph::GraphBuilder;
    use gpv_matching::simulation::match_pattern;
    use gpv_pattern::{Pattern, PatternBuilder, Predicate};

    fn single(a: &str, b: &str) -> Pattern {
        let mut pb = PatternBuilder::new();
        let x = pb.node_labeled(a);
        let y = pb.node_labeled(b);
        pb.edge(x, y);
        pb.build().unwrap()
    }

    fn graph() -> DataGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node(["A"]);
        let x = b.add_node(["B"]);
        let c = b.add_node(["C"]);
        b.add_edge(a, x);
        b.add_edge(x, c);
        b.build()
    }

    #[test]
    fn apply_to_matches_rebuilt_graph_and_validates() {
        let g = graph();
        let delta = EdgeDelta::new(vec![(NodeId(0), NodeId(2))], vec![(NodeId(0), NodeId(1))]);
        assert!(delta.validate(&g).is_ok());
        let next = delta.apply_to(&g);
        assert_eq!(next.edge_count(), 2);
        assert!(next.has_edge(NodeId(0), NodeId(2)));
        assert!(!next.has_edge(NodeId(0), NodeId(1)));
        assert!(next.has_edge(NodeId(1), NodeId(2)));
        // The view result over the new graph reflects the mutation.
        let r = match_pattern(&single("A", "C"), &next);
        assert!(!r.is_empty());

        let bad = EdgeDelta::new(vec![(NodeId(0), NodeId(99))], vec![]);
        assert!(matches!(
            bad.validate(&g),
            Err(StoreError::NodeOutOfRange {
                node: NodeId(99),
                node_count: 3
            })
        ));
    }

    #[test]
    fn delete_then_insert_of_same_edge_keeps_it() {
        let g = graph();
        let e = (NodeId(0), NodeId(1));
        let next = EdgeDelta::new(vec![e], vec![e]).apply_to(&g);
        assert!(next.has_edge(e.0, e.1), "deletes apply before inserts");
        assert_eq!(next.edge_count(), g.edge_count());
    }

    #[test]
    fn footprint_classification() {
        let g = graph();
        let ab = ViewDef::new("ab", single("A", "B"));
        assert_eq!(
            ViewFootprint::of(&ab, &g),
            ViewFootprint::Labels(vec![
                g.lookup_label("A").unwrap(),
                g.lookup_label("B").unwrap()
            ])
        );
        // Unresolvable label → Never.
        let zz = ViewDef::new("zz", single("Z", "A"));
        assert_eq!(ViewFootprint::of(&zz, &g), ViewFootprint::Never);
        // A wildcard node (no label atom) → Unconditional.
        let mut pb = PatternBuilder::new();
        let x = pb.node(Predicate::any());
        let y = pb.node_labeled("A");
        pb.edge(x, y);
        let wild = ViewDef::new("wild", pb.build().unwrap());
        assert_eq!(ViewFootprint::of(&wild, &g), ViewFootprint::Unconditional);
    }

    #[test]
    fn index_routes_deltas_by_endpoint_labels() {
        let g = graph();
        let defs = [
            ViewDef::new("ab", single("A", "B")), // labels {A, B}
            ViewDef::new("bc", single("B", "C")), // labels {B, C}
            ViewDef::new("zz", single("Z", "A")), // never
        ];
        let idx =
            ViewFootprintIndex::build(defs.iter().enumerate().map(|(i, d)| (i as u64, d)), &g);

        // Edge touching only the C node: affects bc, not ab, never zz.
        let c_only = EdgeDelta::new(vec![(NodeId(2), NodeId(2))], vec![]);
        assert_eq!(idx.affected(&c_only, &g), vec![1]);
        // Edge touching A and B: affects both label views.
        let a_b = EdgeDelta::new(vec![], vec![(NodeId(0), NodeId(1))]);
        assert_eq!(idx.affected(&a_b, &g), vec![0, 1]);
        // Empty delta affects nothing.
        assert!(idx.affected(&EdgeDelta::default(), &g).is_empty());
    }

    #[test]
    fn unconditional_views_match_every_delta() {
        let g = graph();
        let mut pb = PatternBuilder::new();
        let x = pb.node(Predicate::any());
        let y = pb.node(Predicate::any());
        pb.edge(x, y);
        let wild = ViewDef::new("wild", pb.build().unwrap());
        let idx = ViewFootprintIndex::build([(7u64, &wild)], &g);
        let d = EdgeDelta::new(vec![(NodeId(2), NodeId(0))], vec![]);
        assert_eq!(idx.affected(&d, &g), vec![7]);
    }
}
