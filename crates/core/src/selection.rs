//! Workload-driven view selection (extension).
//!
//! The paper's first future-work item: "decide what views to cache such
//! that a set of frequently used pattern queries can be answered by using
//! the views". Given a candidate view catalogue, a query workload (with
//! optional frequencies) and a budget on how many views may be cached, the
//! greedy selector repeatedly caches the view whose addition fully answers
//! the most (weighted) additional queries, breaking ties by how many new
//! query edges it covers.
//!
//! Like the paper's `minimum`, this is a greedy approximation to an
//! NP-complete cover-style problem (it generalizes MMCP: with a single
//! query and budget `card(V)` it degenerates to minimum containment).

use crate::minimal::ViewMatchTable;
use crate::view::ViewSet;
use gpv_pattern::Pattern;

/// Outcome of [`select_views_for_workload`].
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSelection {
    /// Chosen view indices (ascending).
    pub views: Vec<usize>,
    /// Which queries are fully answerable from the chosen views.
    pub answered: Vec<bool>,
    /// Total weight of answered queries.
    pub answered_weight: f64,
}

/// Greedy selection of at most `budget` views from `catalogue` maximizing
/// the (weighted) number of fully-answered workload queries.
///
/// `weights` defaults to uniform when `None`; its length must match the
/// workload otherwise.
///
/// ```
/// use gpv_core::selection::select_views_for_workload;
/// use gpv_core::view::{ViewDef, ViewSet};
/// use gpv_pattern::PatternBuilder;
///
/// let single = |x: &str, y: &str| {
///     let mut b = PatternBuilder::new();
///     let u = b.node_labeled(x);
///     let v = b.node_labeled(y);
///     b.edge(u, v);
///     b.build().unwrap()
/// };
/// let catalogue = ViewSet::new(vec![
///     ViewDef::new("ab", single("A", "B")),
///     ViewDef::new("xy", single("X", "Y")),
/// ]);
/// let workload = [single("A", "B")];
/// let sel = select_views_for_workload(&workload, &catalogue, 1, None);
/// assert_eq!(sel.views, vec![0]); // "ab" answers the whole workload
/// assert!(sel.answered[0]);
/// ```
pub fn select_views_for_workload(
    workload: &[Pattern],
    catalogue: &ViewSet,
    budget: usize,
    weights: Option<&[f64]>,
) -> WorkloadSelection {
    let nq = workload.len();
    let w = |i: usize| weights.map_or(1.0, |ws| ws[i]);
    if let Some(ws) = weights {
        assert_eq!(ws.len(), nq, "one weight per workload query");
    }

    // Per-query view-match tables (each row: which query edges each
    // catalogue view covers).
    let tables: Vec<ViewMatchTable> = workload
        .iter()
        .map(|q| ViewMatchTable::build(q, catalogue))
        .collect();

    // covered[qi][e] for each query.
    let mut covered: Vec<Vec<bool>> = workload
        .iter()
        .map(|q| vec![false; q.edge_count()])
        .collect();
    let mut chosen: Vec<usize> = Vec::new();
    let mut available: Vec<usize> = (0..catalogue.card()).collect();

    for _ in 0..budget.min(catalogue.card()) {
        // Score each available view: (weight of queries completed, edges
        // newly covered).
        let mut best: Option<(usize, f64, usize)> = None; // (pos, wq, edges)
        for (pos, &vi) in available.iter().enumerate() {
            let mut completed_weight = 0.0;
            let mut new_edges = 0usize;
            for (qi, q) in workload.iter().enumerate() {
                let cover = &tables[qi].covers[vi];
                let newly: Vec<usize> = cover
                    .iter()
                    .map(|e| e.index())
                    .filter(|&e| !covered[qi][e])
                    .collect();
                new_edges += newly.len();
                if !newly.is_empty() {
                    let would_complete =
                        (0..q.edge_count()).all(|e| covered[qi][e] || newly.contains(&e));
                    if would_complete {
                        completed_weight += w(qi);
                    }
                }
            }
            let better = match best {
                None => true,
                Some((_, bw, be)) => {
                    completed_weight > bw || (completed_weight == bw && new_edges > be)
                }
            };
            if better {
                best = Some((pos, completed_weight, new_edges));
            }
        }
        let Some((pos, _, gain_edges)) = best else {
            break;
        };
        if gain_edges == 0 {
            break; // Nothing left to gain.
        }
        let vi = available.swap_remove(pos);
        chosen.push(vi);
        for (qi, table) in tables.iter().enumerate() {
            for e in &table.covers[vi] {
                covered[qi][e.index()] = true;
            }
        }
    }

    chosen.sort_unstable();
    let answered: Vec<bool> = covered
        .iter()
        .map(|c| !c.is_empty() && c.iter().all(|&b| b))
        .collect();
    let answered_weight = answered
        .iter()
        .enumerate()
        .filter(|&(_, &a)| a)
        .map(|(i, _)| w(i))
        .sum();
    WorkloadSelection {
        views: chosen,
        answered,
        answered_weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::contain;
    use crate::view::ViewDef;
    use gpv_pattern::PatternBuilder;

    fn single(x: &str, y: &str) -> Pattern {
        let mut b = PatternBuilder::new();
        let u = b.node_labeled(x);
        let v = b.node_labeled(y);
        b.edge(u, v);
        b.build().unwrap()
    }

    fn chain(labels: &[&str]) -> Pattern {
        let mut b = PatternBuilder::new();
        let ids: Vec<_> = labels.iter().map(|l| b.node_labeled(l)).collect();
        for w in ids.windows(2) {
            b.edge(w[0], w[1]);
        }
        b.build().unwrap()
    }

    fn catalogue() -> ViewSet {
        ViewSet::new(vec![
            ViewDef::new("ab", single("A", "B")),
            ViewDef::new("bc", single("B", "C")),
            ViewDef::new("cd", single("C", "D")),
            ViewDef::new("xy", single("X", "Y")),
        ])
    }

    #[test]
    fn budget_respected_and_answers_maximized() {
        let workload = vec![
            chain(&["A", "B"]),
            chain(&["A", "B", "C"]),
            chain(&["X", "Y"]),
        ];
        let sel = select_views_for_workload(&workload, &catalogue(), 2, None);
        assert!(sel.views.len() <= 2);
        // Greedy: "ab" completes Q1 (and helps Q2); then "bc" completes Q2 —
        // or "xy" completes Q3 (ties broken by edge gain → "bc" vs "xy" both
        // complete one query and cover one edge; either is a valid greedy
        // outcome, but the scan order makes it deterministic).
        assert!(sel.answered[0]);
        let answered = sel.answered.iter().filter(|&&a| a).count();
        assert_eq!(answered, 2, "two queries answerable within budget 2");
    }

    #[test]
    fn chosen_views_actually_answer() {
        let workload = vec![chain(&["A", "B", "C"]), chain(&["B", "C", "D"])];
        let sel = select_views_for_workload(&workload, &catalogue(), 3, None);
        let sub = catalogue().subset(&sel.views);
        for (qi, q) in workload.iter().enumerate() {
            assert_eq!(sel.answered[qi], contain(q, &sub).is_some(), "query {qi}");
        }
    }

    #[test]
    fn weights_steer_selection() {
        let workload = vec![chain(&["A", "B"]), chain(&["X", "Y"])];
        // Heavy weight on the X->Y query: with budget 1, pick "xy".
        let sel = select_views_for_workload(&workload, &catalogue(), 1, Some(&[1.0, 10.0]));
        assert_eq!(sel.views, vec![3]);
        assert!(!sel.answered[0] && sel.answered[1]);
        assert_eq!(sel.answered_weight, 10.0);
    }

    #[test]
    fn zero_budget() {
        let workload = vec![chain(&["A", "B"])];
        let sel = select_views_for_workload(&workload, &catalogue(), 0, None);
        assert!(sel.views.is_empty());
        assert!(!sel.answered[0]);
    }

    #[test]
    fn stops_when_nothing_gains() {
        // Workload entirely outside the catalogue's vocabulary.
        let workload = vec![chain(&["P", "Q"])];
        let sel = select_views_for_workload(&workload, &catalogue(), 4, None);
        assert!(sel.views.is_empty());
        assert_eq!(sel.answered_weight, 0.0);
    }

    #[test]
    fn degenerates_to_minimum_for_single_query() {
        use crate::minimum::minimum;
        let q = chain(&["A", "B", "C"]);
        let cat = catalogue();
        let sel = select_views_for_workload(std::slice::from_ref(&q), &cat, cat.card(), None);
        let min = minimum(&q, &cat).expect("contained");
        assert_eq!(sel.views.len(), min.views.len());
    }
}
