//! Pattern-query minimization (extension).
//!
//! The paper notes that "the query containment analysis is important in
//! minimizing and optimizing pattern queries" (Corollary 4). This module
//! implements the standard simulation-equivalence quotient: pattern nodes
//! `u ~ v` when each simulates the other inside the pattern; equivalent
//! nodes are merged and duplicate edges collapse. The quotient is
//! equivalent to the original query — `q ⊑ q'` and `q' ⊑ q` both hold
//! ([`minimize`] verifies this with the `contain` machinery and the tests
//! check match-set equality on random graphs).
//!
//! Smaller queries matter here because every algorithm in this crate is
//! quadratic-or-worse in `|Qs|`.

use crate::containment::query_contained;
use gpv_matching::pattern_sim::simulate_pattern;
use gpv_pattern::{Pattern, PatternEdgeId, PatternNodeId};

/// Result of [`minimize`].
#[derive(Clone, Debug, PartialEq)]
pub struct Minimized {
    /// The quotient pattern (never larger than the input).
    pub pattern: Pattern,
    /// `node_map[u]` = the quotient node representing original node `u`.
    pub node_map: Vec<PatternNodeId>,
    /// `edge_map[e]` = the quotient edge carrying original edge `e`.
    pub edge_map: Vec<PatternEdgeId>,
}

/// Computes the simulation preorder of a pattern with itself: `le[u][v]`
/// iff `v` simulates `u` (node conditions by equivalence, like view
/// matches).
pub fn self_simulation_preorder(q: &Pattern) -> Vec<Vec<bool>> {
    // simulate_pattern(q, q) computes the maximum relation S with
    // (x, u) ∈ S iff u simulates x; it always succeeds (identity works).
    let sim = simulate_pattern(q, q).expect("a pattern simulates itself");
    let n = q.node_count();
    let mut le = vec![vec![false; n]; n];
    for (x, matches) in sim.node_matches.iter().enumerate() {
        for u in matches {
            le[x][u.index()] = true;
        }
    }
    le
}

/// Merges simulation-equivalent nodes. The result is verified equivalent to
/// the input (both containment directions); if verification ever failed the
/// input would be returned unchanged — a safe identity fallback.
pub fn minimize(q: &Pattern) -> Minimized {
    let n = q.node_count();
    let le = self_simulation_preorder(q);

    // Equivalence classes: u ~ v iff le[u][v] && le[v][u]. Assign class
    // representatives by first occurrence.
    let mut class_of: Vec<usize> = (0..n).collect();
    let mut reps: Vec<usize> = Vec::new();
    for u in 0..n {
        let mut found = None;
        for &r in &reps {
            if le[u][r] && le[r][u] {
                found = Some(r);
                break;
            }
        }
        match found {
            Some(r) => class_of[u] = r,
            None => {
                reps.push(u);
                class_of[u] = u;
            }
        }
    }

    if reps.len() == n {
        // Nothing merges; identity result.
        return Minimized {
            pattern: q.clone(),
            node_map: q.nodes().collect(),
            edge_map: (0..q.edge_count() as u32).map(PatternEdgeId).collect(),
        };
    }

    // Quotient node ids in representative order.
    let mut new_id = vec![u32::MAX; n];
    for (i, &r) in reps.iter().enumerate() {
        new_id[r] = i as u32;
    }
    let preds: Vec<_> = reps
        .iter()
        .map(|&r| q.pred(PatternNodeId(r as u32)).clone())
        .collect();
    let edges: Vec<(u32, u32)> = q
        .edges()
        .iter()
        .map(|&(u, v)| (new_id[class_of[u.index()]], new_id[class_of[v.index()]]))
        .collect();
    let quotient = Pattern::from_parts(preds, edges).expect("nonempty quotient");

    // Verify equivalence (Corollary 4 machinery; quadratic in |Qs|).
    if !(query_contained(q, &quotient) && query_contained(&quotient, q)) {
        return Minimized {
            pattern: q.clone(),
            node_map: q.nodes().collect(),
            edge_map: (0..q.edge_count() as u32).map(PatternEdgeId).collect(),
        };
    }

    let node_map: Vec<PatternNodeId> = (0..n).map(|u| PatternNodeId(new_id[class_of[u]])).collect();
    let edge_map: Vec<PatternEdgeId> = q
        .edges()
        .iter()
        .map(|&(u, v)| {
            quotient
                .edge_id(node_map[u.index()], node_map[v.index()])
                .expect("quotient edge exists by construction")
        })
        .collect();
    Minimized {
        pattern: quotient,
        node_map,
        edge_map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpv_matching::simulation::match_pattern;
    use gpv_pattern::PatternBuilder;

    #[test]
    fn identical_branches_merge() {
        // A -> B, A -> B' with identical B, B': merges to A -> B.
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let b1 = b.node_labeled("B");
        let b2 = b.node_labeled("B");
        b.edge(a, b1);
        b.edge(a, b2);
        let q = b.build().unwrap();
        let m = minimize(&q);
        assert_eq!(m.pattern.node_count(), 2);
        assert_eq!(m.pattern.edge_count(), 1);
        assert_eq!(m.node_map[b1.index()], m.node_map[b2.index()]);
        assert_eq!(m.edge_map[0], m.edge_map[1]);
    }

    #[test]
    fn fig1c_cycle_halves() {
        // The paper's Fig. 1(c): DBA1 ~ DBA2 and PRG1 ~ PRG2 (the cycle is
        // symmetric), so the 5-node query minimizes to 3 nodes.
        let mut b = PatternBuilder::new();
        let pm = b.node_labeled("PM");
        let dba1 = b.node_labeled("DBA");
        let prg1 = b.node_labeled("PRG");
        let dba2 = b.node_labeled("DBA");
        let prg2 = b.node_labeled("PRG");
        b.edge(pm, dba1);
        b.edge(pm, prg2);
        b.edge(dba1, prg1);
        b.edge(prg1, dba2);
        b.edge(dba2, prg2);
        b.edge(prg2, dba1);
        let q = b.build().unwrap();
        let m = minimize(&q);
        assert_eq!(m.pattern.node_count(), 3, "PM + merged DBA + merged PRG");
        assert_eq!(m.node_map[1], m.node_map[3]);
        assert_eq!(m.node_map[2], m.node_map[4]);
    }

    #[test]
    fn asymmetric_nodes_do_not_merge() {
        // B1 has an extra C successor: not equivalent to B2.
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let b1 = b.node_labeled("B");
        let b2 = b.node_labeled("B");
        let c = b.node_labeled("C");
        b.edge(a, b1);
        b.edge(a, b2);
        b.edge(b1, c);
        let q = b.build().unwrap();
        let m = minimize(&q);
        assert_eq!(m.pattern.node_count(), 4, "nothing merges");
        assert_eq!(m.pattern, q);
    }

    #[test]
    fn two_cycle_collapses_to_self_loop() {
        let mut b = PatternBuilder::new();
        let a1 = b.node_labeled("A");
        let a2 = b.node_labeled("A");
        b.edge(a1, a2);
        b.edge(a2, a1);
        let q = b.build().unwrap();
        let m = minimize(&q);
        assert_eq!(m.pattern.node_count(), 1);
        assert!(m.pattern.has_self_loop(PatternNodeId(0)));
    }

    #[test]
    fn quotient_matches_same_graph() {
        // Randomized cross-crate coverage lives in tests/minimize.rs; here a
        // concrete case: the symmetric team query over Fig. 1(a)'s shape.
        use gpv_graph::GraphBuilder;
        let mut gb = GraphBuilder::new();
        let pm = gb.add_node(["PM"]);
        let d1 = gb.add_node(["DBA"]);
        let d2 = gb.add_node(["DBA"]);
        let p1 = gb.add_node(["PRG"]);
        gb.add_edge(pm, d1);
        gb.add_edge(pm, p1);
        gb.add_edge(d1, p1);
        gb.add_edge(p1, d2);
        gb.add_edge(d2, p1);
        gb.add_edge(p1, d1);
        let g = gb.build();

        let mut b = PatternBuilder::new();
        let upm = b.node_labeled("PM");
        let ud1 = b.node_labeled("DBA");
        let up1 = b.node_labeled("PRG");
        let ud2 = b.node_labeled("DBA");
        let up2 = b.node_labeled("PRG");
        b.edge(upm, ud1);
        b.edge(upm, up2);
        b.edge(ud1, up1);
        b.edge(up1, ud2);
        b.edge(ud2, up2);
        b.edge(up2, ud1);
        let q = b.build().unwrap();

        let m = minimize(&q);
        assert!(m.pattern.node_count() < q.node_count());
        let r1 = match_pattern(&q, &g);
        let r2 = match_pattern(&m.pattern, &g);
        assert_eq!(r1.is_empty(), r2.is_empty());
        if !r1.is_empty() {
            for (ei, set) in r1.edge_matches.iter().enumerate() {
                let qe = m.edge_map[ei];
                assert_eq!(set, &r2.edge_matches[qe.index()], "edge {ei}");
            }
        }
    }

    #[test]
    fn minimized_is_equivalent_query() {
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let b1 = b.node_labeled("B");
        let b2 = b.node_labeled("B");
        b.edge(a, b1);
        b.edge(a, b2);
        b.edge(b1, b2);
        b.edge(b2, b1);
        let q = b.build().unwrap();
        let m = minimize(&q);
        assert!(query_contained(&q, &m.pattern));
        assert!(query_contained(&m.pattern, &q));
        assert!(m.pattern.size() <= q.size());
    }
}
