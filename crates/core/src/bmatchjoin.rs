//! `BMatchJoin` — answering bounded pattern queries from views
//! (paper Section VI-A, Theorems 8–9).
//!
//! Differences from `MatchJoin`:
//!
//! * the merge step filters each borrowed pair by the *query* edge's own
//!   bound, using the distance index `I(V)` baked into the bounded
//!   extensions (a covering view edge may have a looser bound than the
//!   query edge, so pairs at distance `fe(e) < d ≤ k` must be dropped);
//! * after that filter, validity is pure structure over node pairs, so the
//!   refinement fixpoint is shared with `MatchJoin` — and so is the
//!   `O(|Qb||V(G)| + |V(G)|²)` bound (Theorem 9), versus the cubic
//!   `O(|Qb||G|²)` of direct `BMatch`.

use crate::bview::BoundedViewExtensions;
use crate::containment::ContainmentPlan;
use crate::matchjoin::{
    naive_fixpoint, ranked_fixpoint, JoinError, JoinStats, JoinStrategy, MergedSets,
};
use gpv_graph::NodeId;
use gpv_matching::result::BoundedMatchResult;
use gpv_pattern::{BoundedPattern, PatternEdgeId};
use std::collections::HashSet;

/// Answers `Qb` using bounded views with the default (optimized) strategy.
pub fn bmatch_join(
    qb: &BoundedPattern,
    plan: &ContainmentPlan,
    ext: &BoundedViewExtensions,
) -> Result<BoundedMatchResult, JoinError> {
    bmatch_join_with(qb, plan, ext, JoinStrategy::RankedBottomUp).map(|(r, _)| r)
}

/// Answers `Qb` using bounded views with an explicit strategy.
pub fn bmatch_join_with(
    qb: &BoundedPattern,
    plan: &ContainmentPlan,
    ext: &BoundedViewExtensions,
    strategy: JoinStrategy,
) -> Result<(BoundedMatchResult, JoinStats), JoinError> {
    bmatch_join_threaded(qb, plan, ext, strategy, 0)
}

/// Like [`bmatch_join_with`], with an explicit worker count for
/// [`JoinStrategy::Parallel`] (`0` = auto-detect; ignored by the
/// sequential strategies).
pub fn bmatch_join_threaded(
    qb: &BoundedPattern,
    plan: &ContainmentPlan,
    ext: &BoundedViewExtensions,
    strategy: JoinStrategy,
    threads: usize,
) -> Result<(BoundedMatchResult, JoinStats), JoinError> {
    bmatch_join_exec(
        qb,
        plan,
        ext,
        strategy,
        threads,
        crate::plan::ParGranularity::PerEdge,
    )
}

/// The full-control entry point behind [`bmatch_join_threaded`]: an
/// explicit fan-out granularity for [`JoinStrategy::Parallel`] (the engine
/// threads its plan's [`ParGranularity`](crate::plan::ParGranularity)
/// through here; ignored by the sequential strategies).
pub(crate) fn bmatch_join_exec(
    qb: &BoundedPattern,
    plan: &ContainmentPlan,
    ext: &BoundedViewExtensions,
    strategy: JoinStrategy,
    threads: usize,
    granularity: crate::plan::ParGranularity,
) -> Result<(BoundedMatchResult, JoinStats), JoinError> {
    let q = qb.pattern();
    if q.edge_count() == 0 {
        return Err(JoinError::NoEdges);
    }
    if plan.lambda.len() != q.edge_count() {
        return Err(JoinError::PlanMismatch);
    }

    // Merge step with the distance filter d ≤ fe(e) (I(V) lookups are the
    // `d` fields riding along with every cached pair). As in the plain
    // `merge_step`, a single witnessing view edge per query edge suffices
    // (simulations compose; see `matchjoin::merge_step`), so we read only
    // the smallest covering extension. `with_dist[ei]` stays sorted by
    // pair, enabling binary-search distance reattachment after the
    // fixpoint — no per-pair hashing.
    // The distance filter projects owned sets out of the arena (the shared
    // fixpoint takes them as `Cow::Owned`; the zero-copy borrow only applies
    // to the unbounded join, where no per-pair filtering happens).
    let mut with_dist: Vec<Vec<(NodeId, NodeId, u32)>> = Vec::with_capacity(q.edge_count());
    let mut merged: MergedSets<'_> = Vec::with_capacity(q.edge_count());
    for (ei, entries) in plan.lambda.iter().enumerate() {
        let bound = qb.bound(PatternEdgeId(ei as u32));
        for r in entries {
            if r.view >= ext.extensions.len() {
                return Err(JoinError::ViewOutOfRange(r.view));
            }
        }
        let best = entries
            .iter()
            .min_by_key(|r| ext.edge_set(r.view, r.edge).len())
            .ok_or(JoinError::PlanMismatch)?;
        let mut filtered: Vec<(NodeId, NodeId, u32)> = ext
            .edge_set(best.view, best.edge)
            .iter()
            .copied()
            .filter(|&(_, _, d)| bound.admits(d))
            .collect();
        // Canonicalize (same choke point as the plain `merge_step`): a
        // stored extension with duplicate pairs must not inflate the
        // working set, and the binary-search distance reattachment below
        // requires strictly-sorted pairs. Ties on a pair keep the smallest
        // distance (the shortest witnessing path, `I(V)`'s semantics).
        if !filtered
            .windows(2)
            .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1))
        {
            filtered.sort_unstable();
            filtered.dedup_by_key(|&mut (v, w, _)| (v, w));
        }
        merged.push(std::borrow::Cow::Owned(
            filtered.iter().map(|&(v, w, _)| (v, w)).collect(),
        ));
        with_dist.push(filtered);
    }

    let mut stats = JoinStats {
        merged_pairs: merged.iter().map(|s| s.len() as u64).sum(),
        ..JoinStats::default()
    };
    let sets = match strategy {
        JoinStrategy::RankedBottomUp => ranked_fixpoint(q, merged, &mut stats),
        JoinStrategy::NaiveFixpoint => naive_fixpoint(q, merged, &mut stats),
        JoinStrategy::Parallel => {
            let threads = if threads == 0 {
                crate::parallel::auto_threads()
            } else {
                threads
            };
            crate::parallel::par_ranked_fixpoint_with(q, merged, &mut stats, threads, granularity)?
        }
    };

    let Some(sets) = sets else {
        return Ok((BoundedMatchResult::empty(), stats));
    };
    // Re-attach distances (binary search in the sorted merged slice) and
    // build node sets.
    let mut node_sets: Vec<HashSet<NodeId>> = vec![HashSet::new(); q.node_count()];
    let mut edge_matches = Vec::with_capacity(sets.len());
    for (ei, set) in sets.into_iter().enumerate() {
        let (u, t) = q.edge(PatternEdgeId(ei as u32));
        let src = &with_dist[ei];
        let with_d: Vec<(NodeId, NodeId, u32)> = set
            .into_iter()
            .map(|(v, w)| {
                node_sets[u.index()].insert(v);
                node_sets[t.index()].insert(w);
                let i = src
                    .binary_search_by_key(&(v, w), |&(a, b, _)| (a, b))
                    .expect("surviving pair came from the merged slice");
                (v, w, src[i].2)
            })
            .collect();
        edge_matches.push(with_d);
    }
    if node_sets.iter().any(HashSet::is_empty) {
        return Ok((BoundedMatchResult::empty(), stats));
    }
    Ok((
        BoundedMatchResult::new(
            q,
            node_sets
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect(),
            edge_matches,
        ),
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcontainment::bcontain;
    use crate::bview::{bmaterialize, BoundedViewDef, BoundedViewSet};
    use gpv_graph::{DataGraph, GraphBuilder};
    use gpv_matching::bounded::bmatch_pattern;
    use gpv_pattern::PatternBuilder;

    /// Paper Fig. 3(a) graph.
    fn fig3a() -> DataGraph {
        let mut b = GraphBuilder::new();
        let pm1 = b.add_node(["PM"]);
        let _ai1 = b.add_node(["AI"]);
        let ai2 = b.add_node(["AI"]);
        let bio1 = b.add_node(["Bio"]);
        let se1 = b.add_node(["SE"]);
        let se2 = b.add_node(["SE"]);
        let db1 = b.add_node(["DB"]);
        let db2 = b.add_node(["DB"]);
        b.add_edge(pm1, _ai1);
        b.add_edge(pm1, ai2);
        b.add_edge(ai2, bio1);
        b.add_edge(db1, ai2);
        b.add_edge(db2, _ai1);
        b.add_edge(_ai1, se1);
        b.add_edge(ai2, se2);
        b.add_edge(se1, db2);
        b.add_edge(se2, db1);
        b.add_edge(se1, bio1);
        b.build()
    }

    /// Example 8's bounded query: Fig. 3(c) with fe(AI,Bio) = 2.
    fn example8_qb() -> BoundedPattern {
        let mut b = PatternBuilder::new();
        let pm = b.node_labeled("PM");
        let ai = b.node_labeled("AI");
        let bio = b.node_labeled("Bio");
        let db = b.node_labeled("DB");
        let se = b.node_labeled("SE");
        b.edge_bounded(pm, ai, 1);
        b.edge_bounded(ai, bio, 2);
        b.edge_bounded(db, ai, 1);
        b.edge_bounded(ai, se, 1);
        b.edge_bounded(se, db, 1);
        b.build_bounded().unwrap()
    }

    /// Bounded views covering Example 8's query (bounds ≥ the query's).
    fn views() -> BoundedViewSet {
        // V1: AI -[2]-> Bio, PM -[1]-> AI.
        let mut b = PatternBuilder::new();
        let ai = b.node_labeled("AI");
        let bio = b.node_labeled("Bio");
        let pm = b.node_labeled("PM");
        b.edge_bounded(ai, bio, 2);
        b.edge_bounded(pm, ai, 1);
        let v1 = b.build_bounded().unwrap();
        // V2: DB -[1]-> AI -[1]-> SE -[1]-> DB.
        let mut b = PatternBuilder::new();
        let db = b.node_labeled("DB");
        let ai = b.node_labeled("AI");
        let se = b.node_labeled("SE");
        b.edge_bounded(db, ai, 1);
        b.edge_bounded(ai, se, 1);
        b.edge_bounded(se, db, 1);
        let v2 = b.build_bounded().unwrap();
        BoundedViewSet::new(vec![
            BoundedViewDef::new("V1", v1),
            BoundedViewDef::new("V2", v2),
        ])
    }

    #[test]
    fn theorem_8_equivalence() {
        let g = fig3a();
        let qb = example8_qb();
        let vs = views();
        let plan = bcontain(&qb, &vs).expect("Qb ⊑ V");
        let ext = bmaterialize(&vs, &g);
        let via_views = bmatch_join(&qb, &plan, &ext).unwrap();
        let direct = bmatch_pattern(&qb, &g);
        assert_eq!(via_views, direct, "BMatchJoin(V(G)) == BMatch(G)");
        assert!(!direct.is_empty());
    }

    #[test]
    fn distance_filter_drops_loose_pairs() {
        // View has bound 3 on (A,B); query has bound 1. A pair at distance
        // 2 in the extension must be filtered by the merge step.
        let mut b = GraphBuilder::new();
        let a1 = b.add_node(["A"]);
        let m = b.add_node(["M"]);
        let b1 = b.add_node(["B"]);
        let a2 = b.add_node(["A"]);
        let b2 = b.add_node(["B"]);
        b.add_edge(a1, m);
        b.add_edge(m, b1);
        b.add_edge(a2, b2); // direct
        let g = b.build();

        let mut pb = PatternBuilder::new();
        let x = pb.node_labeled("A");
        let y = pb.node_labeled("B");
        pb.edge_bounded(x, y, 3);
        let vdef = BoundedViewDef::new("V", pb.build_bounded().unwrap());
        let vs = BoundedViewSet::new(vec![vdef]);

        let mut pb = PatternBuilder::new();
        let x = pb.node_labeled("A");
        let y = pb.node_labeled("B");
        pb.edge_bounded(x, y, 1);
        let qb = pb.build_bounded().unwrap();

        let plan = bcontain(&qb, &vs).expect("bound 1 within 3");
        let ext = bmaterialize(&vs, &g);
        let r = bmatch_join(&qb, &plan, &ext).unwrap();
        let direct = bmatch_pattern(&qb, &g);
        assert_eq!(r, direct);
        assert_eq!(r.edge_set(PatternEdgeId(0)), &[(a2, b2, 1)]);
    }

    #[test]
    fn strategies_agree() {
        let g = fig3a();
        let qb = example8_qb();
        let vs = views();
        let plan = bcontain(&qb, &vs).unwrap();
        let ext = bmaterialize(&vs, &g);
        let (a, _) = bmatch_join_with(&qb, &plan, &ext, JoinStrategy::RankedBottomUp).unwrap();
        let (b, _) = bmatch_join_with(&qb, &plan, &ext, JoinStrategy::NaiveFixpoint).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_result_when_views_empty() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(["X"]);
        let y = b.add_node(["Y"]);
        b.add_edge(x, y);
        let g = b.build();
        let qb = example8_qb();
        let vs = views();
        let plan = bcontain(&qb, &vs).unwrap();
        let ext = bmaterialize(&vs, &g);
        let r = bmatch_join(&qb, &plan, &ext).unwrap();
        assert!(r.is_empty());
        assert_eq!(bmatch_pattern(&qb, &g), r);
    }

    #[test]
    fn star_query_edges() {
        // Query: A -[*]-> B; view: A -[*]-> B. Any reachable pair flows
        // through untouched.
        let mut b = GraphBuilder::new();
        let a = b.add_node(["A"]);
        let m = b.add_node(["M"]);
        let z = b.add_node(["B"]);
        b.add_edge(a, m);
        b.add_edge(m, z);
        let g = b.build();

        let mk = || {
            let mut pb = PatternBuilder::new();
            let x = pb.node_labeled("A");
            let y = pb.node_labeled("B");
            pb.edge_unbounded(x, y);
            pb.build_bounded().unwrap()
        };
        let vs = BoundedViewSet::new(vec![BoundedViewDef::new("V", mk())]);
        let qb = mk();
        let plan = bcontain(&qb, &vs).unwrap();
        let ext = bmaterialize(&vs, &g);
        let r = bmatch_join(&qb, &plan, &ext).unwrap();
        assert_eq!(r, bmatch_pattern(&qb, &g));
        assert_eq!(r.edge_set(PatternEdgeId(0)), &[(a, z, 2)]);
    }
}
