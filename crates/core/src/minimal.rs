//! Minimal containment — algorithm `minimal` (paper Fig. 5, Section V-B).
//!
//! Finds a subset `V' ⊆ V` that contains `Qs` such that no proper subset of
//! `V'` does. Quadratic time (Theorem 5): the cost is dominated by computing
//! the view matches once per view; the redundancy-elimination pass is
//! `O(card(V)·|Qs|)` using the edge→views index `M`.

use crate::containment::{ContainmentPlan, ViewEdgeRef};
use crate::view::ViewSet;
use gpv_matching::pattern_sim::simulate_pattern;
use gpv_pattern::{Pattern, PatternEdgeId};

/// Result of minimal/minimum containment selection.
#[derive(Clone, Debug, PartialEq)]
pub struct Selection {
    /// Indices of the selected views (ascending).
    pub views: Vec<usize>,
    /// A containment plan whose `λ` uses only the selected views.
    pub plan: ContainmentPlan,
}

/// Per-view containment data computed once and shared by `minimal` /
/// `minimum`.
pub(crate) struct ViewMatchTable {
    /// `covers[vi]` = query edges in `M^Qs_Vi` (sorted).
    pub covers: Vec<Vec<PatternEdgeId>>,
    /// `lambda_entries[vi][k]` = (query edge, view edge) witnessing pairs.
    pub entries: Vec<Vec<(PatternEdgeId, ViewEdgeRef)>>,
}

impl ViewMatchTable {
    pub fn build(q: &Pattern, views: &ViewSet) -> Self {
        let mut covers = Vec::with_capacity(views.card());
        let mut entries = Vec::with_capacity(views.card());
        for (vi, vdef) in views.iter() {
            match simulate_pattern(&vdef.pattern, q) {
                Some(sim) => {
                    covers.push(sim.view_match());
                    let mut es = Vec::new();
                    for (vei, qedges) in sim.edge_matches.iter().enumerate() {
                        for &qe in qedges {
                            es.push((
                                qe,
                                ViewEdgeRef {
                                    view: vi,
                                    edge: PatternEdgeId(vei as u32),
                                },
                            ));
                        }
                    }
                    entries.push(es);
                }
                None => {
                    covers.push(Vec::new());
                    entries.push(Vec::new());
                }
            }
        }
        ViewMatchTable { covers, entries }
    }

    /// The full-λ plan over *all* views (the [`contain`](crate::containment::contain)
    /// result), derived from the table instead of re-simulating: `lambda`
    /// aggregates every entry, `used_views` keeps the contributing views.
    /// `None` when some query edge is uncovered (`Qs ⋢ V`).
    pub(crate) fn full_plan(&self, q: &Pattern) -> Option<ContainmentPlan> {
        let mut lambda: Vec<Vec<ViewEdgeRef>> = vec![Vec::new(); q.edge_count()];
        for es in &self.entries {
            for &(qe, r) in es {
                lambda[qe.index()].push(r);
            }
        }
        if lambda.iter().any(Vec::is_empty) {
            return None;
        }
        let used: Vec<usize> = (0..self.entries.len())
            .filter(|&vi| !self.entries[vi].is_empty())
            .collect();
        Some(ContainmentPlan {
            lambda,
            used_views: used,
        })
    }

    /// The maximal-coverage λ (the
    /// [`partial_contain`](crate::partial::partial_contain) result), derived
    /// from the table.
    pub(crate) fn partial_plan(&self, q: &Pattern) -> crate::partial::PartialPlan {
        let mut lambda: Vec<Vec<ViewEdgeRef>> = vec![Vec::new(); q.edge_count()];
        for es in &self.entries {
            for &(qe, r) in es {
                lambda[qe.index()].push(r);
            }
        }
        let uncovered = (0..q.edge_count())
            .filter(|&e| lambda[e].is_empty())
            .map(|e| PatternEdgeId(e as u32))
            .collect();
        crate::partial::PartialPlan { lambda, uncovered }
    }

    /// Assembles a [`ContainmentPlan`] over exactly `selected` views.
    pub fn plan_for(&self, q: &Pattern, selected: &[usize]) -> Option<ContainmentPlan> {
        let mut lambda: Vec<Vec<ViewEdgeRef>> = vec![Vec::new(); q.edge_count()];
        for &vi in selected {
            for &(qe, r) in &self.entries[vi] {
                lambda[qe.index()].push(r);
            }
        }
        if lambda.iter().any(Vec::is_empty) {
            return None;
        }
        let mut used: Vec<usize> = selected.to_vec();
        used.sort_unstable();
        used.dedup();
        Some(ContainmentPlan {
            lambda,
            used_views: used,
        })
    }
}

/// Algorithm `minimal` (Fig. 5): returns a minimally containing subset and
/// its plan, or `None` when `Qs ⋢ V`.
pub fn minimal(q: &Pattern, views: &ViewSet) -> Option<Selection> {
    minimal_from_table(q, &ViewMatchTable::build(q, views))
}

/// [`minimal`] over an already-built table (the engine builds the table
/// once and shares it across `contain`/`minimal`/`minimum`).
pub(crate) fn minimal_from_table(q: &Pattern, table: &ViewMatchTable) -> Option<Selection> {
    let ne = q.edge_count();
    let view_count = table.covers.len();

    // Phase 1 (lines 2-7): greedily keep views contributing new edges,
    // stopping as soon as E = Ep.
    let mut selected: Vec<usize> = Vec::new();
    let mut covered = vec![false; ne];
    let mut covered_count = 0usize;
    // M: for each edge, which *selected* views cover it.
    let mut m: Vec<Vec<usize>> = vec![Vec::new(); ne];
    for (vi, cover) in table.covers.iter().enumerate() {
        let contributes_new = cover.iter().any(|e| !covered[e.index()]);
        if !contributes_new {
            continue;
        }
        selected.push(vi);
        for e in cover {
            if !covered[e.index()] {
                covered[e.index()] = true;
                covered_count += 1;
            }
            m[e.index()].push(vi);
        }
        if covered_count == ne {
            break;
        }
    }
    if covered_count != ne {
        return None; // line 8: Qs ⋢ V.
    }

    // Phase 2 (lines 9-11): eliminate redundant views. Removing Vj is safe
    // iff no edge in M^Qs_Vj would be left with an empty M(e).
    let mut kept: Vec<bool> = vec![true; view_count];
    for &vj in selected.clone().iter() {
        let needed = table.covers[vj].iter().any(|e| {
            m[e.index()].iter().filter(|&&v| kept[v]).count() == 1
                && m[e.index()].iter().any(|&v| v == vj && kept[v])
        });
        if !needed {
            kept[vj] = false;
            // Update M lazily via the `kept` mask.
        }
    }
    let final_views: Vec<usize> = selected.into_iter().filter(|&v| kept[v]).collect();
    let plan = table
        .plan_for(q, &final_views)
        .expect("kept views still cover Qs");
    Some(Selection {
        views: final_views,
        plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::contain;
    use crate::view::ViewDef;
    use gpv_pattern::PatternBuilder;

    fn fig4_query() -> Pattern {
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let bb = b.node_labeled("B");
        let c = b.node_labeled("C");
        let d = b.node_labeled("D");
        let e = b.node_labeled("E");
        b.edge(a, bb);
        b.edge(a, c);
        b.edge(bb, d);
        b.edge(c, d);
        b.edge(bb, e);
        b.build().unwrap()
    }

    fn single_edge(from: &str, to: &str) -> Pattern {
        let mut b = PatternBuilder::new();
        let x = b.node_labeled(from);
        let y = b.node_labeled(to);
        b.edge(x, y);
        b.build().unwrap()
    }

    fn fig4_views() -> ViewSet {
        let v1 = single_edge("C", "D");
        let v2 = single_edge("B", "E");
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let bb = b.node_labeled("B");
        let c = b.node_labeled("C");
        b.edge(a, bb);
        b.edge(a, c);
        let v3 = b.build().unwrap();
        let mut b = PatternBuilder::new();
        let bb = b.node_labeled("B");
        let c = b.node_labeled("C");
        let d = b.node_labeled("D");
        b.edge(bb, d);
        b.edge(c, d);
        let v4 = b.build().unwrap();
        let mut b = PatternBuilder::new();
        let bb = b.node_labeled("B");
        let d = b.node_labeled("D");
        let e = b.node_labeled("E");
        b.edge(bb, d);
        b.edge(bb, e);
        let v5 = b.build().unwrap();
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let bb = b.node_labeled("B");
        let c = b.node_labeled("C");
        let d = b.node_labeled("D");
        b.edge(a, bb);
        b.edge(a, c);
        b.edge(c, d);
        let v6 = b.build().unwrap();
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let bb = b.node_labeled("B");
        let c = b.node_labeled("C");
        let d = b.node_labeled("D");
        b.edge(a, bb);
        b.edge(a, c);
        b.edge(bb, d);
        let v7 = b.build().unwrap();
        ViewSet::new(vec![
            ViewDef::new("V1", v1),
            ViewDef::new("V2", v2),
            ViewDef::new("V3", v3),
            ViewDef::new("V4", v4),
            ViewDef::new("V5", v5),
            ViewDef::new("V6", v6),
            ViewDef::new("V7", v7),
        ])
    }

    #[test]
    fn paper_example_6() {
        // minimal scans V1..V4, finds E = Ep, then drops the redundant V1
        // (its only edge (C,D) is also covered by V4), returning {V2,V3,V4}.
        let sel = minimal(&fig4_query(), &fig4_views()).expect("contained");
        assert_eq!(sel.views, vec![1, 2, 3], "paper: {{V2, V3, V4}}");
    }

    #[test]
    fn minimal_plan_is_consistent() {
        let q = fig4_query();
        let sel = minimal(&q, &fig4_views()).unwrap();
        for e in 0..q.edge_count() {
            assert!(!sel.plan.lambda[e].is_empty());
            for r in &sel.plan.lambda[e] {
                assert!(sel.views.contains(&r.view));
            }
        }
    }

    #[test]
    fn minimal_is_irreducible() {
        // Dropping any selected view must break containment.
        let q = fig4_query();
        let views = fig4_views();
        let sel = minimal(&q, &views).unwrap();
        for skip in &sel.views {
            let rest: Vec<usize> = sel.views.iter().copied().filter(|v| v != skip).collect();
            let sub = views.subset(&rest);
            assert!(
                contain(&q, &sub).is_none(),
                "dropping view {skip} should break containment"
            );
        }
    }

    #[test]
    fn not_contained_returns_none() {
        let q = fig4_query();
        let views = fig4_views().subset(&[0, 1]); // V1, V2 only
        assert!(minimal(&q, &views).is_none());
    }

    #[test]
    fn single_view_exact_cover() {
        let q = single_edge("A", "B");
        let views = ViewSet::new(vec![
            ViewDef::new("Vx", single_edge("X", "Y")),
            ViewDef::new("Vab", single_edge("A", "B")),
        ]);
        let sel = minimal(&q, &views).unwrap();
        assert_eq!(sel.views, vec![1]);
    }

    #[test]
    fn duplicate_views_keep_one() {
        let q = single_edge("A", "B");
        let views = ViewSet::new(vec![
            ViewDef::new("Va", single_edge("A", "B")),
            ViewDef::new("Vb", single_edge("A", "B")),
        ]);
        let sel = minimal(&q, &views).unwrap();
        assert_eq!(sel.views.len(), 1);
    }
}
