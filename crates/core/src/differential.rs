//! Differential checking: every execution path vs the naive oracle.
//!
//! The paper's contract (Theorem 1 / Theorem 8) is that answering from
//! views is *indistinguishable* from `match_pattern(q, g)` — for every
//! graph, every covering view set, and every executor configuration. This
//! module turns that contract into a runtime check: a [`DifferentialCase`]
//! bundles one concrete workload (graph, views, queries, a round schedule
//! with store mutations) plus the engine/service configuration under test,
//! and [`check_plain`] / [`check_bounded`] assert **bit-exact** agreement
//! between every answer the planner-driven paths produce and a boxed
//! oracle (normally `gpv_matching::match_pattern`).
//!
//! Three properties make the oracle usable across a mutating serving run:
//!
//! * Theorem 1's corollary — adding views never changes answers, only how
//!   cheaply they can be produced. So one oracle answer per distinct query
//!   stays valid across every `ViewStore::insert` between rounds.
//! * Recalibration only rescales cost weights; plans may change shape, but
//!   by the contract every plan shape must produce the same match sets.
//! * Edge deltas ([`DifferentialCase::deltas`]) *do* change answers — so
//!   the checker tracks the evolving graph itself and drops every cached
//!   oracle answer when a delta lands, recomputing ground truth lazily
//!   against the current graph. Delta-maintained serving is thereby held
//!   to the same bit-exact standard as static serving: after any prefix of
//!   the update stream, every served answer must equal
//!   `match_pattern(q, current G)`.
//!
//! The scenario generator (`gpv-generator`'s `scenario` module) builds
//! `DifferentialCase` inputs from a one-line JSON descriptor; the `gpv
//! fuzz` subcommand drives sampled scenarios through these checks.

use crate::delta::EdgeDelta;
use crate::engine::{EngineConfig, QueryEngine};
use crate::plan::QueryPlan;
use crate::service::{ServiceConfig, ViewService};
use crate::store::ViewStore;
use crate::view::{ViewDef, ViewSet};
use gpv_graph::DataGraph;
use gpv_matching::{BoundedMatchResult, MatchResult};
use gpv_pattern::{BoundedPattern, Pattern};
use std::fmt;
use std::sync::Arc;

/// Ground-truth oracle for plain patterns. Boxed so test harnesses can
/// wrap the real `match_pattern` (e.g. the deliberate-corruption hook the
/// fuzz CLI uses to prove divergences are caught and reproducible).
pub type PlainOracle = Box<dyn Fn(&Pattern, &DataGraph) -> MatchResult>;

/// Ground-truth oracle for bounded patterns (normally `bmatch_pattern`).
pub type BoundedOracle = Box<dyn Fn(&BoundedPattern, &DataGraph) -> BoundedMatchResult>;

/// One concrete differential workload: the data, the serving schedule, and
/// the engine/service configuration every answer is produced under.
///
/// Rounds are indices into `queries` (repetition exercises the plan and
/// result caches); `updates[r]` is inserted into the store after round `r`
/// (exercising engine rebuilds and, with
/// [`ServiceConfig::recalibrate_every`], recalibration epochs).
pub struct DifferentialCase<'a> {
    /// The data graph `G` every answer is checked against.
    pub graph: &'a DataGraph,
    /// The initial view set the store/engine materializes.
    pub views: &'a ViewSet,
    /// The distinct query pool.
    pub queries: &'a [Pattern],
    /// Per-round serve schedules: `rounds[r]` lists indices into `queries`.
    pub rounds: &'a [Vec<usize>],
    /// Views inserted into the store after each round (may be shorter than
    /// `rounds`; missing entries mean no mutation that round).
    pub updates: &'a [Vec<ViewDef>],
    /// Edge deltas applied to the store after each round — *after* that
    /// round's view inserts (may be shorter than `rounds`; missing or
    /// empty entries mean the graph does not move that round). Each delta
    /// routes through [`ViewStore::apply_delta`], so the serving layer's
    /// incremental maintenance, per-view epochs, and snapshot publication
    /// are what the oracle comparison actually exercises.
    pub deltas: &'a [EdgeDelta],
    /// Store shard count.
    pub shards: usize,
    /// Engine configuration under test (executor, granularity, selection
    /// mode, cost weights, threads).
    pub engine: EngineConfig,
    /// Service configuration under test (plan/result caches, recalibration
    /// cadence); its embedded engine config is what `serve_batch` uses.
    pub service: ServiceConfig,
}

/// Where and how an answer disagreed with the oracle.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Which code path produced the wrong answer
    /// (`engine.answer`, `engine.answer_from_views`, `service.serve`, …).
    pub stage: &'static str,
    /// Serving round, for service-stage divergences.
    pub round: Option<usize>,
    /// Slot within the round's batch, for service-stage divergences.
    pub slot: Option<usize>,
    /// Index of the diverging query in the case's query pool.
    pub query: usize,
    /// Human-readable mismatch description (pair counts, error text).
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "divergence at {} (query #{}", self.stage, self.query)?;
        if let Some(r) = self.round {
            write!(f, ", round {r}")?;
        }
        if let Some(s) = self.slot {
            write!(f, ", slot {s}")?;
        }
        write!(f, "): {}", self.detail)
    }
}

/// Counters from a clean differential run (what was actually exercised).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DifferentialReport {
    /// Distinct plain queries checked against the oracle.
    pub queries: usize,
    /// Answers served through `ViewService::serve_batch` (incl. repeats).
    pub served: usize,
    /// Serving rounds executed.
    pub rounds: usize,
    /// Views inserted into the store between rounds.
    pub mutations: usize,
    /// Edge deltas applied to the store between rounds.
    pub edge_deltas: usize,
    /// Views the delta detector routed through incremental maintenance
    /// (summed over all applied deltas).
    pub views_maintained: usize,
    /// Bounded queries checked (0 unless [`check_bounded`] ran).
    pub bounded_queries: usize,
    /// Plans that answered from views alone.
    pub plans_views_only: usize,
    /// Mixed view/graph plans.
    pub plans_hybrid: usize,
    /// Direct `Match`-on-`G` plans.
    pub plans_direct: usize,
    /// Plan-cache hits observed by the service.
    pub plan_cache_hits: u64,
    /// Result-cache hits observed by the service.
    pub result_cache_hits: u64,
}

impl DifferentialReport {
    /// Folds another report's counters into this one.
    pub fn absorb(&mut self, other: &DifferentialReport) {
        self.queries += other.queries;
        self.served += other.served;
        self.rounds += other.rounds;
        self.mutations += other.mutations;
        self.edge_deltas += other.edge_deltas;
        self.views_maintained += other.views_maintained;
        self.bounded_queries += other.bounded_queries;
        self.plans_views_only += other.plans_views_only;
        self.plans_hybrid += other.plans_hybrid;
        self.plans_direct += other.plans_direct;
        self.plan_cache_hits += other.plan_cache_hits;
        self.result_cache_hits += other.result_cache_hits;
    }
}

fn pairs(r: &MatchResult) -> usize {
    r.edge_matches.iter().map(|s| s.len()).sum()
}

fn bpairs(r: &BoundedMatchResult) -> usize {
    r.edge_matches.iter().map(|s| s.len()).sum()
}

fn mismatch(stage: &'static str, query: usize, got: usize, want: usize) -> Box<Divergence> {
    Box::new(Divergence {
        stage,
        round: None,
        slot: None,
        query,
        detail: format!("answered {got} match pairs, oracle says {want} (match sets differ)"),
    })
}

/// A static-verifier finding of error severity, reported through the same
/// [`Divergence`] channel as an oracle mismatch — the fuzz sweep is a
/// standing false-positive audit for the `GPV0xx` passes.
fn verify_divergence(
    stage: &'static str,
    round: Option<usize>,
    query: usize,
    errors: &[crate::verify::Diagnostic],
) -> Box<Divergence> {
    Box::new(Divergence {
        stage,
        round,
        slot: None,
        query,
        detail: errors
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("; "),
    })
}

/// Runs the plan verifier and query lints over one freshly-produced plan;
/// any error-severity diagnostic is a divergence.
#[allow(clippy::too_many_arguments)]
fn verify_one_plan(
    q: &Pattern,
    plan: &QueryPlan,
    views: &ViewSet,
    g: &DataGraph,
    snap: Option<&crate::store::StoreSnapshot>,
    stage: &'static str,
    round: Option<usize>,
    qi: usize,
) -> Result<(), Box<Divergence>> {
    let mut diags = crate::verify::verify_plan(q, plan, views);
    if let Some(snap) = snap {
        diags.extend(crate::verify::verify_plan_epochs(plan, snap));
    }
    diags.extend(crate::lint::lint_query(q, Some(g)));
    let errors = crate::verify::errors_only(diags);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(verify_divergence(stage, round, qi, &errors))
    }
}

/// Runs the snapshot integrity pass plus the snapshot-engine plan/epoch
/// verification over every pool query — called on the freshly materialized
/// store and again after every applied delta.
fn verify_store_state(
    case: &DifferentialCase<'_>,
    store: &ViewStore,
    current: &DataGraph,
    round: Option<usize>,
) -> Result<(), Box<Divergence>> {
    let snap = store.snapshot();
    let errors = crate::verify::errors_only(crate::verify::check_snapshot(&snap, Some(current)));
    if !errors.is_empty() {
        return Err(verify_divergence("verify.store", round, 0, &errors));
    }
    let views = snap.view_set();
    let engine = QueryEngine::from_snapshot(&snap).with_config(case.engine.clone());
    for (qi, q) in case.queries.iter().enumerate() {
        let plan = engine.plan(q);
        verify_one_plan(
            q,
            &plan,
            &views,
            current,
            Some(&snap),
            "verify.plan_epochs",
            round,
            qi,
        )?;
    }
    Ok(())
}

/// Runs one plain-pattern differential case end to end.
///
/// Phase 1 (engine): plans and answers every query through a fresh
/// [`QueryEngine`] under the case's [`EngineConfig`], comparing
/// `answer(q, g)` — and `answer_from_views(q)` whenever the plan can run
/// without the graph — against the oracle.
///
/// Phase 2 (service): materializes a [`ViewStore`], serves every round's
/// batch through [`ViewService::serve_batch`] under the case's
/// [`ServiceConfig`], inserts the round's updates, and repeats — so cache
/// hits, engine rebuilds after mutations, and recalibration epochs are all
/// checked against the *same* oracle answers (valid throughout, per the
/// module docs).
///
/// Returns the exercise counters, or the first [`Divergence`] found.
pub fn check_plain(
    case: &DifferentialCase<'_>,
    oracle: &PlainOracle,
) -> Result<DifferentialReport, Box<Divergence>> {
    let mut report = DifferentialReport {
        queries: case.queries.len(),
        ..DifferentialReport::default()
    };
    let expected: Vec<MatchResult> = case.queries.iter().map(|q| oracle(q, case.graph)).collect();

    // Phase 1: the planner-driven engine paths.
    let engine =
        QueryEngine::materialize(case.views.clone(), case.graph).with_config(case.engine.clone());
    for (qi, q) in case.queries.iter().enumerate() {
        let plan = engine.plan(q);
        match &plan {
            QueryPlan::ViewsOnly(_) => report.plans_views_only += 1,
            QueryPlan::Hybrid { .. } => report.plans_hybrid += 1,
            QueryPlan::Direct { .. } => report.plans_direct += 1,
        }
        // Static verifier + query lints on every plan (release builds
        // included — the debug_assertions hook in `plan` is redundant
        // here by design, so the optimized fuzz sweep still audits).
        verify_one_plan(
            q,
            &plan,
            engine.views(),
            case.graph,
            None,
            "verify.plan",
            None,
            qi,
        )?;
        let got = engine.answer(q, case.graph).map_err(|e| {
            Box::new(Divergence {
                stage: "engine.answer",
                round: None,
                slot: None,
                query: qi,
                detail: format!("engine refused a query the oracle answers: {e:?}"),
            })
        })?;
        if got != expected[qi] {
            return Err(mismatch(
                "engine.answer",
                qi,
                pairs(&got),
                pairs(&expected[qi]),
            ));
        }
        if plan.graph_optional() {
            let got = engine.answer_from_views(q).map_err(|e| {
                Box::new(Divergence {
                    stage: "engine.answer_from_views",
                    round: None,
                    slot: None,
                    query: qi,
                    detail: format!("graph-optional plan failed without the graph: {e:?}"),
                })
            })?;
            if got != expected[qi] {
                return Err(mismatch(
                    "engine.answer_from_views",
                    qi,
                    pairs(&got),
                    pairs(&expected[qi]),
                ));
            }
        }
    }

    // Phase 2: the serving layer, across store mutations, edge deltas and
    // recalibration. The graph evolves under the deltas, so ground truth is
    // tracked per-round: `truth[qi]` caches the oracle's answer against the
    // *current* graph and is dropped wholesale whenever a delta lands
    // (answers are then recomputed lazily, only for queries actually
    // served again).
    let store = Arc::new(ViewStore::materialize(
        case.views.clone(),
        case.graph,
        case.shards,
    ));
    // View-set lints, with fragment-overlap/eviction reporting wired to the
    // freshly materialized store; then the store-integrity and epoch
    // passes over the initial snapshot.
    {
        let snap = store.snapshot();
        let needed: Vec<u64> = snap
            .views()
            .iter()
            .filter(|v| {
                case.queries
                    .iter()
                    .any(|q| !crate::containment::view_match(&v.def.pattern, q).is_empty())
            })
            .map(|v| v.id)
            .collect();
        let advice = store.eviction_advice(&needed);
        let errors =
            crate::verify::errors_only(crate::lint::lint_views(case.views, case.queries, &advice));
        if !errors.is_empty() {
            return Err(verify_divergence("lint.views", None, 0, &errors));
        }
    }
    verify_store_state(case, &store, case.graph, None)?;
    let service = ViewService::with_config(Arc::clone(&store), case.service.clone());
    let mut current = case.graph.clone();
    let mut truth: Vec<Option<MatchResult>> = expected.into_iter().map(Some).collect();
    for (round, schedule) in case.rounds.iter().enumerate() {
        let batch: Vec<Pattern> = schedule.iter().map(|&i| case.queries[i].clone()).collect();
        let answers = service.serve_batch(&batch, Some(&current));
        for (slot, ans) in answers.iter().enumerate() {
            let qi = schedule[slot];
            let want = truth[qi].get_or_insert_with(|| oracle(&case.queries[qi], &current));
            match ans {
                Ok(sa) => {
                    if *sa.result != *want {
                        return Err(Box::new(Divergence {
                            stage: "service.serve",
                            round: Some(round),
                            slot: Some(slot),
                            query: qi,
                            detail: format!(
                                "served {} match pairs, oracle says {} (match sets differ)",
                                pairs(&sa.result),
                                pairs(want)
                            ),
                        }));
                    }
                }
                Err(e) => {
                    return Err(Box::new(Divergence {
                        stage: "service.serve",
                        round: Some(round),
                        slot: Some(slot),
                        query: qi,
                        detail: format!("service refused a query the oracle answers: {e:?}"),
                    }));
                }
            }
        }
        report.served += batch.len();
        report.rounds += 1;
        if let Some(upds) = case.updates.get(round) {
            for upd in upds {
                store.insert(upd.clone(), &current).map_err(|e| {
                    Box::new(Divergence {
                        stage: "store.insert",
                        round: Some(round),
                        slot: None,
                        query: 0,
                        detail: format!("store rejected a valid update view: {e:?}"),
                    })
                })?;
                report.mutations += 1;
            }
        }
        if let Some(delta) = case.deltas.get(round).filter(|d| !d.is_empty()) {
            let applied = store.apply_delta(delta, &current).map_err(|e| {
                Box::new(Divergence {
                    stage: "store.apply_delta",
                    round: Some(round),
                    slot: None,
                    query: 0,
                    detail: format!("store rejected a valid edge delta: {e:?}"),
                })
            })?;
            current = applied.graph;
            report.edge_deltas += 1;
            report.views_maintained += applied.affected.len();
            // Store integrity after every applied delta: CSR canonicality,
            // epoch monotonicity, footprint consistency, and epoch-stamped
            // re-plans against the new snapshot.
            verify_store_state(case, &store, &current, Some(round))?;
            // The graph moved: every cached oracle answer is stale.
            for t in truth.iter_mut() {
                *t = None;
            }
        }
    }
    let stats = service.stats();
    report.plan_cache_hits = stats.plan_cache_hits;
    report.result_cache_hits = stats.result_cache_hits;
    Ok(report)
}

/// Bounded analogue of [`check_plain`]: answers every bounded query via
/// [`QueryEngine::answer_bounded`] under `engine_cfg` and compares against
/// the bounded oracle. Returns the number of queries checked.
pub fn check_bounded(
    graph: &DataGraph,
    views: &crate::bview::BoundedViewSet,
    queries: &[BoundedPattern],
    engine_cfg: EngineConfig,
    oracle: &BoundedOracle,
) -> Result<usize, Box<Divergence>> {
    let engine = QueryEngine::materialize(ViewSet::new(Vec::new()), graph)
        .with_config(engine_cfg)
        .with_bounded_views(views.clone(), graph);
    for (qi, qb) in queries.iter().enumerate() {
        // Bounded plan verifier: when the engine can plan the bounded
        // query at all, the plan must pass the static checks.
        if let Ok(bplan) = engine.plan_bounded(qb) {
            let errors =
                crate::verify::errors_only(crate::verify::verify_bounded_plan(qb, &bplan, views));
            if !errors.is_empty() {
                return Err(verify_divergence("verify.bounded_plan", None, qi, &errors));
            }
        }
        let want = oracle(qb, graph);
        let got = engine.answer_bounded(qb).map_err(|e| {
            Box::new(Divergence {
                stage: "engine.answer_bounded",
                round: None,
                slot: None,
                query: qi,
                detail: format!("engine refused a bounded query the oracle answers: {e:?}"),
            })
        })?;
        if got != want {
            return Err(Box::new(Divergence {
                stage: "engine.answer_bounded",
                round: None,
                slot: None,
                query: qi,
                detail: format!(
                    "answered {} match pairs, oracle says {} (match sets differ)",
                    bpairs(&got),
                    bpairs(&want)
                ),
            }));
        }
    }
    Ok(queries.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpv_graph::GraphBuilder;
    use gpv_matching::match_pattern;
    use gpv_pattern::PatternBuilder;

    fn tiny_graph() -> DataGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node(["A"]);
        let x = b.add_node(["B"]);
        let c = b.add_node(["C"]);
        b.add_edge(a, x);
        b.add_edge(x, c);
        b.add_edge(c, a);
        b.build()
    }

    fn edge_query(src: &str, dst: &str) -> Pattern {
        let mut b = PatternBuilder::new();
        let x = b.node_labeled(src);
        let y = b.node_labeled(dst);
        b.edge(x, y);
        b.build().unwrap()
    }

    fn case_inputs() -> (DataGraph, ViewSet, Vec<Pattern>) {
        let g = tiny_graph();
        let queries = vec![edge_query("A", "B"), edge_query("B", "C")];
        let views = ViewSet::new(vec![
            ViewDef::new("V1", edge_query("A", "B")),
            ViewDef::new("V2", edge_query("B", "C")),
        ]);
        (g, views, queries)
    }

    #[test]
    fn clean_case_passes_and_counts() {
        let (g, views, queries) = case_inputs();
        let rounds = vec![vec![0, 1, 0], vec![1, 0]];
        let updates = vec![vec![ViewDef::new("U1", edge_query("C", "A"))]];
        let case = DifferentialCase {
            graph: &g,
            views: &views,
            queries: &queries,
            rounds: &rounds,
            updates: &updates,
            deltas: &[],
            shards: 2,
            engine: EngineConfig::default(),
            service: ServiceConfig::default(),
        };
        let oracle: PlainOracle = Box::new(match_pattern);
        let report = check_plain(&case, &oracle).expect("no divergence");
        assert_eq!(report.queries, 2);
        assert_eq!(report.served, 5);
        assert_eq!(report.rounds, 2);
        assert_eq!(report.mutations, 1);
        assert_eq!(report.edge_deltas, 0);
        assert_eq!(
            report.plans_views_only + report.plans_hybrid + report.plans_direct,
            2
        );
    }

    /// Serving across edge deltas: after a delta deletes the only A→B
    /// edge, the served answer for that query must shrink in lockstep with
    /// the recomputed oracle — the delta-maintained views, the epoch-keyed
    /// result cache, and the re-published snapshot all have to agree with
    /// `match_pattern` against the *current* graph, round after round.
    #[test]
    fn delta_rounds_track_the_evolving_graph() {
        let (g, views, queries) = case_inputs();
        // Round 0 serves and caches both queries; the delta then deletes
        // A→B (affecting V1 only); rounds 1–2 re-serve both queries, so
        // the checker verifies both the invalidated and the surviving
        // cached answers against fresh ground truth.
        let rounds = vec![vec![0, 1], vec![0, 1], vec![1, 0]];
        let deltas = vec![EdgeDelta::new(
            vec![],
            vec![(gpv_graph::NodeId(0), gpv_graph::NodeId(1))],
        )];
        let case = DifferentialCase {
            graph: &g,
            views: &views,
            queries: &queries,
            rounds: &rounds,
            updates: &[],
            deltas: &deltas,
            shards: 2,
            engine: EngineConfig::default(),
            service: ServiceConfig::default(),
        };
        let oracle: PlainOracle = Box::new(match_pattern);
        let report = check_plain(&case, &oracle).expect("no divergence");
        assert_eq!(report.edge_deltas, 1);
        assert!(report.views_maintained >= 1, "{report:?}");
        assert_eq!(report.served, 6);
    }

    #[test]
    fn corrupted_oracle_is_caught() {
        let (g, views, queries) = case_inputs();
        let rounds = vec![vec![0, 1]];
        let case = DifferentialCase {
            graph: &g,
            views: &views,
            queries: &queries,
            rounds: &rounds,
            updates: &[],
            deltas: &[],
            shards: 1,
            engine: EngineConfig::default(),
            service: ServiceConfig::default(),
        };
        // An oracle that drops one pair must diverge on the first query.
        let oracle: PlainOracle = Box::new(|q, g| {
            let mut r = match_pattern(q, g);
            for set in &mut r.edge_matches {
                if set.pop().is_some() {
                    break;
                }
            }
            r
        });
        let d = check_plain(&case, &oracle).expect_err("must diverge");
        assert_eq!(d.stage, "engine.answer");
        assert_eq!(d.query, 0);
    }
}
