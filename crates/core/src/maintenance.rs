//! Incremental maintenance of materialized simulation views (extension).
//!
//! The paper points out that "incremental methods are already in place to
//! efficiently maintain cached pattern views (e.g. \[15\])" — Fan et al.,
//! *Incremental Graph Pattern Matching* (SIGMOD 2011). This module provides
//! a working maintenance engine for plain-simulation views:
//!
//! * **edge deletions** are handled truly incrementally: deletion is
//!   downward-monotone for simulation, so the same support-counter /
//!   worklist machinery used by `Match` propagates exactly the invalidated
//!   candidates — cost proportional to the affected area, not `|G|`;
//! * **edge insertions** are upward-monotone (matches can only appear), and
//!   a locally-optimal incremental algorithm is substantially more involved
//!   (\[15\]); here insertion re-runs the refinement from the *cached*
//!   predicate-candidate sets, skipping the predicate-evaluation pass —
//!   a warm restart, documented as such.
//!
//! The invariant `self.result() == match_pattern(pattern, current_graph)`
//! is enforced by the tests below and by property tests in `tests/`.

use gpv_graph::{BitSet, DataGraph, NodeId};
use gpv_matching::result::MatchResult;
use gpv_pattern::{Pattern, PatternNodeId};

/// A materialized simulation view that tracks a mutating edge set.
#[derive(Clone, Debug)]
pub struct IncrementalView {
    pattern: Pattern,
    /// Mutable adjacency (the maintained copy of the graph's edges).
    out_adj: Vec<Vec<NodeId>>,
    in_adj: Vec<Vec<NodeId>>,
    /// Predicate-satisfying candidates (static: node labels/attrs are fixed).
    base: Vec<BitSet>,
    /// Current maximum simulation relation (empty vec when no match).
    cand: Vec<BitSet>,
    /// support[e][v] for v ∈ cand(src(e)).
    support: Vec<Vec<u32>>,
    /// Whether the view extension is currently empty.
    empty: bool,
}

impl IncrementalView {
    /// Materializes `pattern` over `g` and prepares maintenance state.
    pub fn new(pattern: Pattern, g: &DataGraph) -> Self {
        let n = g.node_count();
        let out_adj: Vec<Vec<NodeId>> = g.nodes().map(|v| g.out_neighbors(v).to_vec()).collect();
        let in_adj: Vec<Vec<NodeId>> = g.nodes().map(|v| g.in_neighbors(v).to_vec()).collect();

        let mut base = Vec::with_capacity(pattern.node_count());
        for u in pattern.nodes() {
            let resolved = pattern.pred(u).resolve(g);
            let mut set = BitSet::new(n);
            for v in g.nodes() {
                if resolved.satisfied_by(g, v) {
                    set.insert(v.index());
                }
            }
            base.push(set);
        }

        let mut view = IncrementalView {
            pattern,
            out_adj,
            in_adj,
            base,
            cand: Vec::new(),
            support: Vec::new(),
            empty: true,
        };
        view.recompute();
        view
    }

    /// Number of nodes of the maintained graph.
    pub fn node_count(&self) -> usize {
        self.out_adj.len()
    }

    /// Full refinement from the cached base candidate sets.
    fn recompute(&mut self) {
        let n = self.node_count();
        let np = self.pattern.node_count();
        let ne = self.pattern.edge_count();
        let mut cand = self.base.clone();
        if cand.iter().any(BitSet::is_empty) {
            self.empty = true;
            self.cand = Vec::new();
            self.support = Vec::new();
            return;
        }
        let mut support = vec![vec![0u32; n]; ne];
        let mut worklist: Vec<(PatternNodeId, NodeId)> = Vec::new();
        let mut scheduled = vec![BitSet::new(n); np];
        for (ei, &(u, t)) in self.pattern.edges().iter().enumerate() {
            let ct = cand[t.index()].clone();
            for v in cand[u.index()].iter() {
                let cnt = self.out_adj[v]
                    .iter()
                    .filter(|w| ct.contains(w.index()))
                    .count() as u32;
                support[ei][v] = cnt;
                if cnt == 0 && scheduled[u.index()].insert(v) {
                    worklist.push((u, NodeId(v as u32)));
                }
            }
        }
        let ok = Self::drain(
            &self.pattern,
            &self.in_adj,
            &mut cand,
            &mut support,
            &mut scheduled,
            worklist,
        );
        if ok {
            self.cand = cand;
            self.support = support;
            self.empty = false;
        } else {
            self.cand = Vec::new();
            self.support = Vec::new();
            self.empty = true;
        }
    }

    /// Shared removal-propagation loop; returns false if a candidate set
    /// empties (view extension becomes ∅).
    fn drain(
        pattern: &Pattern,
        in_adj: &[Vec<NodeId>],
        cand: &mut [BitSet],
        support: &mut [Vec<u32>],
        scheduled: &mut [BitSet],
        mut worklist: Vec<(PatternNodeId, NodeId)>,
    ) -> bool {
        let mut head = 0;
        while head < worklist.len() {
            let (u, v) = worklist[head];
            head += 1;
            if !cand[u.index()].remove(v.index()) {
                continue;
            }
            if cand[u.index()].is_empty() {
                return false;
            }
            for &(u0, e0) in pattern.in_edges(u) {
                for &w in &in_adj[v.index()] {
                    if cand[u0.index()].contains(w.index())
                        && !scheduled[u0.index()].contains(w.index())
                    {
                        let s = &mut support[e0.index()][w.index()];
                        *s = s.saturating_sub(1);
                        if *s == 0 {
                            scheduled[u0.index()].insert(w.index());
                            worklist.push((u0, w));
                        }
                    }
                }
            }
        }
        true
    }

    /// Deletes edge `(a, b)` and incrementally repairs the view.
    /// Returns `true` if the edge existed.
    pub fn delete_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        let Some(pos) = self.out_adj[a.index()].iter().position(|&x| x == b) else {
            return false;
        };
        self.out_adj[a.index()].remove(pos);
        let pos = self.in_adj[b.index()]
            .iter()
            .position(|&x| x == a)
            .expect("in/out adjacency consistent");
        self.in_adj[b.index()].remove(pos);

        if self.empty {
            return true; // Deletions cannot revive matches.
        }

        // Decrement supports for pattern edges whose endpoints currently
        // admit (a, b); propagate zero-support removals.
        let np = self.pattern.node_count();
        let n = self.node_count();
        let mut scheduled = vec![BitSet::new(n); np];
        let mut worklist: Vec<(PatternNodeId, NodeId)> = Vec::new();
        for (ei, &(u, t)) in self.pattern.edges().iter().enumerate() {
            if self.cand[u.index()].contains(a.index()) && self.cand[t.index()].contains(b.index())
            {
                let s = &mut self.support[ei][a.index()];
                *s = s.saturating_sub(1);
                if *s == 0 && scheduled[u.index()].insert(a.index()) {
                    worklist.push((u, a));
                }
            }
        }
        let ok = Self::drain(
            &self.pattern,
            &self.in_adj,
            &mut self.cand,
            &mut self.support,
            &mut scheduled,
            worklist,
        );
        if !ok {
            self.cand = Vec::new();
            self.support = Vec::new();
            self.empty = true;
        }
        true
    }

    /// Inserts edge `(a, b)`. Insertions can only add matches; this performs
    /// a warm recompute from cached predicate candidates (see module docs).
    /// Returns `true` if the edge was new.
    pub fn insert_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        if self.out_adj[a.index()].contains(&b) {
            return false;
        }
        self.out_adj[a.index()].push(b);
        self.in_adj[b.index()].push(a);
        self.recompute();
        true
    }

    /// The current view extension `V(G)`.
    pub fn result(&self) -> MatchResult {
        if self.empty {
            return MatchResult::empty();
        }
        let mut edge_matches = Vec::with_capacity(self.pattern.edge_count());
        for &(u, t) in self.pattern.edges() {
            let (cu, ct) = (&self.cand[u.index()], &self.cand[t.index()]);
            let mut set = Vec::new();
            for v in cu.iter() {
                for &w in &self.out_adj[v] {
                    if ct.contains(w.index()) {
                        set.push((NodeId(v as u32), w));
                    }
                }
            }
            if set.is_empty() {
                return MatchResult::empty();
            }
            edge_matches.push(set);
        }
        let node_matches = self
            .cand
            .iter()
            .map(|s| s.iter().map(|i| NodeId(i as u32)).collect())
            .collect();
        MatchResult::new(&self.pattern, node_matches, edge_matches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpv_graph::GraphBuilder;
    use gpv_matching::simulation::match_pattern;
    use gpv_pattern::PatternBuilder;

    fn pattern_abc() -> Pattern {
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let bb = b.node_labeled("B");
        let c = b.node_labeled("C");
        b.edge(a, bb);
        b.edge(bb, c);
        b.build().unwrap()
    }

    fn graph() -> DataGraph {
        let mut b = GraphBuilder::new();
        let a1 = b.add_node(["A"]);
        let b1 = b.add_node(["B"]);
        let c1 = b.add_node(["C"]);
        let a2 = b.add_node(["A"]);
        let b2 = b.add_node(["B"]);
        let c2 = b.add_node(["C"]);
        b.add_edge(a1, b1);
        b.add_edge(b1, c1);
        b.add_edge(a2, b2);
        b.add_edge(b2, c2);
        b.build()
    }

    /// Rebuild a DataGraph from the view's current adjacency to use
    /// `match_pattern` as the oracle.
    fn oracle(g0: &DataGraph, deleted: &[(u32, u32)], inserted: &[(u32, u32)]) -> MatchResult {
        let mut b = GraphBuilder::new();
        for v in g0.nodes() {
            let labels: Vec<&str> = g0.labels_of(v).iter().map(|&l| g0.label_name(l)).collect();
            b.add_node(labels.iter().copied());
        }
        for (u, v) in g0.edges() {
            if !deleted.contains(&(u.0, v.0)) {
                b.add_edge(u, v);
            }
        }
        for &(u, v) in inserted {
            b.add_edge(NodeId(u), NodeId(v));
        }
        match_pattern(&pattern_abc(), &b.build())
    }

    #[test]
    fn initial_matches_oracle() {
        let g = graph();
        let view = IncrementalView::new(pattern_abc(), &g);
        assert_eq!(view.result(), match_pattern(&pattern_abc(), &g));
    }

    #[test]
    fn delete_propagates() {
        let g = graph();
        let mut view = IncrementalView::new(pattern_abc(), &g);
        // Deleting b1 -> c1 invalidates b1 (no C successor), then a1.
        assert!(view.delete_edge(NodeId(1), NodeId(2)));
        assert_eq!(view.result(), oracle(&g, &[(1, 2)], &[]));
        let r = view.result();
        assert!(!r.is_empty());
        assert_eq!(r.node_set(PatternNodeId(0)), &[NodeId(3)], "only a2 left");
    }

    #[test]
    fn delete_to_empty() {
        let g = graph();
        let mut view = IncrementalView::new(pattern_abc(), &g);
        view.delete_edge(NodeId(1), NodeId(2));
        view.delete_edge(NodeId(4), NodeId(5));
        assert!(view.result().is_empty());
        assert_eq!(view.result(), oracle(&g, &[(1, 2), (4, 5)], &[]));
        // Further deletions on an empty view are safe no-ops.
        assert!(view.delete_edge(NodeId(0), NodeId(1)));
        assert!(view.result().is_empty());
    }

    #[test]
    fn delete_missing_edge() {
        let g = graph();
        let mut view = IncrementalView::new(pattern_abc(), &g);
        assert!(!view.delete_edge(NodeId(0), NodeId(5)));
        assert_eq!(view.result(), match_pattern(&pattern_abc(), &g));
    }

    #[test]
    fn insert_adds_matches() {
        let g = graph();
        let mut view = IncrementalView::new(pattern_abc(), &g);
        // Cross edge a1 -> b2 adds a new (A,B) match.
        assert!(view.insert_edge(NodeId(0), NodeId(4)));
        assert_eq!(view.result(), oracle(&g, &[], &[(0, 4)]));
        assert!(!view.insert_edge(NodeId(0), NodeId(4)), "duplicate");
    }

    #[test]
    fn insert_revives_empty_view() {
        let g = graph();
        let mut view = IncrementalView::new(pattern_abc(), &g);
        view.delete_edge(NodeId(1), NodeId(2));
        view.delete_edge(NodeId(4), NodeId(5));
        assert!(view.result().is_empty());
        view.insert_edge(NodeId(1), NodeId(2));
        assert_eq!(view.result(), oracle(&g, &[(4, 5)], &[]));
        assert!(!view.result().is_empty());
    }

    #[test]
    fn interleaved_sequence_matches_oracle() {
        let g = graph();
        let mut view = IncrementalView::new(pattern_abc(), &g);
        let ops: &[(&str, u32, u32)] = &[
            ("del", 0, 1),
            ("ins", 0, 4),
            ("del", 3, 4),
            ("ins", 3, 1),
            ("del", 1, 2),
            ("ins", 1, 2),
        ];
        let mut deleted: Vec<(u32, u32)> = Vec::new();
        let mut inserted: Vec<(u32, u32)> = Vec::new();
        for &(op, a, b) in ops {
            match op {
                "del" => {
                    view.delete_edge(NodeId(a), NodeId(b));
                    if let Some(p) = inserted.iter().position(|&e| e == (a, b)) {
                        inserted.remove(p);
                    } else {
                        deleted.push((a, b));
                    }
                }
                _ => {
                    view.insert_edge(NodeId(a), NodeId(b));
                    if let Some(p) = deleted.iter().position(|&e| e == (a, b)) {
                        deleted.remove(p);
                    } else {
                        inserted.push((a, b));
                    }
                }
            }
            assert_eq!(
                view.result(),
                oracle(&g, &deleted, &inserted),
                "after {op} ({a},{b})"
            );
        }
    }
}
