//! Incremental maintenance of materialized simulation views (extension).
//!
//! The paper points out that "incremental methods are already in place to
//! efficiently maintain cached pattern views (e.g. \[15\])" — Fan et al.,
//! *Incremental Graph Pattern Matching* (SIGMOD 2011). This module provides
//! a working maintenance engine for plain-simulation views:
//!
//! * **edge deletions** are handled truly incrementally: deletion is
//!   downward-monotone for simulation, so the same support-counter /
//!   worklist machinery used by `Match` propagates exactly the invalidated
//!   candidates — cost proportional to the affected area, not `|G|`;
//! * **edge insertions** are upward-monotone (matches can only appear):
//!   insertion collects *revival candidates* — nodes outside the current
//!   relation that an inserted edge could newly support — by a backward
//!   closure seeded at the inserted edges' sources, recomputes supports
//!   only for that region, and lets the standard removal drain prune the
//!   over-approximation. Nodes already in the relation can never be
//!   removed by this (their supports only grow), so the cost is
//!   proportional to the revived region, not `|G|`. A view whose
//!   extension is currently empty has no warm state to extend and falls
//!   back to one refinement from the cached predicate-candidate sets.
//!
//! The invariant `self.result() == match_pattern(pattern, current_graph)`
//! is enforced by the tests below and by property tests in `tests/`.

use gpv_graph::{BitSet, DataGraph, NodeId};
use gpv_matching::result::MatchResult;
use gpv_pattern::{Pattern, PatternNodeId};

/// A materialized simulation view that tracks a mutating edge set.
#[derive(Clone, Debug)]
pub struct IncrementalView {
    pattern: Pattern,
    /// Mutable adjacency (the maintained copy of the graph's edges).
    out_adj: Vec<Vec<NodeId>>,
    in_adj: Vec<Vec<NodeId>>,
    /// Predicate-satisfying candidates (static: node labels/attrs are fixed).
    base: Vec<BitSet>,
    /// Current maximum simulation relation (empty vec when no match).
    cand: Vec<BitSet>,
    /// support[e][v] for v ∈ cand(src(e)).
    support: Vec<Vec<u32>>,
    /// Whether the view extension is currently empty.
    empty: bool,
    /// Whether a mutation changed the extension since the last
    /// [`take_dirty`](Self::take_dirty). Mutations track this exactly: a
    /// deletion marks it only when it removes a pair between current
    /// candidates (or cascades), an insertion only when it adds such a pair
    /// or a revival survives the drain.
    dirty: bool,
}

impl IncrementalView {
    /// Adjacency mirror + predicate base sets, with no relation yet.
    fn cold(pattern: Pattern, g: &DataGraph) -> Self {
        let n = g.node_count();
        let out_adj: Vec<Vec<NodeId>> = g.nodes().map(|v| g.out_neighbors(v).to_vec()).collect();
        let in_adj: Vec<Vec<NodeId>> = g.nodes().map(|v| g.in_neighbors(v).to_vec()).collect();

        let mut base = Vec::with_capacity(pattern.node_count());
        for u in pattern.nodes() {
            let resolved = pattern.pred(u).resolve(g);
            let mut set = BitSet::new(n);
            for v in g.nodes() {
                if resolved.satisfied_by(g, v) {
                    set.insert(v.index());
                }
            }
            base.push(set);
        }

        IncrementalView {
            pattern,
            out_adj,
            in_adj,
            base,
            cand: Vec::new(),
            support: Vec::new(),
            empty: true,
            dirty: false,
        }
    }

    /// Materializes `pattern` over `g` and prepares maintenance state.
    pub fn new(pattern: Pattern, g: &DataGraph) -> Self {
        let mut view = Self::cold(pattern, g);
        view.recompute();
        view
    }

    /// Promotes a maintainer from an already-materialized extension.
    ///
    /// `result` must be exactly `match_pattern(&pattern, g)` — e.g. a thawed
    /// stored extension for the store's current graph. The refinement
    /// fixpoint is skipped entirely (the maximum relation is known); only
    /// the support counters are recomputed, over the relation rather than
    /// the base sets. This is how a store warms maintainers on the first
    /// delta without re-deriving what materialization already computed.
    pub fn from_result(pattern: Pattern, g: &DataGraph, result: &MatchResult) -> Self {
        let mut view = Self::cold(pattern, g);
        if result.is_empty() {
            return view;
        }
        let n = view.node_count();
        let ne = view.pattern.edge_count();
        let mut cand = Vec::with_capacity(view.pattern.node_count());
        for u in view.pattern.nodes() {
            let mut set = BitSet::new(n);
            for &v in result.node_set(u) {
                set.insert(v.index());
            }
            cand.push(set);
        }
        let mut support = vec![vec![0u32; n]; ne];
        for (ei, &(u, t)) in view.pattern.edges().iter().enumerate() {
            let ct = &cand[t.index()];
            for v in cand[u.index()].iter() {
                support[ei][v] = view.out_adj[v]
                    .iter()
                    .filter(|w| ct.contains(w.index()))
                    .count() as u32;
            }
        }
        view.cand = cand;
        view.support = support;
        view.empty = false;
        view
    }

    /// Returns whether any mutation since the previous call changed the
    /// extension, and clears the flag. Freshly constructed views start
    /// clean. Callers holding a frozen copy of the extension can skip
    /// re-freezing when this returns `false`.
    pub fn take_dirty(&mut self) -> bool {
        std::mem::take(&mut self.dirty)
    }

    /// Number of nodes of the maintained graph.
    pub fn node_count(&self) -> usize {
        self.out_adj.len()
    }

    /// Full refinement from the cached base candidate sets.
    fn recompute(&mut self) {
        let n = self.node_count();
        let np = self.pattern.node_count();
        let ne = self.pattern.edge_count();
        let mut cand = self.base.clone();
        if cand.iter().any(BitSet::is_empty) {
            self.empty = true;
            self.cand = Vec::new();
            self.support = Vec::new();
            return;
        }
        let mut support = vec![vec![0u32; n]; ne];
        let mut worklist: Vec<(PatternNodeId, NodeId)> = Vec::new();
        let mut scheduled = vec![BitSet::new(n); np];
        for (ei, &(u, t)) in self.pattern.edges().iter().enumerate() {
            let ct = cand[t.index()].clone();
            for v in cand[u.index()].iter() {
                let cnt = self.out_adj[v]
                    .iter()
                    .filter(|w| ct.contains(w.index()))
                    .count() as u32;
                support[ei][v] = cnt;
                if cnt == 0 && scheduled[u.index()].insert(v) {
                    worklist.push((u, NodeId(v as u32)));
                }
            }
        }
        let ok = Self::drain(
            &self.pattern,
            &self.in_adj,
            &mut cand,
            &mut support,
            &mut scheduled,
            worklist,
        );
        if ok {
            self.cand = cand;
            self.support = support;
            self.empty = false;
        } else {
            self.cand = Vec::new();
            self.support = Vec::new();
            self.empty = true;
        }
    }

    /// Shared removal-propagation loop; returns false if a candidate set
    /// empties (view extension becomes ∅).
    fn drain(
        pattern: &Pattern,
        in_adj: &[Vec<NodeId>],
        cand: &mut [BitSet],
        support: &mut [Vec<u32>],
        scheduled: &mut [BitSet],
        mut worklist: Vec<(PatternNodeId, NodeId)>,
    ) -> bool {
        let mut head = 0;
        while head < worklist.len() {
            let (u, v) = worklist[head];
            head += 1;
            if !cand[u.index()].remove(v.index()) {
                continue;
            }
            if cand[u.index()].is_empty() {
                return false;
            }
            for &(u0, e0) in pattern.in_edges(u) {
                for &w in &in_adj[v.index()] {
                    if cand[u0.index()].contains(w.index())
                        && !scheduled[u0.index()].contains(w.index())
                    {
                        let s = &mut support[e0.index()][w.index()];
                        *s = s.saturating_sub(1);
                        if *s == 0 {
                            scheduled[u0.index()].insert(w.index());
                            worklist.push((u0, w));
                        }
                    }
                }
            }
        }
        true
    }

    /// Deletes edge `(a, b)` and incrementally repairs the view.
    /// Returns `true` if the edge existed.
    pub fn delete_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        let Some(pos) = self.out_adj[a.index()].iter().position(|&x| x == b) else {
            return false;
        };
        self.out_adj[a.index()].remove(pos);
        let pos = self.in_adj[b.index()]
            .iter()
            .position(|&x| x == a)
            .expect("in/out adjacency consistent");
        self.in_adj[b.index()].remove(pos);

        if self.empty {
            return true; // Deletions cannot revive matches.
        }

        // Decrement supports for pattern edges whose endpoints currently
        // admit (a, b); propagate zero-support removals.
        let np = self.pattern.node_count();
        let n = self.node_count();
        let mut scheduled = vec![BitSet::new(n); np];
        let mut worklist: Vec<(PatternNodeId, NodeId)> = Vec::new();
        for (ei, &(u, t)) in self.pattern.edges().iter().enumerate() {
            if self.cand[u.index()].contains(a.index()) && self.cand[t.index()].contains(b.index())
            {
                // Pair (a, b) leaves edge ei's match set: the result changed.
                self.dirty = true;
                let s = &mut self.support[ei][a.index()];
                *s = s.saturating_sub(1);
                if *s == 0 && scheduled[u.index()].insert(a.index()) {
                    worklist.push((u, a));
                }
            }
        }
        let ok = Self::drain(
            &self.pattern,
            &self.in_adj,
            &mut self.cand,
            &mut self.support,
            &mut scheduled,
            worklist,
        );
        if !ok {
            self.cand = Vec::new();
            self.support = Vec::new();
            self.empty = true;
        }
        true
    }

    /// Inserts edge `(a, b)` and incrementally repairs the view (see
    /// [`insert_batch`](Self::insert_batch)). Returns `true` if the edge
    /// was new.
    pub fn insert_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        if self.out_adj[a.index()].contains(&b) {
            return false;
        }
        self.insert_batch(&[(a, b)]);
        true
    }

    /// Inserts a batch of edges and incrementally revives exactly the
    /// affected region.
    ///
    /// Insertion is upward-monotone: the new maximum simulation relation is
    /// a superset of the current one, and every *newly* admitted node must
    /// justify itself through a chain of successors that bottoms out at an
    /// inserted edge. So:
    ///
    /// 1. candidates already in the relation that gain an inserted edge to
    ///    an in-relation target just bump their support counter;
    /// 2. **revival candidates** — nodes in a pattern node's base but
    ///    outside the relation — are collected by a backward closure: the
    ///    sources of inserted edges seed it, and any base-but-not-candidate
    ///    predecessor of a revival candidate joins it;
    /// 3. revived nodes enter the candidate sets, their supports are
    ///    recomputed locally (and pre-existing members gain support for
    ///    edges into revived targets), and the standard removal drain
    ///    prunes revivals that don't pan out. Pre-existing members'
    ///    supports only ever grow, so the drain can only remove revival
    ///    candidates — the relation never shrinks below its old value.
    pub fn insert_batch(&mut self, inserts: &[(NodeId, NodeId)]) {
        let mut added: Vec<(NodeId, NodeId)> = Vec::with_capacity(inserts.len());
        for &(a, b) in inserts {
            if !self.out_adj[a.index()].contains(&b) {
                self.out_adj[a.index()].push(b);
                self.in_adj[b.index()].push(a);
                added.push((a, b));
            }
        }
        if added.is_empty() {
            return;
        }
        if self.empty {
            // No warm relation to extend — the view may revive wholesale.
            self.recompute();
            if !self.empty {
                self.dirty = true;
            }
            return;
        }
        let n = self.node_count();
        let np = self.pattern.node_count();

        // Seeds + direct support bumps.
        let mut revive = vec![BitSet::new(n); np];
        let mut queue: Vec<(PatternNodeId, NodeId)> = Vec::new();
        for &(a, b) in &added {
            for (ei, &(u, t)) in self.pattern.edges().iter().enumerate() {
                if !self.base[u.index()].contains(a.index())
                    || !self.base[t.index()].contains(b.index())
                {
                    continue;
                }
                let a_in = self.cand[u.index()].contains(a.index());
                let b_in = self.cand[t.index()].contains(b.index());
                if a_in && b_in {
                    // Pair (a, b) joins edge ei's match set immediately.
                    self.dirty = true;
                    self.support[ei][a.index()] += 1;
                }
                if !a_in && revive[u.index()].insert(a.index()) {
                    queue.push((u, a));
                }
            }
        }

        // Backward closure over base-but-not-candidate predecessors.
        let mut head = 0;
        while head < queue.len() {
            let (t, x) = queue[head];
            head += 1;
            for &(u0, _) in self.pattern.in_edges(t) {
                for &w in &self.in_adj[x.index()] {
                    if self.base[u0.index()].contains(w.index())
                        && !self.cand[u0.index()].contains(w.index())
                        && revive[u0.index()].insert(w.index())
                    {
                        queue.push((u0, w));
                    }
                }
            }
        }
        if queue.is_empty() {
            return;
        }

        // Admit revivals, recompute their supports locally, credit
        // pre-existing members for edges into revived targets, then drain.
        for &(u, v) in &queue {
            self.cand[u.index()].insert(v.index());
        }
        let mut scheduled = vec![BitSet::new(n); np];
        let mut worklist: Vec<(PatternNodeId, NodeId)> = Vec::new();
        for (ei, &(u, t)) in self.pattern.edges().iter().enumerate() {
            for v in revive[u.index()].iter() {
                let ct = &self.cand[t.index()];
                let cnt = self.out_adj[v]
                    .iter()
                    .filter(|w| ct.contains(w.index()))
                    .count() as u32;
                self.support[ei][v] = cnt;
                if cnt == 0 && scheduled[u.index()].insert(v) {
                    worklist.push((u, NodeId(v as u32)));
                }
            }
            for x in revive[t.index()].iter() {
                for w_idx in 0..self.in_adj[x].len() {
                    let w = self.in_adj[x][w_idx];
                    if self.cand[u.index()].contains(w.index())
                        && !revive[u.index()].contains(w.index())
                    {
                        self.support[ei][w.index()] += 1;
                    }
                }
            }
        }
        let ok = Self::drain(
            &self.pattern,
            &self.in_adj,
            &mut self.cand,
            &mut self.support,
            &mut scheduled,
            worklist,
        );
        if !ok {
            self.cand = Vec::new();
            self.support = Vec::new();
            self.empty = true;
            self.dirty = true;
            return;
        }
        // Any revival that survived the drain grew the relation.
        if queue
            .iter()
            .any(|&(u, v)| self.cand[u.index()].contains(v.index()))
        {
            self.dirty = true;
        }
    }

    /// The maintained pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Applies a whole [`EdgeDelta`](crate::delta::EdgeDelta)-shaped batch —
    /// `deletes` first, then `inserts` — incrementally: deletions propagate
    /// per edge through the support counters, and the insertions revive
    /// exactly the affected region in one [`insert_batch`](Self::insert_batch)
    /// pass. Neither side ever recomputes from scratch while the view has a
    /// live relation to extend.
    ///
    /// Endpoints must be `< node_count()`; the store boundary validates
    /// untrusted deltas before calling this.
    pub fn apply_batch(&mut self, deletes: &[(NodeId, NodeId)], inserts: &[(NodeId, NodeId)]) {
        for &(a, b) in deletes {
            self.delete_edge(a, b);
        }
        self.insert_batch(inserts);
    }

    /// Updates only the maintained adjacency mirror, leaving candidate and
    /// support state untouched.
    ///
    /// This is the cheap path for views the affected-view detector proves
    /// *unaffected* by a delta: no mutated endpoint can appear in any
    /// candidate set, so supports and results are provably unchanged — but
    /// the adjacency must keep mirroring the evolving graph for later
    /// mutations to apply cleanly. Calling this with edges that *do* touch
    /// candidates desynchronizes the view; use
    /// [`apply_batch`](Self::apply_batch) for those.
    pub fn patch_adjacency(&mut self, deletes: &[(NodeId, NodeId)], inserts: &[(NodeId, NodeId)]) {
        for &(a, b) in deletes {
            if let Some(pos) = self.out_adj[a.index()].iter().position(|&x| x == b) {
                self.out_adj[a.index()].remove(pos);
                let pos = self.in_adj[b.index()]
                    .iter()
                    .position(|&x| x == a)
                    .expect("in/out adjacency consistent");
                self.in_adj[b.index()].remove(pos);
            }
        }
        for &(a, b) in inserts {
            if !self.out_adj[a.index()].contains(&b) {
                self.out_adj[a.index()].push(b);
                self.in_adj[b.index()].push(a);
            }
        }
    }

    /// The current view extension `V(G)`.
    pub fn result(&self) -> MatchResult {
        if self.empty {
            return MatchResult::empty();
        }
        let mut edge_matches = Vec::with_capacity(self.pattern.edge_count());
        for &(u, t) in self.pattern.edges() {
            let (cu, ct) = (&self.cand[u.index()], &self.cand[t.index()]);
            let mut set = Vec::new();
            for v in cu.iter() {
                for &w in &self.out_adj[v] {
                    if ct.contains(w.index()) {
                        set.push((NodeId(v as u32), w));
                    }
                }
            }
            if set.is_empty() {
                return MatchResult::empty();
            }
            edge_matches.push(set);
        }
        let node_matches = self
            .cand
            .iter()
            .map(|s| s.iter().map(|i| NodeId(i as u32)).collect())
            .collect();
        MatchResult::new(&self.pattern, node_matches, edge_matches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpv_graph::GraphBuilder;
    use gpv_matching::simulation::match_pattern;
    use gpv_pattern::PatternBuilder;

    fn pattern_abc() -> Pattern {
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let bb = b.node_labeled("B");
        let c = b.node_labeled("C");
        b.edge(a, bb);
        b.edge(bb, c);
        b.build().unwrap()
    }

    fn graph() -> DataGraph {
        let mut b = GraphBuilder::new();
        let a1 = b.add_node(["A"]);
        let b1 = b.add_node(["B"]);
        let c1 = b.add_node(["C"]);
        let a2 = b.add_node(["A"]);
        let b2 = b.add_node(["B"]);
        let c2 = b.add_node(["C"]);
        b.add_edge(a1, b1);
        b.add_edge(b1, c1);
        b.add_edge(a2, b2);
        b.add_edge(b2, c2);
        b.build()
    }

    /// Rebuild a DataGraph from the view's current adjacency to use
    /// `match_pattern` as the oracle.
    fn oracle(g0: &DataGraph, deleted: &[(u32, u32)], inserted: &[(u32, u32)]) -> MatchResult {
        let mut b = GraphBuilder::new();
        for v in g0.nodes() {
            let labels: Vec<&str> = g0.labels_of(v).iter().map(|&l| g0.label_name(l)).collect();
            b.add_node(labels.iter().copied());
        }
        for (u, v) in g0.edges() {
            if !deleted.contains(&(u.0, v.0)) {
                b.add_edge(u, v);
            }
        }
        for &(u, v) in inserted {
            b.add_edge(NodeId(u), NodeId(v));
        }
        match_pattern(&pattern_abc(), &b.build())
    }

    #[test]
    fn initial_matches_oracle() {
        let g = graph();
        let view = IncrementalView::new(pattern_abc(), &g);
        assert_eq!(view.result(), match_pattern(&pattern_abc(), &g));
    }

    #[test]
    fn delete_propagates() {
        let g = graph();
        let mut view = IncrementalView::new(pattern_abc(), &g);
        // Deleting b1 -> c1 invalidates b1 (no C successor), then a1.
        assert!(view.delete_edge(NodeId(1), NodeId(2)));
        assert_eq!(view.result(), oracle(&g, &[(1, 2)], &[]));
        let r = view.result();
        assert!(!r.is_empty());
        assert_eq!(r.node_set(PatternNodeId(0)), &[NodeId(3)], "only a2 left");
    }

    #[test]
    fn delete_to_empty() {
        let g = graph();
        let mut view = IncrementalView::new(pattern_abc(), &g);
        view.delete_edge(NodeId(1), NodeId(2));
        view.delete_edge(NodeId(4), NodeId(5));
        assert!(view.result().is_empty());
        assert_eq!(view.result(), oracle(&g, &[(1, 2), (4, 5)], &[]));
        // Further deletions on an empty view are safe no-ops.
        assert!(view.delete_edge(NodeId(0), NodeId(1)));
        assert!(view.result().is_empty());
    }

    #[test]
    fn delete_missing_edge() {
        let g = graph();
        let mut view = IncrementalView::new(pattern_abc(), &g);
        assert!(!view.delete_edge(NodeId(0), NodeId(5)));
        assert_eq!(view.result(), match_pattern(&pattern_abc(), &g));
    }

    #[test]
    fn insert_adds_matches() {
        let g = graph();
        let mut view = IncrementalView::new(pattern_abc(), &g);
        // Cross edge a1 -> b2 adds a new (A,B) match.
        assert!(view.insert_edge(NodeId(0), NodeId(4)));
        assert_eq!(view.result(), oracle(&g, &[], &[(0, 4)]));
        assert!(!view.insert_edge(NodeId(0), NodeId(4)), "duplicate");
    }

    #[test]
    fn insert_revives_empty_view() {
        let g = graph();
        let mut view = IncrementalView::new(pattern_abc(), &g);
        view.delete_edge(NodeId(1), NodeId(2));
        view.delete_edge(NodeId(4), NodeId(5));
        assert!(view.result().is_empty());
        view.insert_edge(NodeId(1), NodeId(2));
        assert_eq!(view.result(), oracle(&g, &[(4, 5)], &[]));
        assert!(!view.result().is_empty());
    }

    #[test]
    fn apply_batch_matches_chained_single_edges() {
        let g = graph();
        // Mixed batch: forces the patch-then-recompute path.
        let deletes = [(NodeId(1), NodeId(2)), (NodeId(3), NodeId(4))];
        let inserts = [(NodeId(0), NodeId(4)), (NodeId(1), NodeId(2))];
        let mut batched = IncrementalView::new(pattern_abc(), &g);
        batched.apply_batch(&deletes, &inserts);
        assert_eq!(batched.result(), oracle(&g, &[(3, 4)], &[(0, 4)]));

        // Delete-only batch: the truly-incremental path, same answer.
        let mut inc = IncrementalView::new(pattern_abc(), &g);
        inc.apply_batch(&[(NodeId(1), NodeId(2))], &[]);
        assert_eq!(inc.result(), oracle(&g, &[(1, 2)], &[]));
    }

    #[test]
    fn patch_adjacency_is_sound_for_unaffected_edges() {
        // Two extra D nodes: edges among them never intersect any base set
        // of pattern_abc, so adjacency-only patching must leave the result
        // untouched — and later *affecting* mutations must still be exact.
        let mut b = GraphBuilder::new();
        let a1 = b.add_node(["A"]);
        let b1 = b.add_node(["B"]);
        let c1 = b.add_node(["C"]);
        let d1 = b.add_node(["D"]);
        let d2 = b.add_node(["D"]);
        b.add_edge(a1, b1);
        b.add_edge(b1, c1);
        b.add_edge(d1, d2);
        let g = b.build();
        let mut view = IncrementalView::new(pattern_abc(), &g);
        let before = view.result();
        view.patch_adjacency(&[(d1, d2)], &[(d2, d1)]);
        assert_eq!(view.result(), before, "D-only edges are invisible");
        // An affecting delete afterwards still propagates correctly.
        view.delete_edge(b1, c1);
        assert!(view.result().is_empty());
    }

    #[test]
    fn interleaved_sequence_matches_oracle() {
        let g = graph();
        let mut view = IncrementalView::new(pattern_abc(), &g);
        let ops: &[(&str, u32, u32)] = &[
            ("del", 0, 1),
            ("ins", 0, 4),
            ("del", 3, 4),
            ("ins", 3, 1),
            ("del", 1, 2),
            ("ins", 1, 2),
        ];
        let mut deleted: Vec<(u32, u32)> = Vec::new();
        let mut inserted: Vec<(u32, u32)> = Vec::new();
        for &(op, a, b) in ops {
            match op {
                "del" => {
                    view.delete_edge(NodeId(a), NodeId(b));
                    if let Some(p) = inserted.iter().position(|&e| e == (a, b)) {
                        inserted.remove(p);
                    } else {
                        deleted.push((a, b));
                    }
                }
                _ => {
                    view.insert_edge(NodeId(a), NodeId(b));
                    if let Some(p) = deleted.iter().position(|&e| e == (a, b)) {
                        deleted.remove(p);
                    } else {
                        inserted.push((a, b));
                    }
                }
            }
            assert_eq!(
                view.result(),
                oracle(&g, &deleted, &inserted),
                "after {op} ({a},{b})"
            );
        }
    }
}
