//! The unified query-answering engine.
//!
//! [`QueryEngine`] is the single decision point for "answer `Qs` given what
//! we have cached": it owns a view registry (definitions + materialized
//! extensions, interchangeable with [`ViewCache`]
//! for durability), produces an explicit [`QueryPlan`] IR, and executes it —
//! choosing among the paper's algorithms instead of making the caller pick:
//!
//! * **Analyze** — containment via [`contain`](crate::containment::contain)
//!   (or [`bcontain`](crate::bcontainment::bcontain) for bounded queries,
//!   [`partial_contain`](crate::partial::partial_contain) for partial
//!   coverage) — one shared view-match sweep per query;
//! * **Select** — `all` vs [`minimal`](crate::minimal::minimal) vs
//!   [`minimum`](crate::minimum::minimum) view selection, costed
//!   by the [`CostModel`] against the actual extension sizes, plus the
//!   per-edge [`EdgeSource`] decision (smallest covering extension vs
//!   surgical graph scan — cost-based hybrid sourcing);
//! * **Execute** — sequential or thread-parallel `MatchJoin` /
//!   `BMatchJoin`, hybrid join, or direct `Match` fallback, honoring the
//!   plan's per-edge sources verbatim.
//!
//! The engine is **adaptive**: every execution records a [`CostSample`]
//! (estimate, executor stats, wall time) into a bounded [`CostLog`], and
//! [`QueryEngine::apply_calibration`] least-squares-fits the cost weights
//! from those measurements, closing the estimate→measure→re-fit loop.
//!
//! The contract (Theorem 1/8), now as an engine guarantee: for every query
//! and graph, [`QueryEngine::answer`] equals
//! [`match_pattern`], touching `G`
//! only when the views genuinely cannot cover the query.

use crate::bview::{bmaterialize, BoundedViewExtensions, BoundedViewSet};
use crate::containment::{ContainmentPlan, ViewEdgeRef};
use crate::cost::{CostEstimate, CostLog, CostModel, CostSample, SharedCostLog};
use crate::matchjoin::{run_fixpoint, JoinError, JoinStats, JoinStrategy};
use crate::parallel::{auto_threads, par_fixpoint};
use crate::partial::{best_cover, merged_from_sources, PartialPlan};
use crate::plan::{EdgeSource, ExecStrategy, FallbackReason, QueryPlan, SelectionMode, ViewPlan};
use crate::selection::{select_views_for_workload, WorkloadSelection};
use crate::storage::{graph_fingerprint, BoundedViewCache, ViewCache};
use crate::store::{StoreSnapshot, ViewStore};
use crate::view::{materialize, ViewDef, ViewExtensions, ViewSet};
use gpv_graph::stats::GraphStats;
use gpv_graph::DataGraph;
use gpv_matching::result::{BoundedMatchResult, MatchResult};
use gpv_matching::simulation::match_pattern;
use gpv_pattern::{BoundedPattern, Pattern};
use std::sync::Arc;
use std::time::Instant;

/// Engine tuning knobs.
#[derive(Clone, Debug, Default)]
pub struct EngineConfig {
    /// The cost model the planner consults.
    pub cost: CostModel,
    /// Worker threads for the parallel executor (`0` = auto-detect).
    pub threads: usize,
    /// Pin the chunk size for intra-edge (chunked) parallelism instead of
    /// letting the cost model derive it from the per-edge pair counts.
    /// Only applies when the planner picks (or [`Self::force_exec`] pins)
    /// the parallel executor; `None` = cost-based granularity.
    pub chunk_pairs: Option<usize>,
    /// Pin the view-selection mode instead of costing the alternatives.
    pub force_selection: Option<SelectionMode>,
    /// Pin the execution strategy instead of letting the cost model gate
    /// parallelism.
    pub force_exec: Option<ExecStrategy>,
}

/// Errors from engine planning/execution.
#[derive(Debug)]
pub enum EngineError {
    /// `Qs ⋢ V` and the call does not permit graph access.
    NotContained,
    /// The chosen plan needs the data graph, but none was supplied.
    NeedsGraph,
    /// No bounded views are registered.
    NoBoundedViews,
    /// `Qb ⋢ V` for the bounded view registry.
    BoundedNotContained,
    /// A view registered against a different graph than the one supplied.
    GraphMismatch {
        /// Fingerprint the registry was materialized against.
        expected: u64,
        /// Fingerprint of the graph supplied now.
        actual: u64,
    },
    /// Executor failure (plan/extension mismatch).
    Join(JoinError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::NotContained => {
                write!(f, "query is not contained in the registered views")
            }
            EngineError::NeedsGraph => {
                write!(f, "plan requires graph access but no graph was supplied")
            }
            EngineError::NoBoundedViews => write!(f, "no bounded views registered"),
            EngineError::BoundedNotContained => {
                write!(
                    f,
                    "bounded query is not contained in the registered bounded views"
                )
            }
            EngineError::GraphMismatch { expected, actual } => write!(
                f,
                "views were materialized for graph {expected:#x}, not {actual:#x}"
            ),
            EngineError::Join(e) => write!(f, "join failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<JoinError> for EngineError {
    fn from(e: JoinError) -> Self {
        EngineError::Join(e)
    }
}

/// A costed bounded-query plan (the bounded analogue of
/// [`ViewPlan`]; bounded queries have no hybrid fallback in the paper, so
/// the plan is always views-only or an error).
#[derive(Clone, Debug, PartialEq)]
pub struct BoundedPlan {
    /// Which selection algorithm chose the views.
    pub selection: SelectionMode,
    /// Selected view indices.
    pub views: Vec<usize>,
    /// The λ for `BMatchJoin`.
    pub plan: ContainmentPlan,
    /// Join execution strategy.
    pub exec: ExecStrategy,
    /// Estimated cost.
    pub cost: CostEstimate,
}

/// Registry + planner + executor for answering pattern queries using views.
///
/// ```
/// use gpv_core::engine::QueryEngine;
/// use gpv_core::view::{ViewDef, ViewSet};
/// use gpv_graph::GraphBuilder;
/// use gpv_pattern::PatternBuilder;
///
/// let mut b = GraphBuilder::new();
/// let a = b.add_node(["A"]);
/// let c = b.add_node(["B"]);
/// b.add_edge(a, c);
/// let g = b.build();
///
/// let mut p = PatternBuilder::new();
/// let u = p.node_labeled("A");
/// let v = p.node_labeled("B");
/// p.edge(u, v);
/// let q = p.build().unwrap();
///
/// let views = ViewSet::new(vec![ViewDef::new("v", q.clone())]);
/// let engine = QueryEngine::materialize(views, &g);
/// // Theorem 1: answered from the materialized view, no access to `g`.
/// let r = engine.answer_from_views(&q).unwrap();
/// assert_eq!(r, gpv_matching::simulation::match_pattern(&q, &g));
/// ```
#[derive(Clone, Debug)]
pub struct QueryEngine {
    /// `Arc`-shared with the snapshot/store the engine was built from, so
    /// rebuilding after a store mutation never copies definitions…
    views: Arc<ViewSet>,
    /// …or materialized pairs: the executors only borrow the extensions,
    /// and each per-view extension is itself `Arc`-shared
    /// ([`ViewExtensions`]).
    ext: Arc<ViewExtensions>,
    bounded: Option<(BoundedViewSet, BoundedViewExtensions)>,
    fingerprint: u64,
    graph_stats: Option<GraphStats>,
    config: EngineConfig,
    /// Estimate-vs-actual feedback: every executed plan records a
    /// [`CostSample`] here; [`Self::apply_calibration`] re-fits the cost
    /// weights from it. Shared (`Arc`) so clones — and the serving layer
    /// across engine rebuilds — accumulate into one history.
    cost_log: SharedCostLog,
}

impl QueryEngine {
    /// Materializes `views` over `g` and builds an engine around them.
    pub fn materialize(views: ViewSet, g: &DataGraph) -> Self {
        let ext = materialize(&views, g);
        QueryEngine {
            views: Arc::new(views),
            ext: Arc::new(ext),
            bounded: None,
            fingerprint: graph_fingerprint(g),
            graph_stats: Some(gpv_graph::stats::stats(g)),
            config: EngineConfig::default(),
            cost_log: SharedCostLog::default(),
        }
    }

    /// Wraps an already-materialized (e.g. loaded) view cache.
    pub fn from_cache(cache: ViewCache) -> Self {
        QueryEngine {
            views: Arc::new(cache.views),
            ext: Arc::new(cache.extensions),
            bounded: None,
            fingerprint: cache.graph_fingerprint,
            graph_stats: cache.graph_stats,
            config: EngineConfig::default(),
            cost_log: SharedCostLog::default(),
        }
    }

    /// Builds an engine over a [`StoreSnapshot`] of a sharded
    /// [`ViewStore`] — the serving-layer path:
    /// [`ViewService`](crate::service::ViewService) takes one snapshot per
    /// store version and plans/executes against it lock-free.
    ///
    /// **Zero-copy**: the snapshot's view set and extensions are shared by
    /// `Arc`, so this is O(1) regardless of how many pairs the store
    /// materializes — a rebuild after a single-view insert costs the
    /// snapshot assembly (O(card(V)) handle clones), never a deep copy.
    pub fn from_snapshot(snap: &StoreSnapshot) -> Self {
        QueryEngine {
            views: snap.view_set(),
            ext: snap.extensions(),
            bounded: None,
            fingerprint: snap.graph_fingerprint,
            graph_stats: snap.graph_stats.clone(),
            config: EngineConfig::default(),
            cost_log: SharedCostLog::default(),
        }
    }

    /// Shards this engine's plain-view registry into a concurrent
    /// [`ViewStore`] (ids assigned in registry order).
    pub fn to_store(&self, shards: usize) -> ViewStore {
        ViewStore::from_cache(self.to_cache(), shards)
    }

    /// Extracts a durable [`ViewCache`] snapshot of the plain-view registry
    /// (the extensions stay `Arc`-shared; only handles are cloned).
    pub fn to_cache(&self) -> ViewCache {
        ViewCache {
            graph_fingerprint: self.fingerprint,
            graph_stats: self.graph_stats.clone(),
            views: (*self.views).clone(),
            extensions: (*self.ext).clone(),
        }
    }

    /// Replaces the engine configuration.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the engine configuration in place (e.g. to re-plan the same
    /// registry under different forced modes, without re-materializing).
    pub fn set_config(&mut self, config: EngineConfig) {
        self.config = config;
    }

    /// Shares an external [`CostLog`] handle — the serving layer passes the
    /// same handle into every rebuilt engine so calibration sees the whole
    /// measurement history, not just the current snapshot's.
    pub fn with_cost_log(mut self, log: SharedCostLog) -> Self {
        self.cost_log = log;
        self
    }

    /// A point-in-time copy of the recorded estimate-vs-actual samples.
    pub fn cost_log(&self) -> CostLog {
        self.cost_log.snapshot()
    }

    /// The shared cost-log handle (records survive engine rebuilds when the
    /// caller keeps it).
    pub fn cost_log_handle(&self) -> SharedCostLog {
        self.cost_log.clone()
    }

    /// The active cost model (default or calibrated).
    pub fn cost_model(&self) -> &CostModel {
        &self.config.cost
    }

    /// Least-squares re-fit of the cost weights from the recorded samples
    /// ([`CostModel::calibrate`]), without installing it. `None` when the
    /// log is too small or degenerate.
    pub fn calibrate(&self) -> Option<CostModel> {
        self.config.cost.calibrate(&self.cost_log.snapshot())
    }

    /// Calibrates and installs the fitted weights, so subsequent plans are
    /// priced in measured units. Returns whether a fit was applied.
    pub fn apply_calibration(&mut self) -> bool {
        match self.calibrate() {
            Some(cm) => {
                self.config.cost = cm;
                true
            }
            None => false,
        }
    }

    /// Mean relative estimate error of the *active* weights over the
    /// recorded samples — the calibration-drift gauge (`None` with no
    /// samples). Calibration should drive this down; it creeping back up
    /// means the workload shifted and a re-fit is due.
    pub fn estimate_error(&self) -> Option<f64> {
        self.config
            .cost
            .mean_relative_error(&self.cost_log.snapshot())
    }

    /// Workload-aware view advisor (the ROADMAP's "wire
    /// [`select_views_for_workload`] into the registry"): greedily picks at
    /// most `budget` of the *registered* views maximizing the (weighted)
    /// number of fully-answered workload queries — i.e. which materialized
    /// views earn their keep for this traffic, and which queries would
    /// still fall back to `G`.
    ///
    /// ```
    /// use gpv_core::engine::QueryEngine;
    /// use gpv_core::view::{ViewDef, ViewSet};
    /// use gpv_graph::GraphBuilder;
    /// use gpv_pattern::PatternBuilder;
    ///
    /// let mut b = GraphBuilder::new();
    /// let a = b.add_node(["A"]);
    /// let c = b.add_node(["B"]);
    /// b.add_edge(a, c);
    /// let g = b.build();
    ///
    /// let mut p = PatternBuilder::new();
    /// let u = p.node_labeled("A");
    /// let v = p.node_labeled("B");
    /// p.edge(u, v);
    /// let q = p.build().unwrap();
    ///
    /// let views = ViewSet::new(vec![ViewDef::new("v", q.clone())]);
    /// let engine = QueryEngine::materialize(views, &g);
    /// let advice = engine.advise_views(&[q], 1, None);
    /// assert_eq!(advice.views, vec![0]);
    /// assert!(advice.answered[0]);
    /// ```
    pub fn advise_views(
        &self,
        workload: &[Pattern],
        budget: usize,
        weights: Option<&[f64]>,
    ) -> WorkloadSelection {
        select_views_for_workload(workload, &self.views, budget, weights)
    }

    /// Registers bounded views (materializing their distance index) so
    /// [`Self::answer_bounded`] can serve bounded queries.
    pub fn with_bounded_views(mut self, views: BoundedViewSet, g: &DataGraph) -> Self {
        let ext = bmaterialize(&views, g);
        self.bounded = Some((views, ext));
        self
    }

    /// Wraps a loaded bounded-view cache into the engine.
    pub fn with_bounded_cache(mut self, cache: BoundedViewCache) -> Self {
        self.bounded = Some((cache.views, cache.extensions));
        self
    }

    /// The registered view definitions.
    pub fn views(&self) -> &ViewSet {
        &self.views
    }

    /// The materialized extensions `V(G)` (shared with the snapshot/store
    /// this engine was built from; see [`ViewExtensions`] for the sharing
    /// contract).
    pub fn extensions(&self) -> &ViewExtensions {
        &self.ext
    }

    /// Fingerprint of the graph the registry was materialized against.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Materializes and registers one more view; returns its index.
    /// Fails when `g` is not the graph the registry was built on.
    pub fn add_view(&mut self, def: ViewDef, g: &DataGraph) -> Result<usize, EngineError> {
        let actual = graph_fingerprint(g);
        if actual != self.fingerprint {
            return Err(EngineError::GraphMismatch {
                expected: self.fingerprint,
                actual,
            });
        }
        let single = ViewSet::new(vec![def.clone()]);
        let ext = materialize(&single, g);
        // Copy-on-write: an engine sharing its registry with a snapshot
        // detaches (cloning `Arc` handles, not pairs) before mutating.
        Arc::make_mut(&mut self.ext).push_shared(
            ext.extensions
                .into_iter()
                .next()
                .expect("one view in, one out"),
        );
        Ok(Arc::make_mut(&mut self.views).push(def))
    }

    /// Checks that `g` is the graph this registry was materialized against.
    pub fn validate_graph(&self, g: &DataGraph) -> Result<(), EngineError> {
        let actual = graph_fingerprint(g);
        if actual == self.fingerprint {
            Ok(())
        } else {
            Err(EngineError::GraphMismatch {
                expected: self.fingerprint,
                actual,
            })
        }
    }

    /// Execution-strategy decision from the *per-edge* pair counts of the
    /// merge the plan will read. The total gates parallelism at all
    /// ([`CostModel::parallel_pays`]); the per-edge distribution picks the
    /// granularity ([`CostModel::parallel_granularity`]): per-edge fan-out
    /// caps the speedup at `|Eq|` work units, so with more workers than
    /// edges and a large-enough dominant set the plan carries chunked
    /// granularity instead. [`EngineConfig::chunk_pairs`] pins the chunk
    /// size; [`EngineConfig::force_exec`] pins the whole strategy.
    fn exec_for(&self, per_edge_pairs: &[u64]) -> ExecStrategy {
        if let Some(exec) = self.config.force_exec {
            return self.pin_chunk(exec);
        }
        let threads = if self.config.threads == 0 {
            auto_threads()
        } else {
            self.config.threads
        };
        let total: u64 = per_edge_pairs.iter().sum();
        if self.config.cost.parallel_pays(total, threads) {
            let granularity = match self.config.chunk_pairs {
                Some(chunk_pairs) => crate::plan::ParGranularity::Chunked { chunk_pairs },
                None => self
                    .config
                    .cost
                    .parallel_granularity(per_edge_pairs, threads),
            };
            ExecStrategy::Parallel {
                threads,
                granularity,
            }
        } else {
            ExecStrategy::Sequential(JoinStrategy::RankedBottomUp)
        }
    }

    /// Applies a pinned [`EngineConfig::chunk_pairs`] to a forced parallel
    /// strategy (a forced sequential strategy is returned untouched).
    fn pin_chunk(&self, exec: ExecStrategy) -> ExecStrategy {
        match (exec, self.config.chunk_pairs) {
            (ExecStrategy::Parallel { threads, .. }, Some(chunk_pairs)) => ExecStrategy::Parallel {
                threads,
                granularity: crate::plan::ParGranularity::Chunked { chunk_pairs },
            },
            _ => exec,
        }
    }

    /// The per-edge pair counts a source vector's merge will read: the
    /// pinned covering extension's size for [`EdgeSource::View`] edges,
    /// `0` for graph-sourced ones (their scan size is priced separately).
    /// This is the input to the granularity decision
    /// ([`CostModel::parallel_granularity`] via `exec_for`) — one
    /// definition, shared with the bench so recorded
    /// `granularity_chunk_pairs` series cannot diverge from what the
    /// engine actually picks.
    pub fn per_edge_pairs(&self, sources: &[EdgeSource]) -> Vec<u64> {
        sources
            .iter()
            .map(|s| match s {
                EdgeSource::View(r) => self.ext.edge_set(r.view, r.edge).len() as u64,
                EdgeSource::Graph => 0,
            })
            .collect()
    }

    /// Per-edge cost-based sourcing over a (full or partial) λ: every
    /// covered edge picks the cheaper of its pinned smallest covering
    /// extension and a surgical graph scan
    /// ([`CostModel::edge_prefers_graph`]); uncovered edges scan `G`.
    /// Returns the source vector plus the view pairs read and the number of
    /// graph-sourced edges. With the default unit-free weights every
    /// covered edge stays on its view (the paper's behaviour); calibrated
    /// weights can demote bloated extensions to scans.
    fn source_edges(
        &self,
        q: &Pattern,
        lambda: &[Vec<ViewEdgeRef>],
    ) -> (Vec<EdgeSource>, u64, usize) {
        let cm = &self.config.cost;
        let ne = q.edge_count();
        let mut sources = Vec::with_capacity(lambda.len());
        let mut pairs = 0u64;
        let mut graph_edges = 0usize;
        for entries in lambda {
            match best_cover(entries, &self.ext) {
                Some(r) => {
                    let size = self.ext.edge_set(r.view, r.edge).len() as u64;
                    let prefer_graph = self
                        .graph_stats
                        .as_ref()
                        .is_some_and(|gs| cm.edge_prefers_graph(ne, size, gs));
                    if prefer_graph {
                        sources.push(EdgeSource::Graph);
                        graph_edges += 1;
                    } else {
                        sources.push(EdgeSource::View(r));
                        pairs += size;
                    }
                }
                None => {
                    sources.push(EdgeSource::Graph);
                    graph_edges += 1;
                }
            }
        }
        (sources, pairs, graph_edges)
    }

    /// **Analyze → Select**: produces the costed plan for `q` without
    /// executing anything.
    ///
    /// Under `debug_assertions` every produced plan runs through the
    /// static verifier ([`crate::verify::verify_plan`]) before it is
    /// returned — an unsound plan (unsourced edge, out-of-range or
    /// non-covering view reference, views-only plan touching `G`) is a
    /// planner bug and aborts immediately instead of surfacing later as a
    /// wrong answer.
    pub fn plan(&self, q: &Pattern) -> QueryPlan {
        let plan = self.plan_unverified(q);
        #[cfg(debug_assertions)]
        {
            let errors =
                crate::verify::errors_only(crate::verify::verify_plan(q, &plan, &self.views));
            debug_assert!(
                errors.is_empty(),
                "planner produced an unsound plan for {q:?}: {errors:?}"
            );
        }
        plan
    }

    fn plan_unverified(&self, q: &Pattern) -> QueryPlan {
        let cm = &self.config.cost;
        let zero_stats = GraphStats {
            nodes: 0,
            edges: 0,
            avg_out_degree: 0.0,
            max_out_degree: 0,
            max_in_degree: 0,
            labels: 0,
            alpha: 0.0,
        };
        let gstats = self.graph_stats.clone().unwrap_or(zero_stats);

        if q.edge_count() == 0 {
            return QueryPlan::Direct {
                reason: FallbackReason::NoEdges,
                cost: cm.direct(q, &gstats),
            };
        }
        if self.views.card() == 0 {
            return QueryPlan::Direct {
                reason: FallbackReason::NoViews,
                cost: cm.direct(q, &gstats),
            };
        }

        // One view-match sweep serves containment, partial coverage, and
        // both selection algorithms (they share the table instead of each
        // re-simulating every view against the query).
        let table = crate::minimal::ViewMatchTable::build(q, &self.views);
        match table.full_plan(q) {
            Some(full) => {
                let chosen = self.select(q, full, &table);
                let (sources, view_pairs, graph_edges) = self.source_edges(q, &chosen.plan.lambda);
                if graph_edges == 0 {
                    // Granularity is decided from the per-edge sizes the
                    // merge will actually read (the pinned smallest
                    // covering extensions), not their total: the per-edge
                    // distribution is what bounds per-edge fan-out.
                    let exec = self.exec_for(&self.per_edge_pairs(&sources));
                    return QueryPlan::ViewsOnly(ViewPlan {
                        exec,
                        sources,
                        ..chosen
                    });
                }
                // Calibrated weights priced some covered edges cheaper from
                // G: emit a cost-based hybrid. Always Hybrid (never Direct),
                // even when every edge is demoted — the total-coverage λ
                // rides along so execution can fall back to the views when
                // no graph is supplied ([`QueryPlan::graph_optional`]).
                let mut cost = cm.hybrid_plan(q, view_pairs, graph_edges, &gstats);
                cost.planning = chosen.cost.planning;
                QueryPlan::Hybrid {
                    partial: PartialPlan {
                        lambda: chosen.plan.lambda,
                        uncovered: Vec::new(),
                    },
                    sources,
                    reason: FallbackReason::CostBased,
                    cost,
                }
            }
            None => {
                let partial = table.partial_plan(q);
                let direct_cost = cm.direct(q, &gstats);
                if partial.uncovered.len() == q.edge_count() {
                    return QueryPlan::Direct {
                        reason: FallbackReason::NotContained,
                        cost: direct_cost,
                    };
                }
                let (sources, view_pairs, graph_edges) = self.source_edges(q, &partial.lambda);
                let cost = cm.hybrid_plan(q, view_pairs, graph_edges, &gstats);
                // With known graph stats, take the direct baseline when the
                // covered extensions are so bloated that the hybrid plan
                // costs more than just scanning G (unknown stats keep the
                // views-preferred default).
                if self.graph_stats.is_some() && direct_cost.total < cost.total {
                    QueryPlan::Direct {
                        reason: FallbackReason::NotContained,
                        cost: direct_cost,
                    }
                } else {
                    QueryPlan::Hybrid {
                        partial,
                        sources,
                        reason: FallbackReason::NotContained,
                        cost,
                    }
                }
            }
        }
    }

    /// Costs the `all` / `minimal` / `minimum` selections and returns the
    /// candidate with the cheapest *execution* estimate (the selection
    /// algorithms have already run by comparison time, so their planning
    /// premium is recorded in [`CostEstimate::planning`] rather than
    /// charged to the choice). Ties break toward fewer views. A pinned
    /// [`EngineConfig::force_selection`] computes only the forced candidate
    /// (falling back to the full `all` λ when the pinned algorithm cannot
    /// apply — it always can when containment holds).
    fn select(
        &self,
        q: &Pattern,
        full: ContainmentPlan,
        table: &crate::minimal::ViewMatchTable,
    ) -> ViewPlan {
        use crate::minimal::minimal_from_table;
        use crate::minimum::minimum_from_table;
        let cm = &self.config.cost;
        let placeholder = ExecStrategy::Sequential(JoinStrategy::RankedBottomUp);
        let premium = cm.selection_overhead(q, self.views.card());
        // `sources` and `exec` are placeholders here: `plan` resolves the
        // per-edge sourcing and the executor for the winning candidate only.
        let candidate = |selection: SelectionMode, sel: crate::minimal::Selection| {
            let mut cost = cm.view_plan(q, &sel.plan, &self.ext);
            cost.planning = premium;
            ViewPlan {
                selection,
                views: sel.views,
                plan: sel.plan,
                sources: Vec::new(),
                exec: placeholder,
                cost,
            }
        };
        let all_candidate = |full: ContainmentPlan| ViewPlan {
            selection: SelectionMode::All,
            views: full.used_views.clone(),
            cost: cm.view_plan(q, &full, &self.ext),
            plan: full,
            sources: Vec::new(),
            exec: placeholder,
        };

        match self.config.force_selection {
            Some(SelectionMode::All) => all_candidate(full),
            Some(SelectionMode::Minimal) => match minimal_from_table(q, table) {
                Some(sel) => candidate(SelectionMode::Minimal, sel),
                None => all_candidate(full),
            },
            Some(SelectionMode::Minimum) => match minimum_from_table(q, table) {
                Some(sel) => candidate(SelectionMode::Minimum, sel),
                None => all_candidate(full),
            },
            None => {
                let mut candidates: Vec<ViewPlan> = Vec::with_capacity(3);
                if let Some(sel) = minimal_from_table(q, table) {
                    candidates.push(candidate(SelectionMode::Minimal, sel));
                }
                if let Some(sel) = minimum_from_table(q, table) {
                    candidates.push(candidate(SelectionMode::Minimum, sel));
                }
                candidates.push(all_candidate(full));
                candidates
                    .into_iter()
                    .min_by(|a, b| {
                        a.cost
                            .total
                            .partial_cmp(&b.cost.total)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.views.len().cmp(&b.views.len()))
                    })
                    .expect("at least the `all` candidate exists")
            }
        }
    }

    /// **Execute**: runs a previously-produced plan, honoring its per-edge
    /// [`EdgeSource`]s verbatim (both executors read exactly what the
    /// planner pinned). `g` is required for hybrid/direct plans
    /// ([`QueryPlan::needs_graph`]) and must be the graph this registry was
    /// materialized against — extensions from one graph say nothing about
    /// another (use [`Self::validate_graph`] when in doubt; debug builds
    /// assert it).
    ///
    /// Every execution also records a [`CostSample`] (the plan's estimate,
    /// the executor's [`JoinStats`], and the measured wall time) into the
    /// engine's [`CostLog`] — the feedback half of the calibration loop.
    pub fn execute(
        &self,
        q: &Pattern,
        plan: &QueryPlan,
        g: Option<&DataGraph>,
    ) -> Result<(MatchResult, JoinStats), EngineError> {
        if let Some(g) = g {
            debug_assert!(
                self.validate_graph(g).is_ok(),
                "QueryEngine::execute called with a different graph than the \
                 view registry was materialized against"
            );
        }
        let t0 = Instant::now();
        // The view-source fallback below executes different sources than
        // the plan priced; logging that run would pollute the calibration
        // features (scan terms with no scan executed).
        let mut record_sample = true;
        let out = match plan {
            QueryPlan::ViewsOnly(vp) => {
                let merged = merged_from_sources(q, &vp.sources, &self.ext, None)?;
                match vp.exec {
                    ExecStrategy::Sequential(strategy) => run_fixpoint(q, merged, strategy)?,
                    ExecStrategy::Parallel {
                        threads,
                        granularity,
                    } => par_fixpoint(q, merged, threads, granularity)?,
                }
            }
            QueryPlan::Hybrid {
                partial, sources, ..
            } => {
                let merged = match g {
                    Some(g) => merged_from_sources(q, sources, &self.ext, Some(g))?,
                    // No graph supplied: a *fully-covered* (cost-based)
                    // hybrid falls back to its view sources — demoting an
                    // edge to a scan is a performance preference and must
                    // never cost availability ([`QueryPlan::graph_optional`]).
                    None if partial.is_total() => {
                        record_sample = false;
                        let fallback = crate::partial::sources_from_partial(partial, &self.ext)?;
                        merged_from_sources(q, &fallback, &self.ext, None)?
                    }
                    None => return Err(EngineError::NeedsGraph),
                };
                run_fixpoint(q, merged, JoinStrategy::RankedBottomUp)?
            }
            QueryPlan::Direct { .. } => {
                let g = g.ok_or(EngineError::NeedsGraph)?;
                (match_pattern(q, g), JoinStats::default())
            }
        };
        if record_sample {
            self.cost_log.record(CostSample {
                estimate: *plan.cost(),
                stats: out.1,
                edge_count: q.edge_count(),
                wall_micros: t0.elapsed().as_secs_f64() * 1e6,
            });
        }
        Ok(out)
    }

    /// Plans and executes `q`, allowing graph fallback: equals
    /// `match_pattern(q, g)` on every input (the engine-level Theorem 1
    /// contract, asserted by `tests/engine.rs`). Precondition: `g` is the
    /// graph this registry was materialized against — the contract cannot
    /// hold for a registry built on a different graph (checked by
    /// `debug_assert`; use [`Self::validate_graph`] to check at runtime).
    pub fn answer(&self, q: &Pattern, g: &DataGraph) -> Result<MatchResult, EngineError> {
        let plan = self.plan(q);
        self.execute(q, &plan, Some(g)).map(|(r, _)| r)
    }

    /// Plans and executes `q` strictly from the materialized views — no
    /// graph access anywhere (Theorem 1's headline capability). Errors with
    /// [`EngineError::NotContained`] when `Qs ⋢ V`.
    pub fn answer_from_views(&self, q: &Pattern) -> Result<MatchResult, EngineError> {
        let plan = self.plan(q);
        if plan.graph_optional() {
            // Views-only, or a fully-covered cost-based hybrid (which
            // `execute` serves from its view-source fallback when no graph
            // is supplied).
            self.execute(q, &plan, None).map(|(r, _)| r)
        } else {
            Err(EngineError::NotContained)
        }
    }

    /// Plans a bounded query against the bounded-view registry. Same shape
    /// as `Self::select`: `all` / `minimal` / `minimum` costed by pairs
    /// read (plus the selection premium), cheapest wins, pinned mode
    /// computes only the pinned candidate.
    pub fn plan_bounded(&self, qb: &BoundedPattern) -> Result<BoundedPlan, EngineError> {
        use crate::bcontainment::{bcontain_from_table, bminimal_from_table, bminimum_from_table};
        let (views, ext) = self.bounded.as_ref().ok_or(EngineError::NoBoundedViews)?;
        let cm = &self.config.cost;
        // As in `plan`: one bounded view-match sweep shared by containment
        // and both selection algorithms.
        let table = crate::bcontainment::BTable::build(qb, views);
        let full = bcontain_from_table(qb, &table).ok_or(EngineError::BoundedNotContained)?;

        let placeholder = ExecStrategy::Sequential(JoinStrategy::RankedBottomUp);
        let premium = cm.selection_overhead(qb.pattern(), views.card());
        let cost_of = |plan: &ContainmentPlan, planning: f64| -> CostEstimate {
            let pairs = cm.pairs_read_bounded(&plan.lambda, ext);
            CostEstimate {
                pairs_read: pairs,
                graph_edges_scanned: 0,
                planning,
                total: cm.join_exec_cost(qb.pattern().edge_count(), pairs),
                weights: *cm,
            }
        };
        let candidate = |selection: SelectionMode, sel: crate::minimal::Selection| BoundedPlan {
            selection,
            cost: cost_of(&sel.plan, premium),
            views: sel.views,
            plan: sel.plan,
            exec: placeholder,
        };
        let all_candidate = |full: ContainmentPlan| BoundedPlan {
            selection: SelectionMode::All,
            views: full.used_views.clone(),
            cost: cost_of(&full, 0.0),
            plan: full,
            exec: placeholder,
        };

        let mut chosen = match self.config.force_selection {
            Some(SelectionMode::All) => all_candidate(full),
            Some(SelectionMode::Minimal) => match bminimal_from_table(qb, &table) {
                Some(sel) => candidate(SelectionMode::Minimal, sel),
                None => all_candidate(full),
            },
            Some(SelectionMode::Minimum) => match bminimum_from_table(qb, &table) {
                Some(sel) => candidate(SelectionMode::Minimum, sel),
                None => all_candidate(full),
            },
            None => {
                let mut candidates: Vec<BoundedPlan> = Vec::with_capacity(3);
                if let Some(sel) = bminimal_from_table(qb, &table) {
                    candidates.push(candidate(SelectionMode::Minimal, sel));
                }
                if let Some(sel) = bminimum_from_table(qb, &table) {
                    candidates.push(candidate(SelectionMode::Minimum, sel));
                }
                candidates.push(all_candidate(full));
                candidates
                    .into_iter()
                    .min_by(|a, b| {
                        a.cost
                            .total
                            .partial_cmp(&b.cost.total)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.views.len().cmp(&b.views.len()))
                    })
                    .expect("at least the `all` candidate exists")
            }
        };
        // Per-edge minimum extension sizes (what the bounded merge reads),
        // for the same per-edge-driven granularity decision as `plan`.
        let per_edge: Vec<u64> = chosen
            .plan
            .lambda
            .iter()
            .map(|entries| {
                entries
                    .iter()
                    .map(|r| ext.edge_set(r.view, r.edge).len() as u64)
                    .min()
                    .unwrap_or(0)
            })
            .collect();
        chosen.exec = self.exec_for(&per_edge);
        Ok(chosen)
    }

    /// Plans and executes a bounded query from bounded views only
    /// (Theorem 8 path).
    pub fn answer_bounded(&self, qb: &BoundedPattern) -> Result<BoundedMatchResult, EngineError> {
        use crate::plan::ParGranularity;
        let plan = self.plan_bounded(qb)?;
        let (_, ext) = self.bounded.as_ref().expect("plan_bounded checked");
        let (strategy, threads, granularity) = match plan.exec {
            ExecStrategy::Sequential(s) => (s, 0, ParGranularity::PerEdge),
            ExecStrategy::Parallel {
                threads,
                granularity,
            } => (JoinStrategy::Parallel, threads, granularity),
        };
        let (r, _) = crate::bmatchjoin::bmatch_join_exec(
            qb,
            &plan.plan,
            ext,
            strategy,
            threads,
            granularity,
        )?;
        Ok(r)
    }

    /// Human-readable EXPLAIN of the plan for `q`.
    pub fn explain(&self, q: &Pattern) -> String {
        self.plan(q).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpv_graph::GraphBuilder;
    use gpv_pattern::PatternBuilder;

    fn single(x: &str, y: &str) -> Pattern {
        let mut b = PatternBuilder::new();
        let u = b.node_labeled(x);
        let v = b.node_labeled(y);
        b.edge(u, v);
        b.build().unwrap()
    }

    fn chain3() -> Pattern {
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let bb = b.node_labeled("B");
        let c = b.node_labeled("C");
        b.edge(a, bb);
        b.edge(bb, c);
        b.build().unwrap()
    }

    fn graph() -> DataGraph {
        let mut b = GraphBuilder::new();
        let a1 = b.add_node(["A"]);
        let b1 = b.add_node(["B"]);
        let c1 = b.add_node(["C"]);
        let a2 = b.add_node(["A"]);
        let b2 = b.add_node(["B"]);
        b.add_edge(a1, b1);
        b.add_edge(b1, c1);
        b.add_edge(a2, b2);
        b.build()
    }

    #[test]
    fn views_only_plan_and_answer() {
        let g = graph();
        let q = chain3();
        let views = ViewSet::new(vec![
            ViewDef::new("vab", single("A", "B")),
            ViewDef::new("vbc", single("B", "C")),
        ]);
        let engine = QueryEngine::materialize(views, &g);
        let plan = engine.plan(&q);
        assert!(
            !plan.needs_graph(),
            "contained query must not need G: {plan}"
        );
        let via_engine = engine.answer_from_views(&q).unwrap();
        assert_eq!(via_engine, match_pattern(&q, &g));
        assert_eq!(engine.answer(&q, &g).unwrap(), via_engine);
    }

    #[test]
    fn hybrid_fallback_when_partially_covered() {
        let g = graph();
        let q = chain3();
        let views = ViewSet::new(vec![ViewDef::new("vab", single("A", "B"))]);
        let engine = QueryEngine::materialize(views, &g);
        let plan = engine.plan(&q);
        assert!(matches!(plan, QueryPlan::Hybrid { .. }), "{plan}");
        assert!(engine.answer_from_views(&q).is_err());
        assert_eq!(engine.answer(&q, &g).unwrap(), match_pattern(&q, &g));
    }

    #[test]
    fn direct_fallback_when_nothing_covers() {
        let g = graph();
        let q = chain3();
        let views = ViewSet::new(vec![ViewDef::new("vxy", single("X", "Y"))]);
        let engine = QueryEngine::materialize(views, &g);
        let plan = engine.plan(&q);
        assert!(matches!(plan, QueryPlan::Direct { .. }), "{plan}");
        assert_eq!(engine.answer(&q, &g).unwrap(), match_pattern(&q, &g));
    }

    #[test]
    fn no_views_plans_direct() {
        let g = graph();
        let q = chain3();
        let engine = QueryEngine::materialize(ViewSet::default(), &g);
        let plan = engine.plan(&q);
        assert!(matches!(
            plan,
            QueryPlan::Direct {
                reason: FallbackReason::NoViews,
                ..
            }
        ));
        assert_eq!(engine.answer(&q, &g).unwrap(), match_pattern(&q, &g));
    }

    #[test]
    fn selection_prefers_smaller_read() {
        // One bloated view covers everything; two tight views cover the
        // same edges with smaller extensions. The planner must not pick a
        // selection that reads more pairs than the cheapest one.
        let mut b = GraphBuilder::new();
        let mut last = b.add_node(["A"]);
        for _ in 0..30 {
            let m = b.add_node(["B"]);
            b.add_edge(last, m);
            let c = b.add_node(["C"]);
            b.add_edge(m, c);
            last = b.add_node(["A"]);
        }
        let g = b.build();
        let q = chain3();
        let views = ViewSet::new(vec![
            ViewDef::new("vall", chain3()),
            ViewDef::new("vab", single("A", "B")),
            ViewDef::new("vbc", single("B", "C")),
        ]);
        let engine = QueryEngine::materialize(views, &g);
        let QueryPlan::ViewsOnly(vp) = engine.plan(&q) else {
            panic!("contained");
        };
        // Whatever mode won, its pairs_read is the minimum of the three.
        let cm = CostModel::default();
        let full = crate::containment::contain(&q, engine.views()).unwrap();
        let all_pairs = cm.pairs_read(&full.lambda, engine.extensions());
        assert!(vp.cost.pairs_read <= all_pairs);
        assert_eq!(engine.answer(&q, &g).unwrap(), match_pattern(&q, &g));
    }

    #[test]
    fn forced_selection_and_exec_respected() {
        let g = graph();
        let q = chain3();
        let views = ViewSet::new(vec![
            ViewDef::new("vab", single("A", "B")),
            ViewDef::new("vbc", single("B", "C")),
        ]);
        let forced = ExecStrategy::Parallel {
            threads: 2,
            granularity: crate::plan::ParGranularity::PerEdge,
        };
        let engine = QueryEngine::materialize(views, &g).with_config(EngineConfig {
            force_selection: Some(SelectionMode::Minimum),
            force_exec: Some(forced),
            ..EngineConfig::default()
        });
        let QueryPlan::ViewsOnly(vp) = engine.plan(&q) else {
            panic!("contained");
        };
        assert_eq!(vp.selection, SelectionMode::Minimum);
        assert_eq!(vp.exec, forced);
        assert_eq!(engine.answer(&q, &g).unwrap(), match_pattern(&q, &g));
    }

    /// A pinned `chunk_pairs` turns a forced (or cost-chosen) parallel
    /// strategy chunked, and the chunked plan answers identically.
    #[test]
    fn pinned_chunk_pairs_yields_chunked_granularity() {
        use crate::plan::ParGranularity;
        let g = graph();
        let q = chain3();
        let views = ViewSet::new(vec![
            ViewDef::new("vab", single("A", "B")),
            ViewDef::new("vbc", single("B", "C")),
        ]);
        let engine = QueryEngine::materialize(views, &g).with_config(EngineConfig {
            chunk_pairs: Some(2),
            force_exec: Some(ExecStrategy::Parallel {
                threads: 4,
                granularity: ParGranularity::PerEdge,
            }),
            ..EngineConfig::default()
        });
        let QueryPlan::ViewsOnly(vp) = engine.plan(&q) else {
            panic!("contained");
        };
        assert_eq!(
            vp.exec,
            ExecStrategy::Parallel {
                threads: 4,
                granularity: ParGranularity::Chunked { chunk_pairs: 2 },
            }
        );
        assert_eq!(engine.answer_from_views(&q).unwrap(), match_pattern(&q, &g));
    }

    #[test]
    fn add_view_rejects_other_graph() {
        let g = graph();
        let mut engine = QueryEngine::materialize(ViewSet::default(), &g);
        let mut b = GraphBuilder::new();
        let x = b.add_node(["X"]);
        let y = b.add_node(["Y"]);
        b.add_edge(x, y);
        let other = b.build();
        assert!(matches!(
            engine.add_view(ViewDef::new("v", single("X", "Y")), &other),
            Err(EngineError::GraphMismatch { .. })
        ));
        assert!(engine
            .add_view(ViewDef::new("vab", single("A", "B")), &g)
            .is_ok());
        assert_eq!(engine.views().card(), 1);
        assert_eq!(engine.extensions().extensions.len(), 1);
    }

    /// `to_store(0)` must hand back a usable (1-shard) store, not one that
    /// panics with a division by zero on its first id hash.
    #[test]
    fn to_store_zero_shards_clamps() {
        let g = graph();
        let views = ViewSet::new(vec![ViewDef::new("vab", single("A", "B"))]);
        let engine = QueryEngine::materialize(views, &g);
        let store = engine.to_store(0);
        assert_eq!(store.shard_count(), 1);
        assert_eq!(store.len(), 1);
        let revived = QueryEngine::from_snapshot(&store.snapshot());
        let q = single("A", "B");
        assert_eq!(
            revived.answer_from_views(&q).unwrap(),
            engine.answer_from_views(&q).unwrap()
        );
    }

    #[test]
    fn cache_roundtrip_preserves_answers() {
        let g = graph();
        let q = chain3();
        let views = ViewSet::new(vec![
            ViewDef::new("vab", single("A", "B")),
            ViewDef::new("vbc", single("B", "C")),
        ]);
        let engine = QueryEngine::materialize(views, &g);
        let revived = QueryEngine::from_cache(engine.to_cache());
        assert_eq!(
            revived.answer_from_views(&q).unwrap(),
            engine.answer_from_views(&q).unwrap()
        );
    }

    #[test]
    fn bounded_planning_and_answer() {
        use crate::bview::BoundedViewDef;
        use gpv_matching::bounded::bmatch_pattern;
        let g = graph();
        let mk = |x: &str, y: &str, k: u32| {
            let mut b = PatternBuilder::new();
            let u = b.node_labeled(x);
            let v = b.node_labeled(y);
            b.edge_bounded(u, v, k);
            b.build_bounded().unwrap()
        };
        let qb = mk("A", "C", 2);
        let views = BoundedViewSet::new(vec![BoundedViewDef::new("vac", mk("A", "C", 2))]);
        let engine = QueryEngine::materialize(ViewSet::default(), &g).with_bounded_views(views, &g);
        let r = engine.answer_bounded(&qb).unwrap();
        assert_eq!(r, bmatch_pattern(&qb, &g));
    }

    #[test]
    fn explain_mentions_stages() {
        let g = graph();
        let q = chain3();
        let views = ViewSet::new(vec![
            ViewDef::new("vab", single("A", "B")),
            ViewDef::new("vbc", single("B", "C")),
        ]);
        let engine = QueryEngine::materialize(views, &g);
        let text = engine.explain(&q);
        assert!(text.contains("views-only"), "{text}");
        assert!(text.contains("select"), "{text}");
    }
}
