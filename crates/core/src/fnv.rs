//! The one FNV-1a implementation shared by every fingerprint in this crate
//! (graph, view-set, shard routing, query). Non-cryptographic by design —
//! collision-sensitive consumers must pair the hash with an equality check
//! (see [`crate::service`]'s plan cache).

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a hasher.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    pub(crate) fn new() -> Self {
        Fnv1a(OFFSET)
    }

    /// Mixes raw bytes (one FNV round per byte).
    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(PRIME);
        }
    }

    /// Mixes a whole `u64` in one round (the historical
    /// [`graph_fingerprint`](crate::storage::graph_fingerprint) granularity,
    /// kept so existing cache fingerprints stay valid).
    pub(crate) fn write_u64_coarse(&mut self, x: u64) {
        self.0 = (self.0 ^ x).wrapping_mul(PRIME);
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// One-shot byte-wise FNV-1a.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}
