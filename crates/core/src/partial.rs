//! Partial containment and hybrid evaluation (extension).
//!
//! The paper's future-work list asks for "efficient algorithms for computing
//! maximally contained rewriting using views, when a pattern query is not
//! contained in available views". This module provides the evaluation-side
//! counterpart: when `Qs ⋢ V`, [`partial_contain`] still extracts the
//! *maximal coverage* — the covered query edges with their λ entries — and
//! [`hybrid_match_join`] answers the query by initializing covered edges
//! from the cached extensions and only the uncovered edges from `G`.
//!
//! The access to `G` is surgical: for an uncovered edge `(u, u')` only the
//! candidate pairs satisfying the two node conditions are scanned — exactly
//! the per-edge work `Match` would do, but limited to the uncovered part.
//! When every edge is covered this degenerates to `MatchJoin` (no `G`
//! access); when nothing is covered it degenerates to `Match`.

use std::borrow::Cow;

use crate::containment::{ContainmentPlan, ViewEdgeRef};
use crate::matchjoin::{match_join_with, JoinError, JoinStats, JoinStrategy, MergedSets};
use crate::plan::EdgeSource;
use crate::view::{ViewExtensions, ViewSet};
use gpv_graph::{DataGraph, NodeId};
use gpv_matching::pattern_sim::simulate_pattern;
use gpv_matching::result::MatchResult;
use gpv_pattern::{Pattern, PatternEdgeId};

/// Maximal-coverage result: which query edges the views can supply.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PartialPlan {
    /// λ entries per query edge (empty = uncovered).
    pub lambda: Vec<Vec<ViewEdgeRef>>,
    /// Query edges with no covering view edge.
    pub uncovered: Vec<PatternEdgeId>,
}

impl PartialPlan {
    /// Whether the coverage is total (equivalent to `contain` succeeding).
    pub fn is_total(&self) -> bool {
        self.uncovered.is_empty()
    }

    /// Converts to a full [`ContainmentPlan`] when total.
    pub fn into_plan(self) -> Option<ContainmentPlan> {
        if !self.is_total() {
            return None;
        }
        let mut used: Vec<usize> = self
            .lambda
            .iter()
            .flat_map(|v| v.iter().map(|r| r.view))
            .collect();
        used.sort_unstable();
        used.dedup();
        Some(ContainmentPlan {
            lambda: self.lambda,
            used_views: used,
        })
    }
}

/// Computes the maximal coverage of `q` by `views` (never fails — an empty
/// view set yields all edges uncovered).
pub fn partial_contain(q: &Pattern, views: &ViewSet) -> PartialPlan {
    let ne = q.edge_count();
    let mut lambda: Vec<Vec<ViewEdgeRef>> = vec![Vec::new(); ne];
    for (vi, vdef) in views.iter() {
        let Some(sim) = simulate_pattern(&vdef.pattern, q) else {
            continue;
        };
        for (vei, qedges) in sim.edge_matches.iter().enumerate() {
            for &qe in qedges {
                lambda[qe.index()].push(ViewEdgeRef {
                    view: vi,
                    edge: PatternEdgeId(vei as u32),
                });
            }
        }
    }
    let uncovered = (0..ne)
        .filter(|&e| lambda[e].is_empty())
        .map(|e| PatternEdgeId(e as u32))
        .collect();
    PartialPlan { lambda, uncovered }
}

/// The surgical per-edge scan of `g` for one query edge `(u, t)`: exactly
/// the candidate pairs satisfying the two node conditions — the per-edge
/// work `Match` would do, limited to this edge.
pub(crate) fn scan_edge_pairs(
    q: &Pattern,
    e: PatternEdgeId,
    g: &DataGraph,
) -> Vec<(NodeId, NodeId)> {
    let (u, t) = q.edge(e);
    let pu = q.pred(u).resolve(g);
    let pt = q.pred(t).resolve(g);
    let mut set = Vec::new();
    for v in g.nodes() {
        if !pu.satisfied_by(g, v) {
            continue;
        }
        for &w in g.out_neighbors(v) {
            if pt.satisfied_by(g, w) {
                set.push((v, w));
            }
        }
    }
    set
}

/// The smallest covering extension among a λ entry's candidates — the one
/// the witness-narrowing merge reads, and therefore the one the planner
/// pins into [`EdgeSource::View`] (same tie-break: first minimum).
pub(crate) fn best_cover(entries: &[ViewEdgeRef], ext: &ViewExtensions) -> Option<ViewEdgeRef> {
    entries
        .iter()
        .min_by_key(|r| ext.edge_set(r.view, r.edge).len())
        .copied()
}

/// Derives the per-edge source vector a partial λ implies: covered edges
/// read their smallest covering extension, uncovered edges scan `G`.
/// (The engine's cost-based planner may instead emit `Graph` for a
/// *covered* edge when calibrated weights price the scan cheaper.)
pub fn sources_from_partial(
    partial: &PartialPlan,
    ext: &ViewExtensions,
) -> Result<Vec<EdgeSource>, JoinError> {
    partial
        .lambda
        .iter()
        .map(|entries| {
            if entries.is_empty() {
                return Ok(EdgeSource::Graph);
            }
            for r in entries {
                if r.view >= ext.extensions.len() {
                    return Err(JoinError::ViewOutOfRange(r.view));
                }
            }
            Ok(EdgeSource::View(
                best_cover(entries, ext).expect("nonempty entries"),
            ))
        })
        .collect()
}

/// The source-honoring merge step: builds each edge's initial match set
/// from exactly the source the plan pinned — the materialized extension for
/// [`EdgeSource::View`], a surgical scan for [`EdgeSource::Graph`]. Both
/// the sequential and the parallel executor consume this, so the planner's
/// per-edge decision is what actually runs. `g` may be `None` only for
/// all-view source vectors ([`JoinError::GraphRequired`] otherwise).
pub(crate) fn merged_from_sources<'a>(
    q: &Pattern,
    sources: &[EdgeSource],
    ext: &'a ViewExtensions,
    g: Option<&DataGraph>,
) -> Result<MergedSets<'a>, JoinError> {
    if q.edge_count() == 0 {
        return Err(JoinError::NoEdges);
    }
    if sources.len() != q.edge_count() {
        return Err(JoinError::PlanMismatch);
    }
    let mut merged: MergedSets<'a> = Vec::with_capacity(q.edge_count());
    for (ei, source) in sources.iter().enumerate() {
        match source {
            EdgeSource::View(r) => {
                if r.view >= ext.extensions.len() {
                    return Err(JoinError::ViewOutOfRange(r.view));
                }
                // Arena slices are canonical by construction (`freeze`
                // sorts + dedups), so the merge borrows them directly —
                // zero per-pair copies on the view-covered edges.
                merged.push(Cow::Borrowed(ext.edge_set(r.view, r.edge)));
            }
            EdgeSource::Graph => {
                let g = g.ok_or(JoinError::GraphRequired)?;
                merged.push(Cow::Owned(scan_edge_pairs(q, PatternEdgeId(ei as u32), g)));
            }
        }
    }
    Ok(merged)
}

/// Answers `q` using views for the covered edges and a surgical scan of `g`
/// for the uncovered ones. Equivalent to `Match(q, g)` on every graph (the
/// property tests assert it), with `G` access proportional to the uncovered
/// part only.
pub fn hybrid_match_join(
    q: &Pattern,
    partial: &PartialPlan,
    ext: &ViewExtensions,
    g: &DataGraph,
) -> Result<(MatchResult, JoinStats), JoinError> {
    if q.edge_count() == 0 {
        return Err(JoinError::NoEdges);
    }
    if partial.lambda.len() != q.edge_count() {
        return Err(JoinError::PlanMismatch);
    }
    let sources = sources_from_partial(partial, ext)?;
    let merged = merged_from_sources(q, &sources, ext, Some(g))?;
    // Same refinement as MatchJoin from here on.
    crate::matchjoin::run_fixpoint_public(q, merged)
}

/// Convenience: full pipeline — maximal coverage, then hybrid evaluation.
pub fn answer_with_partial_views(
    q: &Pattern,
    views: &ViewSet,
    ext: &ViewExtensions,
    g: &DataGraph,
) -> Result<MatchResult, JoinError> {
    let partial = partial_contain(q, views);
    if partial.is_total() {
        let plan = partial.clone().into_plan().expect("total");
        return match_join_with(q, &plan, ext, JoinStrategy::RankedBottomUp).map(|(r, _)| r);
    }
    hybrid_match_join(q, &partial, ext, g).map(|(r, _)| r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{materialize, ViewDef};
    use gpv_graph::GraphBuilder;
    use gpv_matching::simulation::match_pattern;
    use gpv_pattern::PatternBuilder;

    fn single(x: &str, y: &str) -> Pattern {
        let mut b = PatternBuilder::new();
        let u = b.node_labeled(x);
        let v = b.node_labeled(y);
        b.edge(u, v);
        b.build().unwrap()
    }

    fn chain3() -> Pattern {
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let bb = b.node_labeled("B");
        let c = b.node_labeled("C");
        b.edge(a, bb);
        b.edge(bb, c);
        b.build().unwrap()
    }

    fn graph() -> gpv_graph::DataGraph {
        let mut b = GraphBuilder::new();
        let a1 = b.add_node(["A"]);
        let b1 = b.add_node(["B"]);
        let c1 = b.add_node(["C"]);
        let a2 = b.add_node(["A"]);
        let b2 = b.add_node(["B"]);
        b.add_edge(a1, b1);
        b.add_edge(b1, c1);
        b.add_edge(a2, b2); // b2 has no C successor
        b.build()
    }

    #[test]
    fn coverage_reported() {
        let q = chain3();
        // Only the (A,B) view is cached.
        let views = ViewSet::new(vec![ViewDef::new("vab", single("A", "B"))]);
        let p = partial_contain(&q, &views);
        assert!(!p.is_total());
        assert_eq!(p.uncovered, vec![PatternEdgeId(1)]);
        assert!(!p.lambda[0].is_empty());
        assert!(p.into_plan().is_none());
    }

    #[test]
    fn hybrid_equals_match() {
        let q = chain3();
        let g = graph();
        let views = ViewSet::new(vec![ViewDef::new("vab", single("A", "B"))]);
        let ext = materialize(&views, &g);
        let p = partial_contain(&q, &views);
        let (r, _) = hybrid_match_join(&q, &p, &ext, &g).unwrap();
        assert_eq!(r, match_pattern(&q, &g));
        // And the pruning worked: a2/b2 must be gone.
        assert_eq!(r.node_set(gpv_pattern::PatternNodeId(0)).len(), 1);
    }

    #[test]
    fn total_coverage_degenerates_to_matchjoin() {
        let q = chain3();
        let g = graph();
        let views = ViewSet::new(vec![
            ViewDef::new("vab", single("A", "B")),
            ViewDef::new("vbc", single("B", "C")),
        ]);
        let ext = materialize(&views, &g);
        let p = partial_contain(&q, &views);
        assert!(p.is_total());
        let r = answer_with_partial_views(&q, &views, &ext, &g).unwrap();
        assert_eq!(r, match_pattern(&q, &g));
    }

    #[test]
    fn no_views_degenerates_to_match() {
        let q = chain3();
        let g = graph();
        let views = ViewSet::default();
        let ext = materialize(&views, &g);
        let p = partial_contain(&q, &views);
        assert_eq!(p.uncovered.len(), 2);
        let (r, _) = hybrid_match_join(&q, &p, &ext, &g).unwrap();
        assert_eq!(r, match_pattern(&q, &g));
    }

    #[test]
    fn empty_result_flows_through() {
        let q = chain3();
        let mut b = GraphBuilder::new();
        let x = b.add_node(["X"]);
        let y = b.add_node(["Y"]);
        b.add_edge(x, y);
        let g = b.build();
        let views = ViewSet::new(vec![ViewDef::new("vab", single("A", "B"))]);
        let ext = materialize(&views, &g);
        let p = partial_contain(&q, &views);
        let (r, _) = hybrid_match_join(&q, &p, &ext, &g).unwrap();
        assert!(r.is_empty());
    }
}
