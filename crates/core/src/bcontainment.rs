//! Bounded pattern containment: `Bcontain`, `Bminimal`, `Bminimum`
//! (paper Section VI-B).
//!
//! View matches for bounded patterns treat `Qb` as a weighted data graph
//! (edge weight = `fe(e)`). A view `V` is first simulated into weighted `Qb`
//! (node-level bounded simulation over weighted distances); the view match
//! `M^Qb_V` then contains every query edge `e = (u, u')` such that some view
//! edge `eV = (x, x')` has `u ∈ sim(x)`, `u' ∈ sim(x')` and `fe(e)` within
//! `eV`'s bound.
//!
//! The extra `fe(e) ≤ k` requirement (DESIGN.md §S4) keeps coverage *sound*:
//! a match `(v, v')` of `e` in `G` only guarantees `dist_G(v, v') ≤ fe(e)`,
//! so a view edge with a smaller bound — even one admitted by a shorter
//! alternative path in `Qb` — need not contain it. The criteria coincide
//! whenever the direct edge is a weighted shortest path, which holds in all
//! the paper's examples (e.g. Example 9 rejects V7 because
//! `dist(C, D) = 3 > 2`).
//!
//! Complexity: `O(|Qb|²|V|)` for `Bcontain`/`Bminimal` (Theorem 10), up from
//! quadratic in the unweighted case.

use crate::bview::BoundedViewSet;
use crate::containment::{ContainmentPlan, ViewEdgeRef};
use crate::minimal::Selection;
use gpv_matching::bounded_pattern_sim::simulate_bounded_pattern;
use gpv_pattern::{BoundedPattern, PatternEdgeId};

/// The bounded view match `M^Qb_V`: covered query edges, with the witnessing
/// λ entries.
fn bounded_view_match_entries(
    view: &BoundedPattern,
    qb: &BoundedPattern,
) -> Vec<(PatternEdgeId, PatternEdgeId)> {
    let Some(cand) = simulate_bounded_pattern(view, qb) else {
        return Vec::new();
    };
    let qp = qb.pattern();
    let vp = view.pattern();
    let mut entries = Vec::new();
    for (vei, &(x, x2)) in vp.edges().iter().enumerate() {
        let vbound = view.bound(PatternEdgeId(vei as u32));
        for (qei, &(u, u2)) in qp.edges().iter().enumerate() {
            let qe = PatternEdgeId(qei as u32);
            if cand[x.index()][u.index()]
                && cand[x2.index()][u2.index()]
                && qb.bound(qe).within(vbound)
            {
                entries.push((qe, PatternEdgeId(vei as u32)));
            }
        }
    }
    entries
}

/// `M^Qb_V` as a sorted set of covered query edges.
pub fn bounded_view_match(view: &BoundedPattern, qb: &BoundedPattern) -> Vec<PatternEdgeId> {
    let mut edges: Vec<PatternEdgeId> = bounded_view_match_entries(view, qb)
        .into_iter()
        .map(|(qe, _)| qe)
        .collect();
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// Per-view match table shared by the three algorithms (and built once per
/// query by the engine's bounded planner).
pub(crate) struct BTable {
    covers: Vec<Vec<PatternEdgeId>>,
    entries: Vec<Vec<(PatternEdgeId, ViewEdgeRef)>>,
}

impl BTable {
    pub(crate) fn build(qb: &BoundedPattern, views: &BoundedViewSet) -> Self {
        let mut covers = Vec::with_capacity(views.card());
        let mut entries = Vec::with_capacity(views.card());
        for (vi, vdef) in views.iter() {
            let es = bounded_view_match_entries(&vdef.pattern, qb);
            let mut cover: Vec<PatternEdgeId> = es.iter().map(|&(qe, _)| qe).collect();
            cover.sort_unstable();
            cover.dedup();
            covers.push(cover);
            entries.push(
                es.into_iter()
                    .map(|(qe, ve)| (qe, ViewEdgeRef { view: vi, edge: ve }))
                    .collect(),
            );
        }
        BTable { covers, entries }
    }

    fn plan_for(&self, qb: &BoundedPattern, selected: &[usize]) -> Option<ContainmentPlan> {
        let mut lambda: Vec<Vec<ViewEdgeRef>> = vec![Vec::new(); qb.pattern().edge_count()];
        for &vi in selected {
            for &(qe, r) in &self.entries[vi] {
                lambda[qe.index()].push(r);
            }
        }
        if lambda.iter().any(Vec::is_empty) {
            return None;
        }
        let mut used = selected.to_vec();
        used.sort_unstable();
        used.dedup();
        Some(ContainmentPlan {
            lambda,
            used_views: used,
        })
    }
}

/// `Bcontain`: decides `Qb ⊑ V` (Proposition 11) and returns λ on success.
pub fn bcontain(qb: &BoundedPattern, views: &BoundedViewSet) -> Option<ContainmentPlan> {
    bcontain_from_table(qb, &BTable::build(qb, views))
}

/// [`bcontain`] over an already-built table.
pub(crate) fn bcontain_from_table(qb: &BoundedPattern, table: &BTable) -> Option<ContainmentPlan> {
    let ne = qb.pattern().edge_count();
    let mut covered = vec![false; ne];
    for cover in &table.covers {
        for e in cover {
            covered[e.index()] = true;
        }
    }
    if covered.iter().all(|&c| c) {
        table.plan_for(qb, &(0..table.covers.len()).collect::<Vec<_>>())
    } else {
        None
    }
}

/// `Bminimal`: minimal containing subset (Theorem 10(2)); mirrors `minimal`.
pub fn bminimal(qb: &BoundedPattern, views: &BoundedViewSet) -> Option<Selection> {
    bminimal_from_table(qb, &BTable::build(qb, views))
}

/// [`bminimal`] over an already-built table.
pub(crate) fn bminimal_from_table(qb: &BoundedPattern, table: &BTable) -> Option<Selection> {
    let ne = qb.pattern().edge_count();
    let view_count = table.covers.len();

    let mut selected: Vec<usize> = Vec::new();
    let mut covered = vec![false; ne];
    let mut covered_count = 0usize;
    let mut m: Vec<Vec<usize>> = vec![Vec::new(); ne];
    for (vi, cover) in table.covers.iter().enumerate() {
        if !cover.iter().any(|e| !covered[e.index()]) {
            continue;
        }
        selected.push(vi);
        for e in cover {
            if !covered[e.index()] {
                covered[e.index()] = true;
                covered_count += 1;
            }
            m[e.index()].push(vi);
        }
        if covered_count == ne {
            break;
        }
    }
    if covered_count != ne {
        return None;
    }

    let mut kept = vec![true; view_count];
    for &vj in selected.clone().iter() {
        let needed = table.covers[vj].iter().any(|e| {
            m[e.index()].iter().filter(|&&v| kept[v]).count() == 1
                && m[e.index()].iter().any(|&v| v == vj && kept[v])
        });
        if !needed {
            kept[vj] = false;
        }
    }
    let final_views: Vec<usize> = selected.into_iter().filter(|&v| kept[v]).collect();
    let plan = table.plan_for(qb, &final_views).expect("still covers");
    Some(Selection {
        views: final_views,
        plan,
    })
}

/// `Bminimum`: greedy set-cover approximation of the minimum containing
/// subset (Theorem 10(3): NP-complete exactly, `O(log |Ep|)`-approximable).
pub fn bminimum(qb: &BoundedPattern, views: &BoundedViewSet) -> Option<Selection> {
    bminimum_from_table(qb, &BTable::build(qb, views))
}

/// [`bminimum`] over an already-built table.
pub(crate) fn bminimum_from_table(qb: &BoundedPattern, table: &BTable) -> Option<Selection> {
    let ne = qb.pattern().edge_count();
    let mut covered = vec![false; ne];
    let mut covered_count = 0usize;
    let mut available: Vec<usize> = (0..table.covers.len()).collect();
    let mut selected = Vec::new();

    while covered_count < ne {
        let (best_pos, best_gain) = available
            .iter()
            .enumerate()
            .map(|(pos, &vi)| {
                (
                    pos,
                    table.covers[vi]
                        .iter()
                        .filter(|e| !covered[e.index()])
                        .count(),
                )
            })
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))?;
        if best_gain == 0 {
            return None;
        }
        let vi = available.swap_remove(best_pos);
        selected.push(vi);
        for e in &table.covers[vi] {
            if !covered[e.index()] {
                covered[e.index()] = true;
                covered_count += 1;
            }
        }
    }
    selected.sort_unstable();
    let plan = table.plan_for(qb, &selected).expect("covers");
    Some(Selection {
        views: selected,
        plan,
    })
}

/// Bounded query containment `Qb1 ⊑ Qb2` (single-view special case).
pub fn bounded_query_contained(q1: &BoundedPattern, q2: &BoundedPattern) -> bool {
    let vs = BoundedViewSet::new(vec![crate::bview::BoundedViewDef::new("q2", q2.clone())]);
    bcontain(q1, &vs).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bview::BoundedViewDef;
    use gpv_pattern::{PatternBuilder, PatternNodeId};

    /// A bounded query in the spirit of Fig. 6: A -\[3\]-> B, A -\[3\]-> C,
    /// B -\[3\]-> D, C -\[3\]-> D, B -\[2\]-> E.
    fn qb() -> BoundedPattern {
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let bb = b.node_labeled("B");
        let c = b.node_labeled("C");
        let d = b.node_labeled("D");
        let e = b.node_labeled("E");
        b.edge_bounded(a, bb, 3);
        b.edge_bounded(a, c, 3);
        b.edge_bounded(bb, d, 3);
        b.edge_bounded(c, d, 3);
        b.edge_bounded(bb, e, 2);
        b.build_bounded().unwrap()
    }

    fn bview(edges: &[(&str, &str, Option<u32>)]) -> BoundedViewDef {
        let mut b = PatternBuilder::new();
        let mut ids = std::collections::HashMap::new();
        for &(x, y, _) in edges {
            ids.entry(x.to_string())
                .or_insert_with(|| b.node_labeled(x));
            ids.entry(y.to_string())
                .or_insert_with(|| b.node_labeled(y));
        }
        for &(x, y, k) in edges {
            match k {
                Some(k) => b.edge_bounded(ids[x], ids[y], k),
                None => b.edge_unbounded(ids[x], ids[y]),
            }
        }
        BoundedViewDef::new("V", b.build_bounded().unwrap())
    }

    #[test]
    fn covers_with_looser_bounds() {
        // Views with bounds ≥ the query's cover it.
        let views = BoundedViewSet::new(vec![
            bview(&[("A", "B", Some(3)), ("A", "C", Some(4))]),
            bview(&[("B", "D", Some(3)), ("C", "D", Some(5))]),
            bview(&[("B", "E", Some(2))]),
        ]);
        let plan = bcontain(&qb(), &views).expect("contained");
        assert_eq!(plan.used_views, vec![0, 1, 2]);
    }

    #[test]
    fn tighter_view_bound_does_not_cover() {
        // (B,E) has fe = 2; a view with bound 1 cannot cover it.
        let views = BoundedViewSet::new(vec![
            bview(&[("A", "B", Some(3)), ("A", "C", Some(3))]),
            bview(&[("B", "D", Some(3)), ("C", "D", Some(3))]),
            bview(&[("B", "E", Some(1))]),
        ]);
        assert!(bcontain(&qb(), &views).is_none());
    }

    #[test]
    fn example_9_style_distance_rejection() {
        // View V7-style: C -[2]-> D, but the query's C-D edge has weight 3:
        // M^Qb_V excludes (C,D).
        let v = bview(&[("C", "D", Some(2))]);
        let m = bounded_view_match(&v.pattern, &qb());
        assert!(m.is_empty(), "distance from C to D in Qb is 3 > 2");
        // With bound 3 it covers.
        let v = bview(&[("C", "D", Some(3))]);
        let m = bounded_view_match(&v.pattern, &qb());
        let cd = qb()
            .pattern()
            .edge_id(PatternNodeId(2), PatternNodeId(3))
            .unwrap();
        assert_eq!(m, vec![cd]);
    }

    #[test]
    fn star_view_edges_cover_everything_reachable() {
        let views = BoundedViewSet::new(vec![
            bview(&[("A", "B", None), ("A", "C", None)]),
            bview(&[("B", "D", None), ("C", "D", None), ("B", "E", None)]),
        ]);
        assert!(bcontain(&qb(), &views).is_some());
    }

    #[test]
    fn bminimal_removes_redundant() {
        let views = BoundedViewSet::new(vec![
            bview(&[("C", "D", Some(3))]), // redundant with the big view
            bview(&[("A", "B", Some(3)), ("A", "C", Some(3))]),
            bview(&[("B", "D", Some(3)), ("C", "D", Some(3))]),
            bview(&[("B", "E", Some(2))]),
        ]);
        let sel = bminimal(&qb(), &views).expect("contained");
        assert_eq!(sel.views, vec![1, 2, 3], "V1 is redundant");
    }

    #[test]
    fn bminimum_prefers_big_covers() {
        let views = BoundedViewSet::new(vec![
            bview(&[("A", "B", Some(3))]),
            bview(&[("A", "C", Some(3))]),
            bview(&[("B", "D", Some(3))]),
            bview(&[("C", "D", Some(3))]),
            bview(&[("B", "E", Some(2))]),
            // One view covering four edges.
            bview(&[
                ("A", "B", Some(3)),
                ("A", "C", Some(3)),
                ("B", "D", Some(3)),
                ("C", "D", Some(3)),
            ]),
        ]);
        let min = bminimum(&qb(), &views).expect("contained");
        assert_eq!(min.views, vec![4, 5], "big view + (B,E)");
        let mnl = bminimal(&qb(), &views).expect("contained");
        assert!(min.views.len() <= mnl.views.len());
    }

    #[test]
    fn plain_case_reduces_to_unbounded_containment() {
        use crate::containment::contain;
        use crate::view::{ViewDef, ViewSet};
        // With all bounds = 1, bcontain must agree with contain.
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let bb = b.node_labeled("B");
        let c = b.node_labeled("C");
        b.edge(a, bb);
        b.edge(bb, c);
        let q = b.build().unwrap();

        let mk = |edges: &[(&str, &str)]| {
            let mut b = PatternBuilder::new();
            let mut ids = std::collections::HashMap::new();
            for &(x, y) in edges {
                ids.entry(x.to_string())
                    .or_insert_with(|| b.node_labeled(x));
                ids.entry(y.to_string())
                    .or_insert_with(|| b.node_labeled(y));
            }
            for &(x, y) in edges {
                b.edge(ids[x], ids[y]);
            }
            b.build().unwrap()
        };
        let v_ab = mk(&[("A", "B")]);
        let v_bc = mk(&[("B", "C")]);

        let plain = ViewSet::new(vec![
            ViewDef::new("V1", v_ab.clone()),
            ViewDef::new("V2", v_bc.clone()),
        ]);
        let bounded = BoundedViewSet::new(vec![
            BoundedViewDef::new("V1", BoundedPattern::from_pattern(v_ab)),
            BoundedViewDef::new("V2", BoundedPattern::from_pattern(v_bc)),
        ]);
        let qbd = BoundedPattern::from_pattern(q.clone());
        assert_eq!(
            contain(&q, &plain).is_some(),
            bcontain(&qbd, &bounded).is_some()
        );
        assert!(bounded_query_contained(&qbd, &qbd));
    }
}
