//! Query and view-set lints — the advisory half of the `GPV0xx`
//! diagnostics engine (the hard invariants live in [`crate::verify`]).
//!
//! Lints flag constructs that are *legal but suspicious*: disconnected or
//! self-looping query patterns, queries whose answer is provably empty on
//! the given graph, redundant edges the [`mod@crate::minimize`] machinery
//! would drop, views subsumed by other views, and views no workload query
//! reads. All lints are warning or info severity — `gpv lint` exits
//! nonzero only on error-severity findings, and the differential fuzz
//! harness never treats a lint as a divergence.

use std::collections::HashSet;

use crate::containment::{query_contained, view_match};
use crate::minimize::minimize;
use crate::store::EvictionAdvice;
use crate::verify::{DiagCode, Diagnostic, Severity};
use crate::view::ViewSet;
use gpv_graph::{DataGraph, LabelId};
use gpv_pattern::{Atom, Pattern, PatternNodeId};

/// The resolved label atoms of one pattern node: `None` when some label is
/// absent from the graph's alphabet (the node can never match), otherwise
/// the label ids every match must carry.
fn node_labels(q: &Pattern, u: PatternNodeId, g: &DataGraph) -> Result<Vec<LabelId>, String> {
    let mut out = Vec::new();
    for atom in q.pred(u).atoms() {
        if let Atom::Label(l) = atom {
            match g.lookup_label(l) {
                Some(id) => out.push(id),
                None => return Err(l.clone()),
            }
        }
    }
    Ok(out)
}

/// Lints one query pattern: structural checks (connectivity, self-loops,
/// duplicate edges, redundant edges per [`minimize`]) plus — when a graph
/// is supplied — provable emptiness (a predicate label absent from `G`'s
/// alphabet, or an edge whose label pair never occurs in `G`).
pub fn lint_query(q: &Pattern, g: Option<&DataGraph>) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    if q.node_count() > 0 && !q.is_connected() {
        out.push(Diagnostic::new(
            DiagCode::QueryDisconnected,
            Severity::Warning,
            "query pattern is disconnected; components match independently \
             (a cartesian blowup of intent, usually a mistake)",
            "query pattern",
        ));
    }
    for u in q.nodes() {
        if q.has_self_loop(u) {
            out.push(Diagnostic::new(
                DiagCode::QuerySelfLoop,
                Severity::Warning,
                format!("query node u{} has a self-loop edge", u.index()),
                format!("query node u{}", u.index()),
            ));
        }
    }
    if q.edges().windows(2).any(|w| w[0] == w[1]) {
        out.push(Diagnostic::new(
            DiagCode::QueryDuplicateEdge,
            Severity::Warning,
            "query pattern repeats an edge",
            "query pattern",
        ));
    }
    if q.edge_count() > 0 {
        let m = minimize(q);
        if m.pattern.edge_count() < q.edge_count() {
            out.push(Diagnostic::new(
                DiagCode::QueryRedundantEdges,
                Severity::Warning,
                format!(
                    "query carries redundant edges: its minimized equivalent has {} \
                     edges vs {} (same answers on every graph)",
                    m.pattern.edge_count(),
                    q.edge_count()
                ),
                "query pattern",
            ));
        }
    }

    if let Some(g) = g {
        // Unknown labels first: any node whose predicate names a label
        // outside G's alphabet makes the whole (connected) query empty.
        let mut resolved: Vec<Option<Vec<LabelId>>> = Vec::with_capacity(q.node_count());
        for u in q.nodes() {
            match node_labels(q, u, g) {
                Ok(ls) => resolved.push(Some(ls)),
                Err(label) => {
                    out.push(Diagnostic::new(
                        DiagCode::QueryProvablyEmpty,
                        Severity::Warning,
                        format!(
                            "label \"{label}\" on query node u{} does not occur in the \
                             graph: the answer is provably empty",
                            u.index()
                        ),
                        format!("query node u{}", u.index()),
                    ));
                    resolved.push(None);
                }
            }
        }
        // Label-pair presence: an edge whose endpoint label pair never
        // occurs as a graph edge can match nothing.
        let mut present: HashSet<(LabelId, LabelId)> = HashSet::new();
        for (x, y) in g.edges() {
            for &la in g.labels_of(x) {
                for &lb in g.labels_of(y) {
                    present.insert((la, lb));
                }
            }
        }
        for (ei, &(u, v)) in q.edges().iter().enumerate() {
            let (Some(Some(lu)), Some(Some(lv))) =
                (resolved.get(u.index()), resolved.get(v.index()))
            else {
                continue; // unknown label already reported above
            };
            if lu.is_empty() || lv.is_empty() {
                continue; // wildcard endpoint: nothing provable statically
            }
            let feasible = lu
                .iter()
                .any(|&la| lv.iter().any(|&lb| present.contains(&(la, lb))));
            if !feasible {
                out.push(Diagnostic::new(
                    DiagCode::QueryProvablyEmpty,
                    Severity::Warning,
                    format!(
                        "no graph edge joins the label pair of query edge e{ei}: the \
                         answer is provably empty"
                    ),
                    format!("query edge e{ei}"),
                ));
            }
        }
    }
    out
}

/// Lints a view set against an (optional) query workload:
///
/// * **subsumption** — `Vi ⊑ Vj` means every query `Vi` helps answer is
///   answerable from `Vj` alone, so materializing both is redundant
///   (equivalent pairs are reported once, against the higher index);
/// * **zero coverage** — a view covering no edge of any workload query
///   contributes nothing to containment;
/// * **evictability** — rows from
///   [`ViewStore::eviction_advice`](crate::store::ViewStore::eviction_advice),
///   reported as info with the bytes eviction would free.
pub fn lint_views(
    views: &ViewSet,
    workload: &[Pattern],
    advice: &[EvictionAdvice],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    for (i, vi) in views.iter() {
        for (j, vj) in views.iter() {
            if i == j {
                continue;
            }
            if query_contained(&vi.pattern, &vj.pattern)
                && (!query_contained(&vj.pattern, &vi.pattern) || j < i)
            {
                out.push(Diagnostic::new(
                    DiagCode::ViewSubsumed,
                    Severity::Warning,
                    format!(
                        "view \"{}\" is subsumed by view \"{}\" (V{i} ⊑ V{j}); every \
                         query it helps answer is answerable without it",
                        vi.name, vj.name
                    ),
                    format!("view {i} \"{}\"", vi.name),
                ));
                break; // one subsumer is enough evidence per view
            }
        }
    }

    if !workload.is_empty() {
        for (i, v) in views.iter() {
            let covers_any = workload
                .iter()
                .any(|q| !view_match(&v.pattern, q).is_empty());
            if !covers_any {
                out.push(Diagnostic::new(
                    DiagCode::ViewZeroCoverage,
                    Severity::Warning,
                    format!(
                        "view \"{}\" covers no edge of any of the {} workload queries",
                        v.name,
                        workload.len()
                    ),
                    format!("view {i} \"{}\"", v.name),
                ));
            }
        }
    }

    for a in advice {
        out.push(Diagnostic::new(
            DiagCode::ViewEvictable,
            Severity::Info,
            format!(
                "view \"{}\" (id {}) is read by no workload query; evicting frees \
                 {} bytes ({} pairs)",
                a.name, a.id, a.resident_bytes, a.pairs
            ),
            format!("view id {}", a.id),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::has_errors;
    use crate::view::ViewDef;
    use gpv_graph::GraphBuilder;
    use gpv_pattern::PatternBuilder;

    fn graph() -> DataGraph {
        let mut b = GraphBuilder::new();
        let pm = b.add_node(["PM"]);
        let dba = b.add_node(["DBA"]);
        let prg = b.add_node(["PRG"]);
        b.add_edge(pm, dba);
        b.add_edge(dba, prg);
        b.build()
    }

    fn single(x: &str, y: &str) -> Pattern {
        let mut b = PatternBuilder::new();
        let u = b.node_labeled(x);
        let v = b.node_labeled(y);
        b.edge(u, v);
        b.build().unwrap()
    }

    #[test]
    fn clean_query_has_no_findings() {
        let diags = lint_query(&single("PM", "DBA"), Some(&graph()));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn disconnected_pattern_warns() {
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("PM");
        let c = b.node_labeled("DBA");
        let d = b.node_labeled("DBA");
        let e = b.node_labeled("PRG");
        b.edge(a, c);
        b.edge(d, e);
        let q = b.build().unwrap();
        let diags = lint_query(&q, None);
        assert!(diags.iter().any(|d| d.code == DiagCode::QueryDisconnected));
        assert!(!has_errors(&diags));
    }

    #[test]
    fn self_loop_warns() {
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("PM");
        b.edge(a, a);
        let q = b.build().unwrap();
        let diags = lint_query(&q, None);
        assert!(diags.iter().any(|d| d.code == DiagCode::QuerySelfLoop));
    }

    #[test]
    fn unknown_label_is_provably_empty() {
        let diags = lint_query(&single("PM", "CEO"), Some(&graph()));
        assert!(diags.iter().any(|d| d.code == DiagCode::QueryProvablyEmpty));
    }

    #[test]
    fn absent_label_pair_is_provably_empty() {
        // Both labels exist, but no PRG -> PM edge does.
        let diags = lint_query(&single("PRG", "PM"), Some(&graph()));
        assert!(diags.iter().any(|d| d.code == DiagCode::QueryProvablyEmpty));
    }

    #[test]
    fn subsumed_view_warns() {
        // Two views with the same pattern: each is answerable from the
        // other, so the later registration is redundant. Equivalent pairs
        // are reported once, against the higher index.
        let views = ViewSet::new(vec![
            ViewDef::new("first", single("PM", "DBA")),
            ViewDef::new("duplicate", single("PM", "DBA")),
        ]);
        let diags = lint_views(&views, &[], &[]);
        let subsumed: Vec<_> = diags
            .iter()
            .filter(|d| d.code == DiagCode::ViewSubsumed)
            .collect();
        assert_eq!(subsumed.len(), 1, "{diags:?}");
        assert!(subsumed[0].context.contains("view 1"), "{diags:?}");
    }

    #[test]
    fn zero_coverage_view_warns() {
        let views = ViewSet::new(vec![ViewDef::new("v", single("PRG", "PM"))]);
        let workload = [single("PM", "DBA")];
        let diags = lint_views(&views, &workload, &[]);
        assert!(diags.iter().any(|d| d.code == DiagCode::ViewZeroCoverage));
    }

    #[test]
    fn eviction_advice_reports_info() {
        let advice = [EvictionAdvice {
            id: 7,
            name: "cold".into(),
            pairs: 10,
            resident_bytes: 160,
        }];
        let diags = lint_views(&ViewSet::new(vec![]), &[], &advice);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::ViewEvictable);
        assert_eq!(diags[0].severity, Severity::Info);
    }
}
